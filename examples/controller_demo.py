#!/usr/bin/env python
"""Closed-loop controller demo: one load ramp, four actuators.

A four-tenant STANDALONE run whose offered load steps from 30% of the
two-card peak to 115% halfway through. The unified controller
(DESIGN.md §16) senses windowed tail latency and drives all four
actuators from the same loop:

* **weight-update** — per-tenant WRR weights re-derived from live
  health scores and p99-vs-SLO headroom;
* **tier-choice** — the brownout ladder stepped by a per-tier cost
  model (cheapest tier whose priced relief covers the overshoot), not
  by a fixed threshold ladder;
* **scale-up** — a standby DRX card commissioned when the overload
  outruns what degradation alone can buy;
* **migration** — tenant chains re-homed across cards at request
  boundaries to balance load and cut upstream crossings.

The demo prints every decision the controller applied, then the
windowed tail trajectory showing the SLO re-entered and held.

Usage::

    python examples/controller_demo.py
"""

import sys

from repro.control import ControllerConfig
from repro.core import DMXSystem, Mode, SystemConfig
from repro.resilience import ResilienceConfig
from repro.resilience.brownout import BrownoutConfig
from repro.serve import (
    Discipline,
    FrontendConfig,
    RampArrivals,
    ServingFrontend,
    SweepConfig,
    TenantSpec,
    calibrate_peak_rps,
)
from repro.telemetry.alerts import ObservationConfig
from repro.workloads import build_benchmark_chains

N_TENANTS = 4
SLO_S = 30e-3

#: action kind -> the label a human (and the CI grep) reads.
KIND_LABELS = {
    "weight": "weight-update",
    "tier": "tier-choice",
    "scale_up": "scale-up",
    "scale_down": "scale-down",
    "migration": "migration",
}


def main() -> int:
    probe = SweepConfig(
        offered_loads_rps=(1.0,),
        benchmark="sound-detection",
        n_tenants=N_TENANTS,
    )
    peak = calibrate_peak_rps(probe, Mode.STANDALONE)
    quiet, hot = 0.30 * peak, 1.15 * peak
    print(f"calibrated two-card peak: {peak:.0f} rps")
    print(f"ramp: {quiet:.0f} rps for 50 ms, then {hot:.0f} rps "
          f"({hot / peak:.0%} of peak) — SLO p99 <= {SLO_S * 1e3:.0f} ms")

    chains = build_benchmark_chains("sound-detection", N_TENANTS)
    system = DMXSystem(
        chains, SystemConfig(mode=Mode.STANDALONE),
        resilience=ResilienceConfig(seed=7),
    )
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=RampArrivals(
                segments=((0.05, quiet / N_TENANTS),
                          (0.05, hot / N_TENANTS)),
            ),
            n_requests=120,
            priority=i % 2,
        )
        for i, chain in enumerate(chains)
    ]
    frontend = ServingFrontend(
        system, tenants,
        FrontendConfig(
            max_inflight=6, discipline=Discipline.WRR, slo_s=SLO_S,
            brownout=BrownoutConfig(min_dwell_s=4e-3),
            controller=ControllerConfig(
                standby_cards=1, deescalate_fraction=0.2,
            ),
            observation=ObservationConfig(alerts=None),
        ),
        seed=3,
    )
    result = frontend.run()

    print("\ncontroller decisions:")
    for at, kind, detail in frontend.controller_actions:
        label = KIND_LABELS.get(kind, kind)
        print(f"  t={at * 1e3:7.2f}ms  {label:13s} {detail}")

    print("\nworst tenant windowed p99 (10 ms windows):")
    worst = {}
    for key in result.rollups.keys("tenant"):
        for window in result.rollups.for_key("tenant", key):
            p99 = window.stats.get("p99_s")
            if p99 is not None:
                worst[window.window] = max(
                    worst.get(window.window, 0.0), p99
                )
    for win in sorted(worst):
        p99 = worst[win]
        bar = "#" * min(60, int(p99 * 1e3))
        mark = " <- SLO violated" if p99 > SLO_S else ""
        print(f"  w{win:3d} {p99 * 1e3:6.1f}ms {bar}{mark}")

    print(f"\ncompleted {result.completed}, shed {result.shed} "
          f"(sheddable tenants first), violations {result.violations}")
    settled = [p for w, p in worst.items() if w >= 18]
    print(f"settled windows (>= w18) worst p99: "
          f"{max(settled) * 1e3:.1f} ms vs SLO {SLO_S * 1e3:.0f} ms -> "
          f"{'HELD' if max(settled) <= SLO_S else 'LOST'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
