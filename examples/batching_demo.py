#!/usr/bin/env python
"""Coalesced batching demo: the serving knee with batch formation on/off.

The regime batching is built for (DESIGN.md §11): an RPC-style chain —
tiny accelerator kernels, 16 KB payloads — with two tenants sharing one
STANDALONE DRX card. The shared DRX is the bottleneck and its 2 µs
program load is ~40% of per-job occupancy, so coalescing N jobs into
one submission (one chained descriptor ring + doorbell, one amortized
program load, one coalesced completion ISR) buys real bottleneck
capacity. The price is formation delay, visible as the flat latency
premium at light load — bounded by the formation window.

Usage::

    python examples/batching_demo.py [max_batch] [window_us]
"""

import sys

from repro.accelerators.base import AcceleratorSpec
from repro.core import AppChain, KernelStage, Mode, MotionStage
from repro.profiles import WorkProfile
from repro.serve import BatchingConfig, SweepConfig, run_sweep

KB = 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)
SLO_S = 500e-6
LOADS = tuple(float(x) for x in
              (60e3, 140e3, 220e3, 300e3, 340e3, 420e3, 500e3))


def make_chains():
    chains = []
    for i in range(2):
        profile = WorkProfile(
            name="motion", bytes_in=16 * KB, bytes_out=8 * KB,
            elements=16384, ops_per_element=20.0, gather_fraction=0.3,
        )
        chains.append(AppChain(
            name=f"app{i}",
            stages=[
                KernelStage("k1", SPEC, cpu_time_s=30e-6,
                            accel_time_s=2e-6, output_bytes=16 * KB),
                MotionStage("m", profile, input_bytes=16 * KB,
                            output_bytes=8 * KB, cpu_threads=3),
                KernelStage("k2", SPEC, cpu_time_s=24e-6,
                            accel_time_s=2e-6, output_bytes=4 * KB),
            ],
        ))
    return chains


def sweep(batching):
    return run_sweep(SweepConfig(
        offered_loads_rps=LOADS,
        modes=(Mode.STANDALONE,),
        requests_per_tenant=150,
        seed=7,
        slo_s=SLO_S,
        max_inflight=8,
        chain_factory=make_chains,
        sample_period_s=None,
        batching=batching,
    ))


def main() -> None:
    max_batch = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    window_s = (float(sys.argv[2]) if len(sys.argv) > 2 else 50.0) * 1e-6
    batching = BatchingConfig(max_batch=max_batch, window_s=window_s)
    print(f"RPC chain, 2 tenants on one STANDALONE card, "
          f"SLO p99 <= {SLO_S * 1e6:.0f} us")
    print(f"batching: max_batch={max_batch} window={window_s * 1e6:.0f} us\n")
    results = {"off": sweep(None), "on": sweep(batching)}
    header = "load(krps)" + "".join(
        f"{int(load / 1e3):>8}" for load in LOADS
    )
    print(header)
    for label, result in results.items():
        row = f"p99 {label:<4}(us)" + "".join(
            f"{p99 * 1e6:>8.0f}" for _, p99 in result.p99_curve(Mode.STANDALONE)
        )
        print(row)
    for label, result in results.items():
        knee = result.knee_rps(Mode.STANDALONE)
        print(f"knee {label}: {knee / 1e3:.0f} krps")
    assert (results["on"].knee_rps(Mode.STANDALONE)
            > results["off"].knee_rps(Mode.STANDALONE)), \
        "batching should move the knee right in this regime"


if __name__ == "__main__":
    main()
