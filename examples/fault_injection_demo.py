#!/usr/bin/env python
"""Fault injection: recovery and graceful degradation under a hostile fabric.

Runs the Sound Detection benchmark on a Standalone-DRX system while a
seeded :class:`~repro.faults.FaultInjector` fails 10% of DMA transfers
and hangs 5% of DRX restructure calls. The runtime's watchdogs retry
failed DMAs with bounded exponential backoff, and any motion stage whose
DRX leg blows its deadline budget degrades to CPU restructuring (the
Multi-Axl path) — so every request still completes.

Prints per-app retries/fallbacks/failures, the injected-fault trace
summary, and the latency price of running degraded.

Usage::

    python examples/fault_injection_demo.py [seed]
"""

import sys

from repro.core import DMXSystem, Mode, SystemConfig
from repro.faults import FaultPlan, FaultPolicy
from repro.workloads import build_benchmark_chains


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    n_apps, requests = 3, 5
    plan = FaultPlan(
        seed=seed,
        dma=FaultPolicy(fail_p=0.10),  # 10% of DMA transfers error out
        drx=FaultPolicy(hang_p=0.05),  # 5% of DRX restructures wedge
        drx_deadline_s=30e-3,  # budget before degrading to the CPU
    )
    print(f"Sound Detection x {n_apps} apps, Standalone DRX, seed {seed}")
    print("faults: 10% DMA fail, 5% DRX hang, 30 ms DRX deadline")
    print("=" * 60)

    runs = {}
    for label, faults in (("healthy", None), ("faulted", plan)):
        system = DMXSystem(
            build_benchmark_chains("sound-detection", n_apps),
            SystemConfig(mode=Mode.STANDALONE),
            faults=faults,
        )
        runs[label] = (system, system.run_latency(requests_per_app=requests))

    system, run = runs["faulted"]
    print(f"\nper-app recovery ({requests} requests each):")
    for app in run.apps():
        print(f"  {app}: retries={run.total_retries(app)}"
              f"  fallbacks={run.fallback_count(app)}"
              f"  failures={run.failure_count(app)}")

    print("\ninjected-fault trace:")
    for kind, count in sorted(system.fault_trace.fault_counts().items()):
        print(f"  {kind:16s} x{count}")

    healthy = runs["healthy"][1].mean_latency()
    faulted = run.mean_latency()
    print("\n" + "=" * 60)
    summary = run.recovery_summary()
    print(f"requests completed:   {summary['requests']}/{n_apps * requests}"
          f"  (failures: {summary['failures']})")
    print(f"mean latency healthy: {healthy * 1e3:8.2f} ms")
    print(f"mean latency faulted: {faulted * 1e3:8.2f} ms"
          f"  ({faulted / healthy:.2f}x — the price of riding through faults)")


if __name__ == "__main__":
    main()
