#!/usr/bin/env python
"""The Sec. V programming model: an OpenCL-style host program.

Builds the execution context for a Sound Detection instance — FFT
accelerator, DRX (running the compiled data-motion kernel), SVM
accelerator — with per-device command queues and event dependencies,
then pushes a real audio snippet through it.

Usage::

    python examples/host_program.py
"""

import numpy as np

from repro.accelerators import FFTAccelerator, SVMAccelerator
from repro.restructuring import (
    FeatureFlatten,
    LogCompress,
    MelScale,
    PowerSpectrum,
    RestructuringPipeline,
    SpectrogramAssembly,
)
from repro.runtime import Context, DeviceHandle
from repro.workloads.generators import make_audio_snippet

N_MELS = 64


def main() -> None:
    fft = FFTAccelerator(frame_len=1024, hop=512)
    motion = RestructuringPipeline(
        "sound-motion",
        [PowerSpectrum(), SpectrogramAssembly(),
         MelScale(N_MELS, 22_050.0), LogCompress(), FeatureFlatten()],
    )

    # 1. Create the execution context: devices + kernels + queues.
    ctx = Context([
        DeviceHandle("fft-accel", "accelerator", fft),
        DeviceHandle("drx0", "drx", motion),
        DeviceHandle("svm-accel", "accelerator"),
    ])
    q_fft = ctx.create_queue("fft-accel")
    q_drx = ctx.create_queue("drx0")
    q_svm = ctx.create_queue("svm-accel")

    # 2. Buffers in the global host address space.
    audio = ctx.create_buffer("audio", make_audio_snippet(2.0, genre=3,
                                                          seed=42))
    spectra = ctx.create_buffer("spectra")
    features = ctx.create_buffer("features")
    genre = ctx.create_buffer("genre")

    # 3. Enqueue non-blocking commands with explicit dependencies
    #    (application kernels on accelerators, data motion on DRX).
    e_fft = q_fft.enqueue_kernel(fft.run, [audio], spectra)
    e_motion = q_drx.enqueue_kernel(motion.apply, [spectra], features,
                                    wait_for=[e_fft])
    q_fft.finish()
    q_drx.finish()

    svm = SVMAccelerator(n_classes=10, n_features=features.read().shape[1])
    q_svm.enqueue_kernel(svm.run, [features], genre,
                         wait_for=[e_motion], blocking=True)

    print(f"audio:    {audio.read().shape[0]} samples")
    print(f"spectra:  {spectra.read().shape} complex bins "
          f"(from the FFT accelerator)")
    print(f"features: {features.read().shape} fp32 "
          f"(restructured on the DRX)")
    print(f"genre:    {int(genre.read()[0])} (from the SVM accelerator)")
    print(f"\ncommands executed: fft={q_fft.commands_executed}, "
          f"drx={q_drx.commands_executed}, svm={q_svm.commands_executed}")


if __name__ == "__main__":
    main()
