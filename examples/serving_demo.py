#!/usr/bin/env python
"""Online serving demo: the latency-vs-load knee, CPU baseline vs DMX.

Drives the Sound Detection chains with open-loop Poisson traffic through
the serving frontend (bounded admission queues, FCFS dispatch) at a grid
of offered loads, for the Multi-Axl baseline (restructuring on the host
CPU) and DMX with Bump-in-the-Wire DRXs. Prints each mode's p50/p99
knee curve and where it first violates the SLO — the serving-side view
of the paper's concurrent-applications sweep.

Usage::

    python examples/serving_demo.py [arrival_kind]   # poisson | mmpp | deterministic
"""

import sys

from repro.core import Mode
from repro.serve import (
    ShedPolicy,
    SweepConfig,
    calibrate_peak_rps,
    run_sweep,
    unloaded_latency,
)

CPU_MODE = Mode.MULTI_AXL
DMX_MODE = Mode.BUMP_IN_WIRE


def main() -> None:
    arrival_kind = sys.argv[1] if len(sys.argv) > 1 else "poisson"
    probe = SweepConfig(offered_loads_rps=(1.0,),
                        benchmark="sound-detection", n_tenants=2)
    axl_peak = calibrate_peak_rps(probe, CPU_MODE)
    dmx_peak = calibrate_peak_rps(probe, DMX_MODE)
    slo_s = 3.0 * unloaded_latency(probe, CPU_MODE)

    config = SweepConfig(
        offered_loads_rps=tuple(sorted(
            [0.4 * axl_peak, 0.8 * axl_peak, 0.5 * dmx_peak,
             1.0 * dmx_peak, 1.5 * dmx_peak, 3.0 * dmx_peak]
        )),
        benchmark="sound-detection",
        n_tenants=2,
        modes=(CPU_MODE, DMX_MODE),
        requests_per_tenant=48,
        arrival_kind=arrival_kind,
        seed=0,
        slo_s=slo_s,
        max_inflight=8,
        shed=ShedPolicy.QUEUE,
    )

    print(f"Sound Detection x {config.n_tenants} tenants, "
          f"{arrival_kind} arrivals, SLO p99 <= {slo_s * 1e3:.1f} ms")
    print("=" * 72)
    result = run_sweep(config)

    for mode in config.modes:
        print(f"\n[{mode.value}]")
        print(f"  {'offered rps':>12}  {'p50 ms':>8}  {'p99 ms':>8}  "
              f"{'goodput rps':>12}  {'SLO':>4}")
        for point in result.for_mode(mode):
            ok = "ok" if point.within_slo(slo_s) else "VIOL"
            print(f"  {point.offered_rps:12.0f}  {point.p50_s * 1e3:8.2f}  "
                  f"{point.p99_s * 1e3:8.2f}  {point.goodput_rps:12.0f}  "
                  f"{ok:>4}")
        print(f"  knee (max load within SLO): "
              f"{result.knee_rps(mode):.0f} rps")

    print("\n" + "=" * 72)
    cpu_knee = result.knee_rps(CPU_MODE)
    dmx_knee = result.knee_rps(DMX_MODE)
    if cpu_knee > 0:
        print(f"DMX sustains {dmx_knee / cpu_knee:.1f}x the offered load "
              f"of CPU restructuring before violating the SLO")
    else:
        print("CPU restructuring violates the SLO even at the lightest load")


if __name__ == "__main__":
    main()
