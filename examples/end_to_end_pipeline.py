#!/usr/bin/env python
"""Functional end-to-end pipelines: real data through real kernels.

Drives every benchmark's *functional* path (no performance model): the
video codec really decodes, AES-GCM really decrypts, the regex engine
really redacts, the hash join really joins — with the restructuring ops
transforming real intermediate data between the kernels, exactly the
Fig. 2 structure.

Usage::

    python examples/end_to_end_pipeline.py
"""

from repro.workloads import (
    brain_stimulation,
    hash_join,
    ner_extension,
    pii_redaction,
    sound_detection,
    video_surveillance,
)


def main() -> None:
    print("Video Surveillance: decode -> [NV12->RGB, resize, tensorize] "
          "-> detect")
    out = video_surveillance.run_functional_demo(seed=1)
    print(f"  decoded frame {out['frame_shape']}, detector tensor "
          f"{out['tensor_shape']}, {len(out['detections'])} detections\n")

    print("Sound Detection: STFT -> [power, spectrogram, mel, log] -> SVM")
    out = sound_detection.run_functional_demo(seed=2)
    print(f"  spectra {out['spectra_shape']}, mel {out['mel_shape']}, "
          f"predicted genre {out['genre']}\n")

    print("Brain Stimulation: FFT -> [spatial filter, band power, z-score] "
          "-> PPO")
    out = brain_stimulation.run_functional_demo(seed=3)
    print(f"  spectra {out['spectra_shape']}, observation dim "
          f"{out['observation_dim']}, action {out['action'].round(3)}\n")

    print("Personal Info Redaction: AES-GCM decrypt -> [records] -> regex")
    out = pii_redaction.run_functional_demo(seed=4)
    print(f"  {out['document_bytes']} plaintext bytes, "
          f"{out['n_records']} records, {out['pii_redacted']} PII spans "
          "redacted")
    print(f"  sample: {out['redacted_sample'][:70]!r}\n")

    print("Database Hash Join: LZ77 inflate -> [columnar, partition] -> join")
    out = hash_join.run_functional_demo(seed=5)
    print(f"  {out['compressed_bytes']} B compressed -> "
          f"{out['decompressed_bytes']} B table, "
          f"{out['joined_rows']} joined rows\n")

    print("PIR + NER (Fig. 16): ... -> [tokenize] -> Transformer NER")
    out = ner_extension.run_functional_demo(seed=6)
    print(f"  {out['pii_redacted']} regex redactions, "
          f"{out['n_sequences']} token sequences, labels "
          f"{out['label_shape']}")


if __name__ == "__main__":
    main()
