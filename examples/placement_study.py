#!/usr/bin/env python
"""DRX placement study (the Sec. III / Fig. 14-15 design-space sweep).

Compares the four DRX placements against the Multi-Axl baseline for a
chosen benchmark across concurrency levels, reporting latency speedup
and energy reduction side by side.

Usage::

    python examples/placement_study.py [benchmark] [levels...]
    python examples/placement_study.py db-hash-join 1 5 15
"""

import sys

from repro.core import DMXSystem, Mode, SystemConfig
from repro.energy import EnergyModel
from repro.eval import format_table
from repro.workloads import benchmark_names, build_benchmark_chains

PLACEMENTS = (
    Mode.INTEGRATED,
    Mode.STANDALONE,
    Mode.BUMP_IN_WIRE,
    Mode.PCIE_INTEGRATED,
)


def measure(benchmark: str, n_apps: int, mode: Mode):
    chains = build_benchmark_chains(benchmark, n_apps)
    system = DMXSystem(chains, SystemConfig(mode=mode))
    run = system.run_latency(requests_per_app=3)
    energy = EnergyModel().evaluate_system(system).total_j / len(run.records)
    return run.mean_latency(), energy


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "sound-detection"
    levels = [int(v) for v in sys.argv[2:]] or [1, 5, 15]
    if benchmark not in benchmark_names():
        raise SystemExit(f"unknown benchmark; pick from {benchmark_names()}")

    print(f"Placement study: {benchmark}, {levels} concurrent apps\n")
    for n_apps in levels:
        base_latency, base_energy = measure(benchmark, n_apps, Mode.MULTI_AXL)
        rows = []
        for mode in PLACEMENTS:
            latency, energy = measure(benchmark, n_apps, mode)
            rows.append([
                mode.value,
                f"{latency * 1e3:.2f} ms",
                f"{base_latency / latency:.2f}x",
                f"{base_energy / energy:.2f}x",
            ])
        print(format_table(
            ["placement", "latency", "speedup", "energy reduction"],
            rows,
            title=f"-- {n_apps} concurrent apps "
                  f"(baseline {base_latency * 1e3:.2f} ms) --",
        ))
        print()


if __name__ == "__main__":
    main()
