#!/usr/bin/env python
"""DRX compiler walkthrough (Sec. IV / Figs. 7-8).

Compiles the Sound Detection data-motion kernel to DRX assembly, prints
the program (the reproduction's Fig. 8), executes it on the functional
DRX simulator, and cross-checks the output against the CPU-side numpy
restructuring pipeline — the core DMX correctness invariant.

Usage::

    python examples/drx_kernel_demo.py
"""

import numpy as np

from repro.drx import (
    DRXCompiler,
    DRXConfig,
    DRXMemory,
    DRXTimingModel,
    FunctionalDRX,
    disassemble,
    sound_motion_kernel,
)
from repro.restructuring import (
    LogCompress,
    MelScale,
    PowerSpectrum,
    SpectrogramAssembly,
    mel_filterbank,
)

N_FRAMES, N_BINS, N_MELS = 12, 65, 16


def main() -> None:
    config = DRXConfig()
    compiler = DRXCompiler(config)
    kernel = sound_motion_kernel(N_FRAMES, N_BINS, N_MELS)
    program = compiler.compile(kernel)

    print(f"Compiled {kernel.name!r} for a {config.lanes}-lane DRX "
          f"({config.scratchpad_bytes // 1024} KB scratchpad)")
    print(f"  {len(program)} instructions: {program.counts()}\n")
    assembly = disassemble(program)
    head = "\n".join(assembly.splitlines()[:18])
    print("First instructions (Fig. 8 style):")
    print(head)
    print("  ...\n")

    # Execute on the functional DRX and compare with the CPU pipeline.
    rng = np.random.default_rng(7)
    fft_out = (
        rng.standard_normal((N_FRAMES, N_BINS))
        + 1j * rng.standard_normal((N_FRAMES, N_BINS))
    ).astype(np.complex64)

    mem = DRXMemory()
    mem.bind("re", fft_out.real.astype(np.float32))
    mem.bind("im", fft_out.imag.astype(np.float32))
    mem.bind("bank", mel_filterbank(N_MELS, N_BINS, 16000.0))
    n = N_FRAMES * N_BINS
    for name, size in [("re2", n), ("im2", n), ("power", n),
                       ("spectrogram", n), ("mel", N_MELS * N_FRAMES),
                       ("out", N_MELS * N_FRAMES)]:
        mem.allocate(name, size, np.float32)

    drx = FunctionalDRX(mem, n_banks=config.n_banks,
                        scratchpad_bytes=config.scratchpad_bytes)
    stats = drx.execute(program)
    drx_result = mem.read("out").reshape(N_MELS, N_FRAMES)

    cpu_result = LogCompress().apply(
        MelScale(N_MELS, 16000.0).apply(
            SpectrogramAssembly().apply(PowerSpectrum().apply(fft_out))
        )
    )
    np.testing.assert_allclose(drx_result, cpu_result, rtol=1e-4)
    print("DRX output matches the CPU restructuring pipeline exactly.")
    print(f"  dynamic instructions: {stats.dynamic_instructions}")
    print(f"  lane-operations:      {stats.vector_ops}")
    print(f"  DRAM traffic:         {stats.bytes_total} B")
    latency = DRXTimingModel(config).time_from_stats(stats)
    print(f"  modeled DRX latency:  {latency * 1e6:.1f} us")


if __name__ == "__main__":
    main()
