#!/usr/bin/env python
"""Telemetry demo: run → artifact → report → Perfetto trace.

Runs a small serving sweep (Sound Detection, CPU-restructuring baseline
vs DMX bump-in-the-wire) with run artifacts enabled, then shows what
the observability layer gives you for free:

* one JSON-lines run artifact + one Chrome-trace/Perfetto export per
  (mode, load) grid point — deterministic, byte-identical per seed;
* the text report (`python -m repro.telemetry ARTIFACT.jsonl`):
  phase-breakdown table, critical-path attribution, and per-request
  waterfalls;
* schema validation (`--validate`).

Usage::

    python examples/telemetry_demo.py [output_dir]   # default: telemetry-artifacts
"""

import os
import sys

from repro.core import Mode
from repro.serve import ShedPolicy, SweepConfig, run_sweep
from repro.telemetry import (
    load_artifact,
    render_report,
    validate_artifact,
)

CPU_MODE = Mode.MULTI_AXL
DMX_MODE = Mode.BUMP_IN_WIRE


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "telemetry-artifacts"
    config = SweepConfig(
        offered_loads_rps=(40.0, 120.0),
        benchmark="sound-detection",
        n_tenants=2,
        modes=(CPU_MODE, DMX_MODE),
        requests_per_tenant=12,
        seed=0,
        slo_s=50e-3,
        max_inflight=8,
        shed=ShedPolicy.QUEUE,
        artifact_dir=out_dir,
    )
    print(f"running sweep; artifacts land in {out_dir}/ ...")
    run_sweep(config)

    names = sorted(
        name for name in os.listdir(out_dir) if name.endswith(".jsonl")
    )
    print(f"wrote {len(names)} artifacts (+ one .trace.json each):")
    for name in names:
        path = os.path.join(out_dir, name)
        problems = validate_artifact(path)
        status = "valid" if not problems else f"INVALID ({problems[0]})"
        print(f"  {name:<28} {status}")
    if any(validate_artifact(os.path.join(out_dir, n)) for n in names):
        raise SystemExit("artifact validation failed")

    # The report the CLI renders — here for the lightest DMX point.
    sample = os.path.join(out_dir, f"{DMX_MODE.value}-pt0.jsonl")
    print()
    print(f"report for {sample}")
    print(f"(same as: python -m repro.telemetry {sample})")
    print("=" * 72)
    print(render_report(load_artifact(sample), max_waterfalls=2))
    print("=" * 72)
    print("open any .trace.json at https://ui.perfetto.dev to browse "
          "the span trees interactively.")


if __name__ == "__main__":
    main()
