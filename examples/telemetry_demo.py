#!/usr/bin/env python
"""Telemetry demo: run → artifact → report → alerts → diff → dashboard.

Part 1 runs a small serving sweep (Sound Detection, CPU-restructuring
baseline vs DMX bump-in-the-wire) with run artifacts enabled, then
shows what the observability layer gives you for free:

* one JSON-lines run artifact + one Chrome-trace/Perfetto export per
  (mode, load) grid point — deterministic, byte-identical per seed;
* the text report (`python -m repro.telemetry report ARTIFACT.jsonl`):
  phase-breakdown table, critical-path attribution, and per-request
  waterfalls;
* schema validation (`--validate`).

Part 2 arms the SLO observation plane and *breaks the hardware*: the
same workload runs once healthy and once with the DRX derated 12x.
The regressed run burns its SLO budget, the multi-window burn-rate
alert fires with a root cause attributed to the DRX restructuring
site, `telemetry diff` ranks that cause first, and the windowed
dashboard renders with the alert marked on every panel.

Usage::

    python examples/telemetry_demo.py [output_dir]   # default: telemetry-artifacts
"""

import os
import sys
from dataclasses import replace

from repro.core import Mode, SystemConfig
from repro.drx.microarch import DEFAULT_DRX
from repro.serve import ShedPolicy, SweepConfig, run_sweep
from repro.telemetry import (
    AlertConfig,
    ObservationConfig,
    RollupConfig,
    diff_runs,
    load_artifact,
    render_dashboard,
    render_diff,
    render_report,
    validate_artifact,
)

CPU_MODE = Mode.MULTI_AXL
DMX_MODE = Mode.BUMP_IN_WIRE


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "telemetry-artifacts"
    config = SweepConfig(
        offered_loads_rps=(40.0, 120.0),
        benchmark="sound-detection",
        n_tenants=2,
        modes=(CPU_MODE, DMX_MODE),
        requests_per_tenant=12,
        seed=0,
        slo_s=50e-3,
        max_inflight=8,
        shed=ShedPolicy.QUEUE,
        artifact_dir=out_dir,
    )
    print(f"running sweep; artifacts land in {out_dir}/ ...")
    run_sweep(config)

    names = sorted(
        name for name in os.listdir(out_dir) if name.endswith(".jsonl")
    )
    print(f"wrote {len(names)} artifacts (+ one .trace.json each):")
    for name in names:
        path = os.path.join(out_dir, name)
        problems = validate_artifact(path)
        status = "valid" if not problems else f"INVALID ({problems[0]})"
        print(f"  {name:<28} {status}")
    if any(validate_artifact(os.path.join(out_dir, n)) for n in names):
        raise SystemExit("artifact validation failed")

    # The report the CLI renders — here for the lightest DMX point.
    sample = os.path.join(out_dir, f"{DMX_MODE.value}-pt0.jsonl")
    print()
    print(f"report for {sample}")
    print(f"(same as: python -m repro.telemetry {sample})")
    print("=" * 72)
    print(render_report(load_artifact(sample), max_waterfalls=2))
    print("=" * 72)
    print("open any .trace.json at https://ui.perfetto.dev to browse "
          "the span trees interactively.")

    observe(out_dir)


def observe(out_dir: str) -> None:
    """Part 2: fire a burn-rate alert, explain it, diff, dashboard."""
    observation = ObservationConfig(
        rollup=RollupConfig(window_s=10e-3),
        alerts=AlertConfig(budget=0.10),
    )
    # the injected hardware regression: DRX clock and DRAM bandwidth
    # derated 12x — the restructuring offload crawls, queues back up
    slow_drx = SystemConfig(drx=replace(
        DEFAULT_DRX,
        frequency_hz=DEFAULT_DRX.frequency_hz / 12,
        dram_bandwidth=DEFAULT_DRX.dram_bandwidth / 12,
    ))

    print()
    print("-- part 2: SLO observation plane ".ljust(72, "-"))
    artifacts = {}
    for tag, system in (("baseline", None), ("regressed", slow_drx)):
        d = os.path.join(out_dir, tag)
        print(f"running {tag} DMX point (observation armed) -> {d}/")
        run_sweep(SweepConfig(
            offered_loads_rps=(180.0,),
            benchmark="sound-detection",
            n_tenants=2,
            modes=(DMX_MODE,),
            requests_per_tenant=24,
            seed=0,
            slo_s=12e-3,
            max_inflight=8,
            shed=ShedPolicy.QUEUE,
            artifact_dir=d,
            observation=observation,
            system=system,
        ))
        artifacts[tag] = os.path.join(d, f"{DMX_MODE.value}-pt0.jsonl")

    regressed = load_artifact(artifacts["regressed"])
    fires = [a for a in regressed.alerts if a.state == "fire"]
    if not fires:
        raise SystemExit("expected the regressed run to fire an alert")
    print()
    print(f"the regressed run fired {len(fires)} burn-rate alert(s):")
    for alert in fires:
        print(f"  t=+{alert.time * 1e3:.0f}ms  fast_burn={alert.fast_burn:.1f}x "
              f"slow_burn={alert.slow_burn:.1f}x")
        print(f"    {alert.describe()}")

    print()
    print("differential diagnosis (baseline vs regressed):")
    print(f"(same as: python -m repro.telemetry diff "
          f"{artifacts['baseline']} {artifacts['regressed']})")
    print("=" * 72)
    report = diff_runs(
        load_artifact(artifacts["baseline"]), regressed,
        a_path=artifacts["baseline"], b_path=artifacts["regressed"],
    )
    print(render_diff(report))
    print("=" * 72)
    top = report["verdict"]["top_regression"]
    print(f"verdict matches the injected fault: {top}")

    dash = os.path.join(out_dir, "dashboard.svg")
    render_dashboard(regressed, dash)
    print(f"windowed dashboard (p99/goodput/queue/utilization + alert "
          f"markers): {dash}")


if __name__ == "__main__":
    main()
