#!/usr/bin/env python
"""Permanent-failure recovery: kill a DRX card mid-knee and watch the
system detect, drain, rescue, and — on revival — re-admit it.

One serving run of the Sound Detection benchmark on a Standalone-DRX
system (four tenants, two cards). A quarter of the way through the run
``drx.s0`` — the card serving two of the tenants — dies; just past the
midpoint it comes back:

* **detection** — the first drained leg observes the corpse and the
  card's breaker is promoted to DEAD (decommission);
* **drain** — every in-flight leg on the card is cancelled through the
  engine's interrupt machinery;
* **rescue** — each drained request is resubmitted exactly once on the
  host CPU path with its already-burned latency carried;
* **re-admission** — revival flips the breaker DEAD → OPEN and traffic
  returns through half-open probing.

The run's telemetry lands as an artifact and the conservation invariant
checker signs off on it (``python -m repro.telemetry verify`` is the
standalone spelling).

Usage::

    python examples/recovery_demo.py [output_dir]  # default: telemetry-artifacts
"""

import os
import sys

from repro.faults import DomainCrash
from repro.resilience import (
    RecoveryScenarioConfig,
    run_recovery_scenario,
    verify_artifact_path,
)

TARGET = "drx.s0"


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "telemetry-artifacts"
    artifact = os.path.join(out_dir, "recovery-demo.jsonl")

    offered = 560.0  # ~2/3 of the calibrated standalone knee
    requests = 48
    n_tenants = 4
    span = requests * n_tenants / offered
    kill_at = 0.25 * span
    revive_at = 0.55 * span

    config = RecoveryScenarioConfig(
        offered_rps=offered,
        crashes=(DomainCrash(
            target=TARGET, at_s=kill_at, revive_at_s=revive_at,
        ),),
        n_tenants=n_tenants,
        requests_per_tenant=requests,
        benchmark="sound-detection",
        slo_s=50e-3,
        seed=0,
        artifact_path=artifact,
    )
    print(f"sound-detection x{n_tenants} on standalone cards; "
          f"{offered:.0f} rps offered")
    print(f"kill {TARGET} at {kill_at * 1e3:.0f} ms, "
          f"revive at {revive_at * 1e3:.0f} ms")
    print("-" * 64)

    result = run_recovery_scenario(config)
    domains = result.domains
    detect = result.detect_latency_s[TARGET]

    print(f"detection: {TARGET} decommissioned "
          f"{detect * 1e3:.3f} ms after the crash "
          f"(breaker DEAD, planner candidate set pruned)")
    print(f"drain: {domains['drained']} in-flight request(s) cancelled, "
          f"{domains['failed_fast']} failed fast at dispatch")
    print(f"rescue: {domains['rescued']} request(s) resubmitted on the "
          f"CPU path exactly once, {domains['rescues_abandoned']} "
          f"abandoned past deadline")
    print(f"re-admit: revived at "
          f"{', '.join(domains['revived']) or 'never'} — traffic "
          f"returned through half-open probing")

    window = span / 4
    before = result.goodput_between(0.0, kill_at)
    dead = result.goodput_between(kill_at, revive_at)
    after = result.goodput_between(revive_at, revive_at + window)
    print(f"goodput: {before:.0f} rps before the kill, "
          f"{dead:.0f} rps while down, {after:.0f} rps after revival")

    failed = sum(1 for r in result.records if r.failed)
    print(f"conservation: {len(result.records)} requests answered, "
          f"{failed} failed, {result.rescued_count()} rescued")

    report = verify_artifact_path(artifact)
    report.raise_on_problems()
    print(f"invariants: {', '.join(sorted(report.checked))} -> PASS")
    print(f"artifact: {artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
