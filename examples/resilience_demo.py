#!/usr/bin/env python
"""Resilience control plane: breakers, brownout, and the goodput cliff.

Part 1 pins the mechanism: the Sound Detection benchmark on a
Standalone-DRX system whose DRX legs all hang, compared with and
without the control plane. Unarmed, every request burns the full DRX
deadline before degrading to CPU restructuring; armed, the unit's
circuit breaker trips after a handful of failures and everything after
is rerouted up front.

Part 2 runs a small chaos sweep (fault intensity x offered load, both
arms) and prints the goodput curves — the cliff moves right with the
control plane on. Each cell's telemetry lands as a run artifact in
``telemetry-artifacts/`` (same schema the report CLI reads).

Usage::

    python examples/resilience_demo.py [output_dir]  # default: telemetry-artifacts
"""

import sys

from repro.core import DMXSystem, Mode, SystemConfig
from repro.faults import FaultPlan, FaultPolicy
from repro.resilience import (
    BreakerConfig,
    ChaosSweepConfig,
    ResilienceConfig,
    run_chaos_sweep,
)
from repro.workloads import build_benchmark_chains


def breaker_mechanism() -> None:
    plan = FaultPlan(
        seed=42, drx=FaultPolicy(hang_p=1.0), drx_deadline_s=20e-3
    )
    resilience = ResilienceConfig(
        seed=1,
        breaker=BreakerConfig(cooldown_s=100.0, cooldown_cap_s=100.0),
    )
    print("part 1: every DRX leg hangs; 20 ms deadline; standalone card")
    print("-" * 64)
    results = {}
    for label, armed in (("baseline", None), ("resilient", resilience)):
        system = DMXSystem(
            build_benchmark_chains("sound-detection", 2),
            SystemConfig(mode=Mode.STANDALONE),
            faults=plan,
            resilience=armed,
        )
        result = system.run_latency(requests_per_app=8)
        results[label] = result
        summary = result.recovery_summary()
        print(f"  {label:9s} fallbacks={summary['fallbacks']:3d}"
              f"  rerouted={summary['rerouted']:3d}"
              f"  mean latency {result.mean_latency() * 1e3:6.2f} ms")
        if armed is not None:
            control = system.control.summary()
            print(f"            breaker: transitions={control['transitions']}"
                  f" reroutes={control['reroutes']} open={control['open']}")
    speedup = (results["baseline"].mean_latency()
               / results["resilient"].mean_latency())
    print(f"  -> breaker trips once, traffic routes around the sick unit"
          f" ({speedup:.2f}x faster)")


def chaos_sweep(out_dir: str) -> None:
    config = ChaosSweepConfig(
        offered_loads_rps=(60.0, 120.0, 180.0, 240.0),
        fault_intensities=(1.0,),
        requests_per_tenant=24,
        slo_s=110e-3,
        max_inflight=4,
        resilience=ResilienceConfig(
            seed=1,
            breaker=BreakerConfig(cooldown_s=2.0, cooldown_cap_s=8.0),
        ),
        seed=0,
        artifact_dir=out_dir,
    )
    print(f"\npart 2: chaos sweep (artifacts land in {out_dir}/)")
    print("-" * 64)
    result = run_chaos_sweep(config)
    print(f"  {'offered':>8s}  {'baseline':>16s}  {'resilient':>16s}")
    for base, res in zip(result.cell(1.0, False), result.cell(1.0, True)):
        def fmt(p):
            mark = "ok " if p.sustains(result.goodput_floor) else "FELL"
            return f"{p.goodput_rps:7.1f} rps {mark}"

        print(f"  {base.offered_rps:6.0f}    {fmt(base):>16s}  {fmt(res):>16s}")
    baseline = result.goodput_cliff_rps(1.0, False)
    resilient = result.goodput_cliff_rps(1.0, True)
    print(f"\n  goodput cliff (>= {result.goodput_floor:.0%} of offer):"
          f" baseline {baseline:.0f} rps, resilient {resilient:.0f} rps"
          f"  (+{resilient - baseline:.0f})")


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "telemetry-artifacts"
    print("Resilience control plane on Sound Detection")
    print("=" * 64)
    breaker_mechanism()
    chaos_sweep(out_dir)


if __name__ == "__main__":
    main()
