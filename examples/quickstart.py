#!/usr/bin/env python
"""Quickstart: build a multi-accelerator system and measure DMX's benefit.

Runs the Sound Detection benchmark (Fig. 2's running example) on two
system configurations — the Multi-Axl baseline (restructuring on the
host CPU) and DMX with Bump-in-the-Wire DRXs — and prints the latency,
the phase breakdown, and the speedup.

Usage::

    python examples/quickstart.py [n_concurrent_apps]
"""

import sys

from repro.core import DMXSystem, Mode, SystemConfig
from repro.energy import EnergyModel
from repro.workloads import build_benchmark_chains


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    print(f"Sound Detection x {n_apps} concurrent applications")
    print("=" * 60)

    chains = build_benchmark_chains("sound-detection", n_apps)
    energy_model = EnergyModel()

    results = {}
    for mode in (Mode.MULTI_AXL, Mode.BUMP_IN_WIRE):
        system = DMXSystem(chains, SystemConfig(mode=mode))
        run = system.run_latency(requests_per_app=4)
        energy = energy_model.evaluate_system(system)
        results[mode] = (run, energy.total_j / len(run.records))
        print(f"\n[{mode.value}]")
        print(f"  mean end-to-end latency: {run.mean_latency() * 1e3:8.2f} ms")
        print(f"  energy per request:      {results[mode][1] * 1e3:8.1f} mJ")
        print("  breakdown:", end=" ")
        for phase, fraction in sorted(run.phase_fractions().items()):
            print(f"{phase}={fraction * 100:.1f}%", end="  ")
        print()

    base_run, base_energy = results[Mode.MULTI_AXL]
    dmx_run, dmx_energy = results[Mode.BUMP_IN_WIRE]
    print("\n" + "=" * 60)
    print(f"DMX speedup:          "
          f"{base_run.mean_latency() / dmx_run.mean_latency():.2f}x")
    print(f"DMX energy reduction: {base_energy / dmx_energy:.2f}x")


if __name__ == "__main__":
    main()
