#!/usr/bin/env python
"""Backend-planner demo: one mixed-shape chain, per-leg decisions.

A single application chain whose three motion legs have deliberately
different shapes — a tiny gather-heavy shuffle, a medium affine
reshape, and a large gather-heavy restructure — so the cost-based
planner (DESIGN.md §13) routes each leg to a *different* backend:

* the 4 KB gathery shuffle goes to the **DSA** (sub-µs portal submit
  beats the DRX's kernel-launch overhead at this size),
* the 1 MB affine reshape rides an **XDMA** descriptor (the transform
  is fused into the chained DMA — zero extra hop),
* the 32 MB gathery restructure lands on the **DRX** (beyond the XDMA
  descriptor's reach; the 128-lane array out-streams the DSA).

The demo prints the planner's full per-leg ranking (every backend's
priced bid) and the run's per-backend leg attribution.

Usage::

    python examples/backend_planner_demo.py
"""

from repro.accelerators.base import AcceleratorSpec
from repro.backends import PlannerConfig
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.profiles import WorkProfile

KB = 1024
MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)


def make_chain():
    def kernel(name, out_bytes):
        return KernelStage(name, SPEC, cpu_time_s=6e-4, accel_time_s=1e-4,
                           output_bytes=out_bytes)

    shuffle = WorkProfile(
        name="shuffle", bytes_in=8 * KB, bytes_out=4 * KB,
        elements=1024, ops_per_element=20.0, gather_fraction=0.3,
    )
    reshape = WorkProfile(
        name="reshape", bytes_in=1 * MB, bytes_out=1 * MB,
        elements=256 * KB, ops_per_element=2.0,
        branch_fraction=0.02, gather_fraction=0.0,
    )
    restructure = WorkProfile(
        name="restructure", bytes_in=64 * MB, bytes_out=32 * MB,
        elements=8 * MB, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name="mixed",
        stages=[
            kernel("k1", 4 * KB),
            MotionStage("tiny-shuffle", shuffle, input_bytes=4 * KB,
                        output_bytes=4 * KB, cpu_threads=4),
            kernel("k2", 1 * MB),
            MotionStage("affine-reshape", reshape, input_bytes=1 * MB,
                        output_bytes=1 * MB, cpu_threads=4),
            kernel("k3", 32 * MB),
            MotionStage("bulk-restructure", restructure,
                        input_bytes=32 * MB, output_bytes=32 * MB,
                        cpu_threads=8),
            kernel("k4", 1 * MB),
        ],
    )


def main():
    chain = make_chain()
    system = DMXSystem(
        [chain],
        SystemConfig(mode=Mode.BUMP_IN_WIRE),
        backends=PlannerConfig(),
    )
    result = system.run_latency(requests_per_app=1)
    (record,) = result.records

    legs = [s.name for s in chain.motion_stages]
    print(f"chain '{chain.name}': {len(legs)} motion legs, "
          f"{result.elapsed * 1e3:.3f} ms end to end\n")
    print("per-leg planner decisions:")
    for name, kind, reason in zip(legs, record.backend,
                                  record.planner_reason):
        print(f"  {name:<16} -> {kind:<5} ({reason})")

    print("\nper-backend leg attribution:")
    summary = result.recovery_summary()
    for kind, stats in summary["backends"].items():
        row = ", ".join(f"{k}={v}" for k, v in sorted(stats.items()))
        print(f"  {kind:<5} {row}")

    print("\nphase totals (ms):")
    for phase, seconds in sorted(record.phases.items()):
        if seconds:
            print(f"  {phase:<14} {seconds * 1e3:8.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
