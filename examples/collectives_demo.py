#!/usr/bin/env python
"""Collective data movement with DMX (Sec. V / Fig. 17).

Sweeps broadcast and all-reduce over growing accelerator fan-outs,
comparing the CPU-staged baseline against DMX's DRX distribution tree.

Usage::

    python examples/collectives_demo.py [payload_mb]
"""

import sys

from repro.core import CollectiveSystem, Mode, SystemConfig
from repro.eval import format_table

MB = 1024 * 1024


def main() -> None:
    payload = int(float(sys.argv[1]) * MB) if len(sys.argv) > 1 else 8 * MB
    print(f"Collectives over a {payload // MB} MB payload\n")
    for operation in ("broadcast", "allreduce"):
        rows = []
        for n in (4, 8, 16, 32):
            base = CollectiveSystem(
                n, SystemConfig(mode=Mode.MULTI_AXL)
            ).run(operation, payload)
            dmx = CollectiveSystem(
                n, SystemConfig(mode=Mode.BUMP_IN_WIRE)
            ).run(operation, payload)
            rows.append([
                n,
                f"{base.latency_s * 1e3:.2f} ms",
                f"{dmx.latency_s * 1e3:.2f} ms",
                f"{base.latency_s / dmx.latency_s:.2f}x",
            ])
        print(format_table(
            ["accelerators", "Multi-Axl", "DMX", "speedup"],
            rows, title=f"[{operation}]",
        ))
        print()


if __name__ == "__main__":
    main()
