"""Fig. 7/8: DRX ISA and compiler — kernel compilation benchmarks.

Times the compiler + functional simulator on the Sound Detection
data-motion kernel (the paper's Fig. 8 sample) and checks the compiled
program's structural properties: hardware loops instead of branches,
SYNC bracketing, tiling that respects the scratchpad.
"""

import numpy as np

from repro.drx import (
    DRXCompiler,
    DRXConfig,
    DRXMemory,
    DRXTimingModel,
    FunctionalDRX,
    Opcode,
    sound_motion_kernel,
)
from repro.restructuring import mel_filterbank

N_FRAMES, N_BINS, N_MELS = 16, 65, 16


def compile_kernel():
    return DRXCompiler(DRXConfig()).compile(
        sound_motion_kernel(N_FRAMES, N_BINS, N_MELS)
    )


def run_compiled(program):
    rng = np.random.default_rng(0)
    n = N_FRAMES * N_BINS
    mem = DRXMemory()
    mem.bind("re", rng.standard_normal(n).astype(np.float32))
    mem.bind("im", rng.standard_normal(n).astype(np.float32))
    mem.bind("bank", mel_filterbank(N_MELS, N_BINS, 16000.0))
    for name, size in [("re2", n), ("im2", n), ("power", n),
                       ("spectrogram", n), ("mel", N_MELS * N_FRAMES),
                       ("out", N_MELS * N_FRAMES)]:
        mem.allocate(name, size, np.float32)
    drx = FunctionalDRX(mem)
    return drx.execute(program)


def test_compile_sound_motion_kernel(run_once):
    program = run_once(compile_kernel)
    counts = program.counts()
    # Hardware loops, no branch instructions ("other" is empty).
    assert counts["loop"] > 0
    assert counts["other"] == 0
    assert counts["sync"] == 2
    assert program.instructions[0].opcode == Opcode.SYNC_START
    assert program.instructions[-1].opcode == Opcode.SYNC_END


def test_execute_compiled_kernel(benchmark):
    program = compile_kernel()
    stats = benchmark.pedantic(run_compiled, args=(program,),
                               rounds=1, iterations=1)
    assert stats.vector_ops > 0
    assert stats.bytes_total > 0
    # The timing model prices the executed trace.
    latency = DRXTimingModel().time_from_stats(stats)
    assert latency > 0
