"""The goodput cliff: chaos sweep with vs. without the control plane.

The resilience acceptance scenario: under injected DRX hangs, every
request the baseline dispatches to a sick unit burns the full per-stage
deadline *while holding a dispatch slot*, so recovery work scales with
traffic and goodput collapses at a fraction of the healthy capacity.
With the control plane armed, the first few failures trip the unit's
breaker and everything after routes around it up front — recovery cost
is O(1) in offered load — so the same fault intensity sustains strictly
more load: the cliff moves right.

The load grid and SLO are calibrated from the model itself (healthy
batch drain rate, unloaded latency), like the serving-knee benchmark,
so the sweep straddles both arms' cliffs regardless of cost-model
drift. A zero-intensity column doubles as the control-plane-overhead
check: with no faults, arming the plane must not move a single number.
"""

import pytest

from repro.core import Mode
from repro.resilience import (
    BreakerConfig,
    ChaosSweepConfig,
    ResilienceConfig,
    run_chaos_sweep,
)
from repro.serve import SweepConfig, calibrate_peak_rps, unloaded_latency

INTENSITY = 1.0


def build_config():
    probe = SweepConfig(
        offered_loads_rps=(1.0,),
        benchmark="sound-detection",
        n_tenants=2,
    )
    peak = calibrate_peak_rps(probe, Mode.STANDALONE)
    lat = unloaded_latency(probe, Mode.STANDALONE)
    # A generous SLO (20x unloaded latency): the cliff under test is a
    # throughput collapse from deadline-burning recovery work, not a
    # tail-latency technicality at the SLO boundary.
    loads = tuple(f * peak for f in (0.15, 0.25, 0.35, 0.45, 0.55, 0.65))
    return ChaosSweepConfig(
        offered_loads_rps=loads,
        fault_intensities=(0.0, INTENSITY),
        requests_per_tenant=40,
        slo_s=20 * lat,
        # A tight dispatch window makes slot-holding visible: four slots
        # burning 30 ms deadlines apiece is most of the budget.
        max_inflight=4,
        resilience=ResilienceConfig(
            seed=1,
            breaker=BreakerConfig(cooldown_s=2.0, cooldown_cap_s=8.0),
        ),
        seed=0,
    )


@pytest.fixture(scope="module")
def sweep():
    config = build_config()
    return config, run_chaos_sweep(config)


def test_cliff_shifts_strictly_right_with_control_plane(sweep):
    _, result = sweep
    baseline = result.goodput_cliff_rps(INTENSITY, False)
    resilient = result.goodput_cliff_rps(INTENSITY, True)
    assert baseline > 0.0  # the baseline does sustain light load...
    assert resilient > baseline, (
        f"control plane should move the goodput cliff right: "
        f"baseline={baseline:.1f} resilient={resilient:.1f}"
    )
    assert result.cliff_shift_rps(INTENSITY) == resilient - baseline
    # The grid straddles the baseline's cliff (it actually fell off).
    assert not all(p.sustains(result.goodput_floor)
                   for p in result.cell(INTENSITY, False))


def test_breakers_convert_deadline_burns_into_reroutes(sweep):
    _, result = sweep
    baseline = result.cell(INTENSITY, False)
    resilient = result.cell(INTENSITY, True)
    assert all(p.rerouted == 0 for p in baseline)
    for base_point, res_point in zip(baseline, resilient):
        assert res_point.rerouted > 0
        # Fewer requests pay the deadline tax on the resilient arm.
        assert res_point.fallbacks < base_point.fallbacks
        # No arm loses requests: recovery absorbs what it cannot avoid.
        assert base_point.failed == res_point.failed == 0


def test_tail_latency_tamed_past_the_baseline_cliff(sweep):
    _, result = sweep
    baseline = result.cell(INTENSITY, False)
    resilient = result.cell(INTENSITY, True)
    # At every load past the baseline's cliff, the resilient arm's tail
    # is strictly lower — it stopped queueing behind deadline burns.
    past_cliff = [
        (b, r) for b, r in zip(baseline, resilient)
        if not b.sustains(result.goodput_floor)
    ]
    assert past_cliff
    for base_point, res_point in past_cliff:
        assert res_point.p99_s < base_point.p99_s
        assert res_point.goodput_rps > base_point.goodput_rps


def test_zero_intensity_control_plane_is_free(sweep):
    _, result = sweep
    baseline = result.cell(0.0, False)
    resilient = result.cell(0.0, True)
    # With nothing to trip on, the armed plane is pure observation: the
    # two arms produce identical serving outcomes, point for point.
    for base_point, res_point in zip(baseline, resilient):
        assert base_point.goodput_rps == res_point.goodput_rps
        assert base_point.p99_s == res_point.p99_s
        assert base_point.completed == res_point.completed
        assert res_point.rerouted == 0
    assert result.goodput_cliff_rps(0.0, False) == \
        result.goodput_cliff_rps(0.0, True)


def test_chaos_sweep_is_byte_identical_given_seed(run_once):
    config = build_config()
    first = run_once(run_chaos_sweep, config)
    second = run_chaos_sweep(config)
    assert first.to_json() == second.to_json()
