"""Backend-planner crossover benchmark: where DSA, DRX, and XDMA each
win, and that the cost-based planner never loses to a fixed backend.

The sweep builds single-motion-leg chains at payload points chosen to
sit *away* from the crossovers (so the pins are robust to small model
retunes, while still breaking if a cost model regresses wholesale):

* **DSA wins small payloads** — its portal submission + descriptor cost
  is tiny next to the DRX's per-job kernel-launch overhead, which
  cannot amortize over an 8 KB job.
* **XDMA wins descriptor-expressible small/medium transforms** — the
  layout transform rides the chained DMA descriptor, so the leg pays
  zero extra hop; only affine/strided shapes under the descriptor's
  payload reach qualify.
* **DRX wins large restructures** — above the XDMA descriptor's
  address reach (and for gather-heavy shapes, at any size) the DRX's
  bandwidth + scratchpad fusion dominates, and batching amortizes its
  program load where XDMA pays per-member descriptor programming.
* **The planner curve is <= every single-backend curve** at each swept
  payload point: scoring live estimates per leg can only pick the
  cheapest eligible path.

Everything here is a DES result, so it must also be *byte-identical*
across runs, and a planner restricted to the pre-refactor backend set
{DRX, CPU} must reproduce the engine-speed golden hashes exactly —
the refactor moved code behind an interface, it did not change a
single event.
"""

import hashlib
import json

import test_engine_speed as _golden

from repro.accelerators.base import AcceleratorSpec
from repro.backends import (
    BACKEND_CPU,
    BACKEND_DRX,
    BACKEND_DSA,
    BACKEND_XDMA,
    PlannerConfig,
)
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.profiles import WorkProfile

KB = 1024
MB = 1024 * 1024

#: Planner actual-vs-best-single tolerance. The planner ranks *a
#: priori* estimates; queueing realized during execution can differ
#: from the estimate by a sliver, so the dominance pin allows 2%.
DOMINANCE_SLACK = 0.02

_SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)


def _affine(nbytes: int) -> WorkProfile:
    """Strided reshape: descriptor-expressible (XDMA-eligible)."""
    return WorkProfile(
        name="affine", bytes_in=nbytes, bytes_out=nbytes,
        elements=max(1, nbytes // 4), ops_per_element=2.0,
        branch_fraction=0.02, gather_fraction=0.0,
    )


def _gathery(nbytes: int) -> WorkProfile:
    """Gather-heavy, compute-rich transform: never XDMA-expressible."""
    return WorkProfile(
        name="gathery", bytes_in=2 * nbytes, bytes_out=nbytes,
        elements=max(1, nbytes // 4), ops_per_element=20.0,
        gather_fraction=0.3,
    )


def _chain(payload: int, profile: WorkProfile) -> AppChain:
    """kernel - motion - kernel, with fixed tiny kernels so the motion
    leg dominates the latency differences between backends."""
    return AppChain(
        name=f"leg{payload}",
        stages=[
            KernelStage("k1", _SPEC, cpu_time_s=6e-4, accel_time_s=1e-4,
                        output_bytes=payload),
            MotionStage("m", profile, input_bytes=payload,
                        output_bytes=payload, cpu_threads=4),
            KernelStage("k2", _SPEC, cpu_time_s=6e-4, accel_time_s=1e-4,
                        output_bytes=max(1, payload // 4)),
        ],
    )


def _system(payload, profile, candidates):
    return DMXSystem(
        [_chain(payload, profile)],
        SystemConfig(mode=Mode.BUMP_IN_WIRE),
        backends=PlannerConfig(candidates=candidates),
    )


def _mean_latency(payload, profile, candidates, requests=6):
    result = _system(payload, profile, candidates).run_throughput(
        requests_per_app=requests
    )
    latencies = [r.end - r.start for r in result.records]
    return sum(latencies) / len(latencies), result


def _batched_mean(payload, profile, candidates, count=8):
    system = _system(payload, profile, candidates)
    records = []

    def driver():
        batch = yield from system.submit_batch(0, count)
        records.extend(batch)

    system.sim.spawn(driver())
    system.sim.run()
    latencies = [r.end - r.start for r in records]
    return sum(latencies) / len(latencies), records


def _executed(result, kind):
    return result.backend_legs[kind]["executed"]


# -- crossover pins ------------------------------------------------------


def test_dsa_wins_small_payloads():
    """4 KB gathery leg: the DRX's kernel-launch overhead has nothing
    to amortize over, the DSA's portal submit is ~10x cheaper. (The
    crossover sits near 8 KB, where the DRX's restructure bandwidth
    starts paying back the launch cost.)"""
    dsa, dsa_result = _mean_latency(4 * KB, _gathery(4 * KB), (BACKEND_DSA,))
    drx, _ = _mean_latency(4 * KB, _gathery(4 * KB), (BACKEND_DRX,))
    assert dsa < drx, f"dsa {dsa:.6e} !< drx {drx:.6e}"
    assert _executed(dsa_result, BACKEND_DSA) > 0


def test_xdma_wins_expressible_medium():
    """1 MB affine reshape: in-flight transform fuses the restructure
    into the move — DRX pays an extra hop, DSA an extra bounce through
    host staging."""
    profile = _affine(1 * MB)
    xdma, xdma_result = _mean_latency(1 * MB, profile, (BACKEND_XDMA,))
    drx, _ = _mean_latency(1 * MB, profile, (BACKEND_DRX,))
    dsa, _ = _mean_latency(1 * MB, profile, (BACKEND_DSA,))
    assert xdma < drx, f"xdma {xdma:.6e} !< drx {drx:.6e}"
    assert xdma < dsa, f"xdma {xdma:.6e} !< dsa {dsa:.6e}"
    assert _executed(xdma_result, BACKEND_XDMA) > 0


def test_drx_wins_large_payloads():
    """32 MB gathery leg: DRX bandwidth + scratchpad fusion; DSA's
    move/transform engines are an order of magnitude slower there."""
    profile = _gathery(32 * MB)
    drx, drx_result = _mean_latency(32 * MB, profile, (BACKEND_DRX,))
    dsa, _ = _mean_latency(32 * MB, profile, (BACKEND_DSA,))
    cpu, _ = _mean_latency(32 * MB, profile, (BACKEND_CPU,))
    assert drx < dsa, f"drx {drx:.6e} !< dsa {dsa:.6e}"
    assert drx < cpu, f"drx {drx:.6e} !< cpu {cpu:.6e}"
    assert _executed(drx_result, BACKEND_DRX) > 0


def test_xdma_ineligible_above_descriptor_reach():
    """32 MB exceeds the descriptor's address reach: an XDMA-only
    candidate set degrades to the CPU fallback, with the reason
    recorded on the request."""
    _, result = _mean_latency(
        32 * MB, _affine(32 * MB), (BACKEND_XDMA,), requests=2
    )
    for record in result.records:
        assert record.backend == [BACKEND_CPU]
        assert "no-eligible-backend" in record.planner_reason[0]
        assert "xdma:ineligible" in record.planner_reason[0]
    assert _executed(result, BACKEND_CPU) == len(result.records)


def test_drx_wins_large_batched_restructures():
    """A coalesced large batch is DRX territory: the program load and
    completion ISR amortize across members, XDMA's descriptor cannot
    reach the payload, and the DSA engines are bandwidth-starved."""
    profile = _gathery(32 * MB)
    drx, drx_records = _batched_mean(32 * MB, profile, (BACKEND_DRX,))
    dsa, _ = _batched_mean(32 * MB, profile, (BACKEND_DSA,))
    cpu, _ = _batched_mean(32 * MB, profile, (BACKEND_CPU,))
    xdma, xdma_records = _batched_mean(32 * MB, profile, (BACKEND_XDMA,))
    assert drx < dsa, f"drx {drx:.6e} !< dsa {dsa:.6e}"
    assert drx < cpu, f"drx {drx:.6e} !< cpu {cpu:.6e}"
    assert drx < xdma, f"drx {drx:.6e} !< xdma-fallback {xdma:.6e}"
    # Batch members agree on the planned backend: one plan, one leg.
    assert {tuple(r.backend) for r in drx_records} == {(BACKEND_DRX,)}
    # The XDMA-only batch degraded to the CPU fallback as one unit.
    assert {tuple(r.backend) for r in xdma_records} == {(BACKEND_CPU,)}


# -- planner dominance ---------------------------------------------------

#: (payload, profile factory) points spanning the crossover map.
SWEEP_POINTS = (
    (8 * KB, _gathery),
    (64 * KB, _affine),
    (1 * MB, _affine),
    (4 * MB, _gathery),
    (32 * MB, _gathery),
)

SINGLE_BACKENDS = (BACKEND_DRX, BACKEND_DSA, BACKEND_XDMA, BACKEND_CPU)


def test_planner_curve_dominates_every_single_backend_curve():
    for payload, make_profile in SWEEP_POINTS:
        profile = make_profile(payload)
        planner_mean, _ = _mean_latency(
            payload, profile, PlannerConfig().candidates
        )
        for kind in SINGLE_BACKENDS:
            single_mean, _ = _mean_latency(payload, profile, (kind,))
            assert planner_mean <= single_mean * (1 + DOMINANCE_SLACK), (
                f"payload={payload} profile={profile.name}: planner "
                f"{planner_mean:.6e} > {kind} {single_mean:.6e}"
            )


# -- determinism ---------------------------------------------------------


def _serialized_run(payload, profile, candidates):
    result = _system(payload, profile, candidates).run_throughput(
        requests_per_app=6
    )
    return json.dumps(
        {
            "mode": result.mode.name,
            "elapsed": result.elapsed,
            "backend_legs": result.backend_legs,
            "records": [
                {
                    "app": r.app, "start": r.start, "end": r.end,
                    "phases": r.phases, "backend": r.backend,
                    "planner_reason": r.planner_reason,
                    "request_id": r.request_id,
                }
                for r in sorted(
                    result.records, key=lambda r: (r.app, r.request_id)
                )
            ],
        },
        sort_keys=True,
    )


def test_planner_results_byte_identical_across_runs():
    candidates = PlannerConfig().candidates
    profile = _affine(1 * MB)
    first = _serialized_run(1 * MB, profile, candidates)
    second = _serialized_run(1 * MB, profile, candidates)
    assert first == second
    assert (
        hashlib.sha256(first.encode()).hexdigest()
        == hashlib.sha256(second.encode()).hexdigest()
    )


# -- pre-refactor identity ----------------------------------------------

_LEGACY = PlannerConfig(candidates=(BACKEND_DRX, BACKEND_CPU))


def test_drx_cpu_planner_reproduces_sweep_golden():
    """The {DRX, CPU} planner IS the pre-refactor engine: the fixed-seed
    serving sweep hashes to the same golden byte-for-byte."""
    digest = hashlib.sha256(
        _golden._sweep_json(backends=_LEGACY).encode()
    ).hexdigest()
    assert digest == _golden.SWEEP_GOLDEN_SHA256


def test_drx_cpu_planner_reproduces_run_result_golden():
    digest = hashlib.sha256(
        _golden._run_result_json(backends=_LEGACY).encode()
    ).hexdigest()
    assert digest == _golden.RUNRESULT_GOLDEN_SHA256
