"""Table I: the five end-to-end benchmarks and their structure."""

from repro.eval import table1_benchmarks

MB = 1024 * 1024


def test_table1(run_once):
    rows = run_once(table1_benchmarks)
    assert len(rows) == 5
    names = [row[0] for row in rows]
    assert names == [
        "video-surveillance",
        "sound-detection",
        "brain-stimulation",
        "pii-redaction",
        "db-hash-join",
    ]
    # Every benchmark chains two kernels through one restructuring step,
    # and Table I's implementation mix appears: the video decoder is the
    # hard-IP, the DNN kernels are RTL, the rest are HLS library kernels.
    impls = {row[0]: (row[2], row[5]) for row in rows}
    assert impls["video-surveillance"] == ("hard-ip", "rtl")
    assert impls["sound-detection"] == ("hls", "hls")
    assert impls["db-hash-join"] == ("hls", "hls")
