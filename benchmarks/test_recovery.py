"""Permanent-failure acceptance: kill a DRX card mid-run and prove the
system detects, decommissions, drains, rescues, and — on revival —
re-admits it, with the conservation checker signing off on every
artifact the suite writes.

The pinned properties:

* (a) a card killed at ``t=T`` is detected and decommissioned within
  the detection budget, and every drained request is disposed of *at*
  the drain — nothing keeps burning deadline on the corpse afterwards;
* (b) post-kill steady-state goodput is within 10% of the
  (N−1)-card baseline (a run that never had the card at all);
* (c) revival restores the pre-kill service level;
* (d) arming the permanent-failure layer with a crash-free plan leaves
  runs byte-identical to unarmed ones;
* (e) the invariant checker passes on every artifact this suite
  produces — and fails loudly on a seeded mutation that double-counts
  a rescued request.
"""

import json

import pytest

from repro.core import Mode
from repro.faults import CrashPlan, DomainCrash
from repro.resilience import (
    RecoveryScenarioConfig,
    run_recovery_scenario,
    verify_artifact_path,
)
from repro.serve import SweepConfig, calibrate_peak_rps

#: STANDALONE, 4 tenants → two cards; drx.s0 carries tenants 0 and 1.
TARGET = "drx.s0"
N_TENANTS = 4
REQUESTS = 48
DETECT_BUDGET_S = 1e-3


def _calibrate():
    probe = SweepConfig(
        offered_loads_rps=(1.0,),
        benchmark="sound-detection",
        n_tenants=N_TENANTS,
    )
    return calibrate_peak_rps(probe, Mode.STANDALONE)


@pytest.fixture(scope="module")
def timeline():
    """Offered load and the kill/revive schedule, derived from the
    model's own calibrated capacity so the scenario stays mid-knee
    under cost-model drift."""
    offered = 0.4 * _calibrate()
    span = REQUESTS * N_TENANTS / offered  # expected arrival span
    return {
        "offered_rps": offered,
        "span_s": span,
        "kill_at_s": 0.25 * span,
        "revive_at_s": 0.55 * span,
    }


def _scenario(tl, crashes, path=None, **overrides):
    kwargs = dict(
        offered_rps=tl["offered_rps"],
        crashes=crashes,
        n_tenants=N_TENANTS,
        requests_per_tenant=REQUESTS,
        benchmark="sound-detection",
        slo_s=50e-3,
        seed=0,
        artifact_path=path,
    )
    kwargs.update(overrides)
    return run_recovery_scenario(RecoveryScenarioConfig(**kwargs))


@pytest.fixture(scope="module")
def killed(timeline, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("recovery") / "killed.jsonl")
    crashes = (DomainCrash(target=TARGET, at_s=timeline["kill_at_s"]),)
    return _scenario(timeline, crashes, path)


@pytest.fixture(scope="module")
def revived(timeline, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("recovery") / "revived.jsonl")
    crashes = (DomainCrash(
        target=TARGET,
        at_s=timeline["kill_at_s"],
        revive_at_s=timeline["revive_at_s"],
    ),)
    return _scenario(timeline, crashes, path)


@pytest.fixture(scope="module")
def amputated(timeline):
    """The (N−1)-card baseline: the card dies before any traffic."""
    return _scenario(
        timeline, (DomainCrash(target=TARGET, at_s=1e-9),), verify=False
    )


@pytest.fixture(scope="module")
def healthy(timeline):
    """The never-killed reference run (an empty crash schedule)."""
    return _scenario(timeline, (), verify=False)


# -- (a) detection, decommission, drain ---------------------------------------


def test_kill_detected_within_budget(killed, timeline):
    detect = killed.detect_latency_s[TARGET]
    assert detect is not None
    assert detect <= DETECT_BUDGET_S
    assert killed.domains["decommissioned"] == [TARGET]


def test_nothing_burns_deadline_after_the_drain(killed, timeline):
    """Every request touching the corpse is disposed of when drained —
    rescued then, not parked to burn deadline budget first."""
    from repro.telemetry import load_artifact

    assert all(not r.failed for r in killed.records)
    artifact = load_artifact(killed.artifact_path)
    dead_at = next(
        i.time for i in artifact.instants if i.name == "domain_dead"
    )
    drains = [i for i in artifact.instants if i.name == "domain_drain"]
    assert drains
    # Decommission happens at the first drain; nothing drains later
    # (post-detection dispatch never offers the corpse again).
    assert max(i.time for i in drains) <= dead_at + 1e-9
    assert killed.domains["drained"] == killed.domains["rescued"] > 0


# -- (b) post-kill goodput vs the (N−1)-card baseline --------------------------


def test_post_kill_goodput_matches_amputated_baseline(
    killed, amputated, timeline
):
    start = timeline["kill_at_s"] + 0.1 * timeline["span_s"]
    end = 0.9 * timeline["span_s"]
    after_kill = killed.goodput_between(start, end)
    baseline = amputated.goodput_between(start, end)
    assert baseline > 0
    assert after_kill == pytest.approx(baseline, rel=0.10), (
        f"post-kill goodput {after_kill:.1f} rps strays from the "
        f"(N-1)-card baseline {baseline:.1f} rps"
    )


# -- (c) revival restores the pre-kill service level ---------------------------


def test_revival_restores_pre_kill_service(revived, healthy, timeline):
    """Once the revived card is back and the dead-period backlog has
    drained, windowed goodput matches a run that never saw the kill —
    the pre-kill knee is restored, not merely approached."""
    assert revived.domains["revived"] == [TARGET]
    window = (0.65 * timeline["span_s"], 0.95 * timeline["span_s"])
    post = revived.goodput_between(*window)
    reference = healthy.goodput_between(*window)
    assert reference > 0
    assert post == pytest.approx(reference, rel=0.10), (
        f"post-revival goodput {post:.1f} rps does not recover the "
        f"healthy level {reference:.1f} rps"
    )


def test_revived_card_serves_again(revived, timeline):
    from repro.telemetry import load_artifact

    artifact = load_artifact(revived.artifact_path)
    back = [
        s for s in artifact.spans
        if s.actor == TARGET and s.start > timeline["revive_at_s"]
    ]
    assert back, "the revived card must serve new legs"


# -- (d) crash-free armed runs are byte-identical ------------------------------


def test_armed_crash_free_run_is_byte_identical(tmp_path):
    from repro.core import DMXSystem, SystemConfig
    from repro.serve import (
        FrontendConfig,
        PoissonArrivals,
        ServingFrontend,
        TenantSpec,
    )
    from repro.telemetry import write_artifact
    from repro.workloads import build_benchmark_chains

    def run(domains):
        chains = build_benchmark_chains("sound-detection", N_TENANTS)
        system = DMXSystem(
            chains, SystemConfig(mode=Mode.STANDALONE), domains=domains
        )
        tenants = [
            TenantSpec(name=c.name, arrivals=PoissonArrivals(500.0),
                       n_requests=8)
            for c in chains
        ]
        return ServingFrontend(
            system, tenants, FrontendConfig(max_inflight=8, slo_s=50e-3),
            seed=0,
        ).run()

    unarmed = run(None)
    armed = run(CrashPlan())  # a crash-free plan arms nothing at all
    a = str(tmp_path / "unarmed.jsonl")
    b = str(tmp_path / "armed.jsonl")
    write_artifact(a, unarmed.telemetry, meta={"k": "identity"})
    write_artifact(b, armed.telemetry, meta={"k": "identity"})
    assert open(a, "rb").read() == open(b, "rb").read()


# -- (e) the checker signs off — and catches cooked books ----------------------


def test_invariants_pass_on_every_artifact(killed, revived):
    for result in (killed, revived):
        report = verify_artifact_path(result.artifact_path)
        assert report.ok, report.problems
        assert report.checked["C5-rescue"] > 0


def test_checker_fails_on_double_counted_rescue(killed, tmp_path):
    rows = [json.loads(line) for line in open(killed.artifact_path)]
    rescued = next(
        r for r in rows
        if r["kind"] == "span" and r["cat"] == "request"
        and r["attrs"].get("rescued")
    )
    for row in rows:
        if row["kind"] == "span" and row["req"] == rescued["req"]:
            row["attrs"].pop("abandoned", None)
    path = str(tmp_path / "cooked.jsonl")
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True,
                                separators=(",", ":")) + "\n")
    report = verify_artifact_path(path)
    assert not report.ok
    assert any(p.startswith("C5:") for p in report.problems)
