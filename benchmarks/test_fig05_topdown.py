"""Fig. 5: top-down characterization of data-restructuring ops.

Paper targets: Back-End Bound dominates (53%-77.6%); Bad Speculation
<= 12.5%; Front-End <= 14%; L1I MPKI ~2.3 (well under CloudSuite's 7.8);
L1D MPKI 50-215; L2 MPKI 25-109, both far above CloudSuite's <3.
"""

from repro.eval import fig5_topdown

CLOUDSUITE_L1I_MPKI = 7.8
CLOUDSUITE_L2_MPKI = 3.0


def test_fig5_backend_bound_dominates(run_once):
    result = run_once(fig5_topdown)
    for name, row in result.rows_by_benchmark.items():
        backend = row["backend_core_bound"] + row["backend_memory_bound"]
        assert backend > 0.5, (name, backend)
        # Back-end is the dominant category for every suite.
        assert backend > row["front_end_bound"]
        assert backend > row["bad_speculation"]


def test_fig5_speculation_and_frontend_small(run_once):
    result = run_once(fig5_topdown)
    for name, row in result.rows_by_benchmark.items():
        assert row["bad_speculation"] <= 0.15, name
        assert row["front_end_bound"] <= 0.15, name


def test_fig5_instruction_working_set_fits_l1i(run_once):
    result = run_once(fig5_topdown)
    for name, row in result.rows_by_benchmark.items():
        assert row["l1i_mpki"] < CLOUDSUITE_L1I_MPKI, (name, row["l1i_mpki"])


def test_fig5_data_mpki_far_above_cloudsuite(run_once):
    result = run_once(fig5_topdown)
    for name, row in result.rows_by_benchmark.items():
        assert row["l1d_mpki"] > 40, (name, row["l1d_mpki"])
        assert row["l2_mpki"] > 10 * CLOUDSUITE_L2_MPKI, (name, row["l2_mpki"])
        assert row["l2_mpki"] < row["l1d_mpki"]
