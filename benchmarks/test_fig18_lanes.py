"""Fig. 18: sensitivity to the number of RE lanes.

Paper targets: speedup improves up to 128 lanes, then flattens —
"increasing the lanes to 256 does not provide noticeable benefits" —
which is why 128 is the default configuration.
"""

from repro.eval import fig18_lane_sweep


def test_fig18_speedup_grows_then_saturates(run_once):
    sweep = run_once(fig18_lane_sweep)
    assert sweep[64] > sweep[32]
    assert sweep[128] > sweep[64]
    # Saturation: the 128->256 gain is small in absolute terms and much
    # smaller than the 64->128 gain.
    gain_64_128 = sweep[128] - sweep[64]
    gain_128_256 = sweep[256] - sweep[128]
    assert gain_128_256 < 0.5 * gain_64_128
    assert gain_128_256 / sweep[128] < 0.08


def test_fig18_default_config_is_at_the_knee(run_once):
    from repro.drx import DEFAULT_DRX

    run_once(lambda: DEFAULT_DRX)

    assert DEFAULT_DRX.lanes == 128
