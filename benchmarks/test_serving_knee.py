"""Serving knee curves: p99 latency vs. offered load, per placement.

The serving-side acceptance scenario for ``repro.serve``: sweep one
benchmark's chains across a grid of offered loads under Poisson arrivals
for both the CPU-restructuring baseline (Multi-Axl) and DMX
(Bump-in-the-Wire). Three properties must hold:

* each mode's p99 curve is monotone non-decreasing in offered load
  (queueing only ever hurts the tail);
* DMX sustains strictly higher offered load than the CPU baseline
  before its first SLO violation (the knee shifts right);
* the sweep is deterministic: equal seeds serialize to byte-identical
  ``SweepResult`` JSON.

The load grid and SLO are calibrated from the model itself (batch-issue
drain rate and unloaded latency) so the sweep straddles both knees
regardless of cost-model drift.
"""

import pytest

from repro.core import Mode
from repro.serve import (
    ShedPolicy,
    SweepConfig,
    calibrate_peak_rps,
    run_sweep,
    unloaded_latency,
)

CPU_MODE = Mode.MULTI_AXL
DMX_MODE = Mode.BUMP_IN_WIRE


def build_config():
    """Grid and SLO derived from the model's own calibration points."""
    probe = SweepConfig(
        offered_loads_rps=(1.0,),
        benchmark="sound-detection",
        n_tenants=2,
    )
    axl_peak = calibrate_peak_rps(probe, CPU_MODE)
    dmx_peak = calibrate_peak_rps(probe, DMX_MODE)
    # SLO: comfortable at light load for BOTH modes (3x the slower
    # mode's no-queueing latency), violated once queueing takes over.
    slo_s = 3.0 * unloaded_latency(probe, CPU_MODE)
    # Loads from well under the CPU knee to well past the DMX peak (the
    # deep-overload point needs enough backlog to blow the tail within
    # the finite per-tenant request budget, hence 3x).
    loads = tuple(
        sorted(
            [0.4 * axl_peak, 0.8 * axl_peak]
            + [0.5 * dmx_peak, 1.0 * dmx_peak, 1.5 * dmx_peak,
               3.0 * dmx_peak]
        )
    )
    return SweepConfig(
        offered_loads_rps=loads,
        benchmark="sound-detection",
        n_tenants=2,
        modes=(CPU_MODE, DMX_MODE),
        requests_per_tenant=48,
        arrival_kind="poisson",
        seed=0,
        slo_s=slo_s,
        max_inflight=8,
        shed=ShedPolicy.QUEUE,
    )


@pytest.fixture(scope="module")
def sweep():
    config = build_config()
    return config, run_sweep(config)


def test_p99_monotone_in_offered_load(sweep):
    _, result = sweep
    for mode in (CPU_MODE, DMX_MODE):
        curve = result.p99_curve(mode)
        assert len(curve) == 6
        for (load_a, p99_a), (load_b, p99_b) in zip(curve, curve[1:]):
            assert load_b > load_a
            assert p99_b >= p99_a, (
                f"{mode.value}: p99 fell from {p99_a} to {p99_b} "
                f"as load rose {load_a} -> {load_b}"
            )


def test_dmx_knee_strictly_past_cpu_knee(sweep):
    config, result = sweep
    cpu_knee = result.knee_rps(CPU_MODE)
    dmx_knee = result.knee_rps(DMX_MODE)
    assert dmx_knee > cpu_knee, (
        f"DMX should sustain more load within SLO={config.slo_s * 1e3:.1f}ms:"
        f" cpu={cpu_knee} dmx={dmx_knee}"
    )
    # Both modes meet the SLO at the lightest load (the SLO is set from
    # the CPU mode's own unloaded latency)...
    assert result.for_mode(CPU_MODE)[0].within_slo(config.slo_s)
    # ...and both eventually break: the grid straddles both knees.
    assert not result.for_mode(CPU_MODE)[-1].within_slo(config.slo_s)
    assert not result.for_mode(DMX_MODE)[-1].within_slo(config.slo_s)


def test_dmx_goodput_dominates_at_every_load(sweep):
    _, result = sweep
    cpu_points = result.for_mode(CPU_MODE)
    dmx_points = result.for_mode(DMX_MODE)
    for cpu_point, dmx_point in zip(cpu_points, dmx_points):
        assert dmx_point.goodput_rps >= cpu_point.goodput_rps


def test_sweep_is_byte_identical_given_seed(run_once):
    config = build_config()
    first = run_once(run_sweep, config)
    second = run_sweep(config)
    assert first.to_json() == second.to_json()
