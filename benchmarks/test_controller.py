"""Closed-loop acceptance: the unified controller holds the SLO where
every static policy fails, and recovers capacity after a kill without
hand-set weights.

Two scenarios, both calibrated from the model's own two-card peak so
they stay mid-knee under cost-model drift:

**Load ramp.** Offered load steps from 30% of peak to 115% of peak
halfway through the run. The armed system — live WRR weights, the
priced brownout ladder, the DRX autoscaler (one standby card), and the
placement optimizer all driven by one controller — may overshoot during
the step transient, but must re-enter the SLO within a bounded number
of rollup windows and *hold* it for every settled window after. Each
static baseline keeps violating in that same settled region:

* *fixed capacity* — the single-card quiet-load provision, never
  scaled (the armed run starts from the same one-card provision and
  commissions its standby under pressure);
* *fixed weights* — a hand-set WRR skew that starves one tenant;
* *fixed ladder* — the open-loop threshold brownout with no controller
  behind it.

**Kill.** A steady mid-knee run loses one card mid-run. The armed
controller must evacuate the dead card's tenants at request boundaries
(no hand-set weights, no pre-planned failover) and land within 10% of
the amputated baseline's goodput — the (N−1)-card service level, not a
degraded one.

Both scenarios are deterministic: equal seeds replay byte-identically,
so every threshold below is exact, not statistical.
"""

import pytest

from repro.control import ControllerConfig
from repro.core import DMXSystem, Mode, SystemConfig
from repro.faults import CrashPlan, DomainCrash
from repro.resilience import ResilienceConfig
from repro.resilience.brownout import BrownoutConfig
from repro.serve import (
    Discipline,
    FrontendConfig,
    PoissonArrivals,
    RampArrivals,
    ServingFrontend,
    SweepConfig,
    TenantSpec,
    calibrate_peak_rps,
)
from repro.telemetry.alerts import ObservationConfig
from repro.workloads import build_benchmark_chains

N_TENANTS = 4
REQUESTS = 120
SLO_S = 30e-3
LEG_S = 0.05  # each ramp segment's duration
#: Rollup windows (10 ms each) before which the step transient must be
#: over: every window from here on must hold the SLO. The hot leg
#: starts at window 5, so this grants the controller ~130 ms to sense,
#: shed, scale, and migrate.
SETTLE_WINDOW = 18


def _controller(**overrides):
    # The de-escalation band floor is set below the shed-equilibrium
    # tail (~7 ms here) on purpose: with the default band the
    # controller de-escalates out of a perfectly good shed state, the
    # overload excursion repeats, and the run limit-cycles at ~200 ms
    # period. Wide bands are how real operators stop flapping.
    kwargs = dict(deescalate_fraction=0.2)
    kwargs.update(overrides)
    return ControllerConfig(**kwargs)


@pytest.fixture(scope="module")
def peak():
    probe = SweepConfig(
        offered_loads_rps=(1.0,),
        benchmark="sound-detection",
        n_tenants=N_TENANTS,
    )
    return calibrate_peak_rps(probe, Mode.STANDALONE)


def _ramp_run(peak, *, controller=None, brownout=None, weights=None,
              kill=None):
    quiet = 0.30 * peak / N_TENANTS
    hot = 1.15 * peak / N_TENANTS
    chains = build_benchmark_chains("sound-detection", N_TENANTS)
    system = DMXSystem(
        chains, SystemConfig(mode=Mode.STANDALONE),
        resilience=ResilienceConfig(seed=7),
    )
    if kill is not None:
        system.control.mark_dead(kill)
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=RampArrivals(segments=((LEG_S, quiet), (LEG_S, hot))),
            n_requests=REQUESTS,
            weight=(weights[i] if weights else 1),
            priority=i % 2,
        )
        for i, chain in enumerate(chains)
    ]
    frontend = ServingFrontend(
        system, tenants,
        FrontendConfig(
            max_inflight=6, discipline=Discipline.WRR, slo_s=SLO_S,
            brownout=brownout, controller=controller,
            observation=ObservationConfig(alerts=None),
        ),
        seed=3,
    )
    result = frontend.run()
    return result, frontend.controller_actions


def _worst_window_p99(result):
    """window index → max tenant-windowed p99 across tenants."""
    worst = {}
    for key in result.rollups.keys("tenant"):
        for window in result.rollups.for_key("tenant", key):
            p99 = window.stats.get("p99_s")
            if p99 is not None:
                worst[window.window] = max(
                    worst.get(window.window, 0.0), p99
                )
    return worst


@pytest.fixture(scope="module")
def armed_ramp(peak):
    return _ramp_run(
        peak,
        controller=_controller(standby_cards=1),
        brownout=BrownoutConfig(min_dwell_s=4e-3),
    )


# -- the armed system holds the SLO -------------------------------------------


def test_armed_holds_windowed_p99_after_settling(armed_ramp):
    result, _ = armed_ramp
    worst = _worst_window_p99(result)
    settled = {w: p for w, p in worst.items() if w >= SETTLE_WINDOW}
    assert settled, "the run must outlive the settle point"
    violations = {w: p for w, p in settled.items() if p > SLO_S}
    assert not violations, (
        f"armed controller lost the SLO in settled windows: "
        f"{ {w: round(p * 1e3, 1) for w, p in violations.items()} } ms"
    )


def test_armed_transient_is_bounded(armed_ramp):
    """The step overshoot exists — this scenario is a real overload,
    not a gimme — but every violating window precedes the settle
    point: the controller recovers, it does not merely coexist."""
    result, _ = armed_ramp
    worst = _worst_window_p99(result)
    violating = [w for w, p in worst.items() if p > SLO_S]
    assert violating, "the ramp must actually stress the system"
    assert max(violating) < SETTLE_WINDOW


def test_armed_run_engages_every_actuator(armed_ramp):
    _, actions = armed_ramp
    kinds = {kind for _, kind, _ in actions}
    assert {"weight", "tier", "scale_up", "migration"} <= kinds, kinds


# -- every static baseline fails where the armed system holds -----------------


@pytest.mark.parametrize(
    "label,overrides",
    [
        ("fixed-capacity", dict(kill="drx.s1")),
        ("fixed-weights", dict(weights=[8, 8, 8, 1])),
        ("fixed-ladder", dict(brownout=BrownoutConfig(min_dwell_s=4e-3))),
    ],
)
def test_static_baseline_violates_in_the_settled_region(
    peak, label, overrides
):
    result, _ = _ramp_run(peak, **overrides)
    worst = _worst_window_p99(result)
    settled_violations = [
        w for w, p in worst.items() if w >= SETTLE_WINDOW and p > SLO_S
    ]
    assert settled_violations, (
        f"{label}: expected persistent SLO violations after window "
        f"{SETTLE_WINDOW}, found none — the baseline is not a baseline"
    )


# -- kill recovery without hand-set weights -----------------------------------


def _kill_run(peak, crashes):
    offered = 0.4 * peak
    chains = build_benchmark_chains("sound-detection", N_TENANTS)
    system = DMXSystem(
        chains, SystemConfig(mode=Mode.STANDALONE),
        resilience=ResilienceConfig(seed=7),
        domains=CrashPlan(crashes=crashes),
    )
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=PoissonArrivals(offered / N_TENANTS),
            n_requests=48,
            priority=i % 2,
        )
        for i, chain in enumerate(chains)
    ]
    frontend = ServingFrontend(
        system, tenants,
        FrontendConfig(
            max_inflight=6, discipline=Discipline.WRR, slo_s=50e-3,
            brownout=BrownoutConfig(min_dwell_s=4e-3),
            controller=_controller(standby_cards=0),
            observation=ObservationConfig(alerts=None),
        ),
        seed=3,
    )
    result = frontend.run()
    return result, frontend.controller_actions


def _goodput_between(result, start_s, end_s):
    completed = sum(
        1 for r in result.records
        if not r.failed and start_s <= r.end < end_s
    )
    return completed / (end_s - start_s)


@pytest.fixture(scope="module")
def kill_timeline(peak):
    offered = 0.4 * peak
    span = 48 * N_TENANTS / offered  # expected arrival span
    return {"span_s": span, "kill_at_s": 0.25 * span}


@pytest.fixture(scope="module")
def killed(peak, kill_timeline):
    crashes = (DomainCrash(target="drx.s0",
                           at_s=kill_timeline["kill_at_s"]),)
    return _kill_run(peak, crashes)


@pytest.fixture(scope="module")
def amputated(peak):
    return _kill_run(peak, (DomainCrash(target="drx.s0", at_s=1e-9),))


def test_controller_evacuates_the_dead_card(killed, kill_timeline):
    result, actions = killed
    evacuations = [
        (t, detail) for t, kind, detail in actions
        if kind == "migration" and "decommissioned" in detail
    ]
    # Both of drx.s0's tenants re-home onto the survivor, at request
    # boundaries, shortly after the kill — not at the end of the run.
    assert len(evacuations) == 2
    deadline = kill_timeline["kill_at_s"] + 0.05 * kill_timeline["span_s"]
    assert all(t <= deadline for t, _ in evacuations), evacuations
    assert all("-> drx.s1" in detail for _, detail in evacuations)
    assert not any(r.failed for r in result.records)


def test_post_kill_goodput_matches_the_amputated_baseline(
    killed, amputated, kill_timeline
):
    start = kill_timeline["kill_at_s"] + 0.1 * kill_timeline["span_s"]
    end = 0.9 * kill_timeline["span_s"]
    after_kill = _goodput_between(killed[0], start, end)
    baseline = _goodput_between(amputated[0], start, end)
    assert baseline > 0
    assert after_kill == pytest.approx(baseline, rel=0.10), (
        f"post-kill goodput {after_kill:.1f} rps strays from the "
        f"(N-1)-card level {baseline:.1f} rps"
    )
