"""Engine hot-path microbenchmark: reworked DES core vs the vendored
pre-rework engine (``_legacy_sim``).

Two modes:

* **Speed mode** (default, local runs): a serving-shaped synthetic
  workload — many clients contending on a ``PriorityResource``, a
  store-and-forward ``Server`` link, a producer/consumer ``Store``, and
  interrupt churn against crowded wait lists — is run on both engines
  and the reworked engine must process events at >= 2x the legacy rate.
* **Check mode** (``ENGINE_SPEED_CHECK=1``, used by CI): no wall-clock
  assertions (shared runners make timing meaningless); instead both
  engines must do *identical work* — same processed-event count (pinned
  to a constant so workload drift is caught), same final clock — and the
  reworked engine must allocate no more memory than the legacy one.

The workload deliberately stresses the paths the rework changed:
``PriorityResource`` grants under a deep wait queue (legacy: O(n) scan
per grant; reworked: lazily-pruned heap), interrupt delivery to
processes parked on shared events (legacy: O(n) ``callbacks.remove``;
reworked: O(1) identity detach), and the per-event dispatch loop
(legacy: a list allocation per event; reworked: single-slot fast path).

Byte-identity pins: the rework must not change simulation *results*,
only their cost. A fixed-seed serving sweep and a fixed system-level
``RunResult`` are hashed against goldens recorded when the engine
correctness fixes landed; any engine change that shifts event ordering
or timing will break these.
"""

import hashlib
import json
import os
import time
import tracemalloc

import pytest

import _legacy_sim as legacy

import repro.sim.engine as _new_engine
import repro.sim.resources as _new_resources

CHECK_MODE = os.environ.get("ENGINE_SPEED_CHECK") == "1"

# Workload shape: 640 clients x 25 iterations over a 4-slot priority
# resource keeps ~600 requests queued (the legacy linear scan's worst
# case), plus 40 rounds of 64 interrupted sleepers on a shared gate.
N_CLIENTS = 640
ITERATIONS = 25
CHURN_ROUNDS = 40
CHURN_WAITERS = 64

#: Processed-event count for the workload above. Identical on both
#: engines by construction; pinned so a silent workload change (or an
#: engine change that skips/duplicates events) fails loudly.
EXPECTED_EVENTS = 89_084
EXPECTED_FINAL_NOW = 4.166510

#: Required wall-clock speedup of the reworked engine (speed mode).
REQUIRED_SPEEDUP = 2.0

# Golden result hashes, recorded after the engine correctness fixes
# (stale-AllOf counting, lost-Timeout drag, interrupt detach) landed.
# The hot-path rework must reproduce these byte-for-byte.
SWEEP_GOLDEN_SHA256 = (
    "6bcfff1d02a48e441c6f0bca515a52de48b2d0c0f4a4780a6a1302d1f923a9f5"
)
RUNRESULT_GOLDEN_SHA256 = (
    "0f15504502dfd6a5ce29bcdd8ad1a64304df72b563c16bb3d9488ba60b5949e5"
)


class _NewEngine:
    """Namespace adapter so both engines run the same workload code."""

    Simulator = _new_engine.Simulator
    Interrupt = _new_engine.Interrupt
    PriorityResource = _new_resources.PriorityResource
    Server = _new_resources.Server
    Store = _new_resources.Store


def run_workload(M):
    """Run the serving-shaped workload on engine namespace ``M``.

    Returns ``(events_processed, final_now)`` — identical across
    engines when both are correct, which makes wall-clock comparisons
    apples-to-apples and gives check mode its work measure.
    """
    sim = M.Simulator()
    cores = M.PriorityResource(sim, capacity=4, name="cores")
    link = M.Server(sim, capacity=2, name="link")
    queue = M.Store(sim, name="cmds")

    def client(sim, i, n):
        for j in range(n):
            req = cores.request(priority=(i + j) % 3)
            yield req
            yield sim.timeout(0.001 + (i % 7) * 1e-5)
            cores.release(req)
            yield from link.transfer(0.0005 + (j % 5) * 1e-5)
            queue.put((i, j))

    def consumer(sim, total):
        for _ in range(total):
            yield queue.get()

    def sleeper(sim, gate):
        try:
            yield gate
        except M.Interrupt:
            pass

    def churn(sim, rounds):
        for _ in range(rounds):
            # The gate outlives the interrupts (so every sleeper is
            # still parked on it when interrupted) but fires soon after,
            # draining the stale callbacks the O(1) detach leaves behind.
            gate = sim.timeout(0.0003)
            sleepers = [
                sim.spawn(sleeper(sim, gate)) for _ in range(CHURN_WAITERS)
            ]
            yield sim.timeout(0.0001)
            for proc in sleepers:
                proc.interrupt("churn")
            yield sim.timeout(0.0001)

    for i in range(N_CLIENTS):
        sim.spawn(client(sim, i, ITERATIONS))
    sim.spawn(consumer(sim, N_CLIENTS * ITERATIONS))
    sim.spawn(churn(sim, CHURN_ROUNDS))
    sim.run()
    return sim.events_processed, sim.now


def _best_of(fn, rounds=3):
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


# -- work identity (runs in both modes) ----------------------------------


def test_both_engines_do_identical_work():
    legacy_work = run_workload(legacy)
    new_work = run_workload(_NewEngine)
    assert legacy_work == new_work
    events, now = new_work
    assert events == EXPECTED_EVENTS
    assert now == pytest.approx(EXPECTED_FINAL_NOW, abs=1e-9)


# -- speed mode ----------------------------------------------------------


@pytest.mark.skipif(
    CHECK_MODE, reason="wall-clock asserts disabled under ENGINE_SPEED_CHECK"
)
def test_reworked_engine_is_at_least_2x_faster():
    legacy_best, legacy_work = _best_of(lambda: run_workload(legacy))
    new_best, new_work = _best_of(lambda: run_workload(_NewEngine))
    assert legacy_work == new_work  # same work, or the timing is a lie
    speedup = legacy_best / new_best
    legacy_rate = legacy_work[0] / legacy_best
    new_rate = new_work[0] / new_best
    print(
        f"\nlegacy: {legacy_best:.3f}s ({legacy_rate / 1e3:.0f}k ev/s)  "
        f"new: {new_best:.3f}s ({new_rate / 1e3:.0f}k ev/s)  "
        f"speedup: {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"reworked engine only {speedup:.2f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


# -- check mode (CI) -----------------------------------------------------


@pytest.mark.skipif(
    not CHECK_MODE, reason="allocation check runs under ENGINE_SPEED_CHECK=1"
)
def test_reworked_engine_allocates_no_more_than_legacy():
    def peak_alloc(fn):
        tracemalloc.start()
        try:
            fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    legacy_peak = peak_alloc(lambda: run_workload(legacy))
    new_peak = peak_alloc(lambda: run_workload(_NewEngine))
    print(
        f"\npeak allocations — legacy: {legacy_peak / 1e6:.1f} MB  "
        f"new: {new_peak / 1e6:.1f} MB"
    )
    # __slots__ events and the single-callback fast path should only
    # ever shrink the footprint; a small tolerance absorbs interpreter
    # noise without letting a real regression through.
    assert new_peak <= legacy_peak * 1.05


# -- byte-identity goldens (runs in both modes) --------------------------


def _sweep_json(backends=None):
    from repro.accelerators.base import AcceleratorSpec
    from repro.core import AppChain, KernelStage, Mode, MotionStage
    from repro.profiles import WorkProfile
    from repro.serve import SweepConfig, run_sweep

    MB = 1024 * 1024
    spec = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)

    def make_chain(i):
        profile = WorkProfile(
            name="motion", bytes_in=24 * MB, bytes_out=6 * MB,
            elements=3 * MB, ops_per_element=20.0, gather_fraction=0.3,
        )
        return AppChain(
            name=f"app{i}",
            stages=[
                KernelStage("k1", spec, cpu_time_s=5e-3, accel_time_s=1e-3,
                            output_bytes=12 * MB),
                MotionStage("m", profile, input_bytes=12 * MB,
                            output_bytes=6 * MB, cpu_threads=3),
                KernelStage("k2", spec, cpu_time_s=4e-3, accel_time_s=8e-4,
                            output_bytes=MB),
            ],
        )

    config = SweepConfig(
        offered_loads_rps=(40.0, 160.0),
        chain_factory=lambda: [make_chain(i) for i in range(2)],
        requests_per_tenant=10,
        slo_s=50e-3,
        modes=(Mode.MULTI_AXL, Mode.BUMP_IN_WIRE),
        sample_period_s=None,
        seed=1234,
        backends=backends,
    )
    return run_sweep(config).to_json()


def _run_result_json(backends=None):
    from repro.core import DMXSystem, Mode, SystemConfig
    from repro.workloads import build_benchmark_chains

    chains = build_benchmark_chains("sound-detection", 2)
    system = DMXSystem(
        chains, SystemConfig(mode=Mode.BUMP_IN_WIRE), backends=backends
    )
    result = system.run_throughput(requests_per_app=6)
    return json.dumps(
        {
            "mode": result.mode.name,
            "elapsed": result.elapsed,
            "records": [
                {
                    "app": r.app, "start": r.start, "end": r.end,
                    "phases": r.phases, "retries": r.retries,
                    "fell_back": r.fell_back, "rerouted": r.rerouted,
                    "failed": r.failed, "request_id": r.request_id,
                }
                for r in sorted(
                    result.records, key=lambda r: (r.app, r.request_id)
                )
            ],
        },
        sort_keys=True,
    )


def test_sweep_result_matches_golden():
    digest = hashlib.sha256(_sweep_json().encode()).hexdigest()
    assert digest == SWEEP_GOLDEN_SHA256


def test_run_result_matches_golden():
    digest = hashlib.sha256(_run_result_json().encode()).hexdigest()
    assert digest == RUNRESULT_GOLDEN_SHA256
