"""Pre-rework DES engine snapshot (PR 6) — benchmark reference only.

A verbatim vendored copy of ``repro.sim.engine`` + ``repro.sim.resources``
as they stood *before* the hot-path rework, so
``benchmarks/test_engine_speed.py`` can run the same synthetic workload
against both engines and assert the speedup and the allocation savings.

Two deliberate deviations from the snapshot, both benchmark plumbing:

* ``Simulator.events_processed`` counts processed events (the reworked
  engine grew the same counter, so event counts are comparable);
* the ``resources`` module's relative import is rewritten to load from
  this file.

Do not import this from library code and do not "fix" bugs here — it
intentionally preserves the pre-rework behavior (including the latent
bugs fixed in PR 6).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

import copy
import heapq
import itertools
from typing import Callable, Iterable

__all__ = [
    "Event", "Timeout", "Process", "AllOf", "AnyOf", "Interrupt",
    "Simulator", "SimulationError", "WaitTimeout",
    "Request", "Resource", "Server", "Store", "PriorityResource",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double-trigger, bad yields)."""


class WaitTimeout(Exception):
    """A timeout-raced wait exceeded its deadline.

    Raised by the timeout-race helpers (:meth:`~repro.sim.resources.Store.get_or_timeout`,
    :func:`repro.faults.with_timeout`) so callers can distinguish a missed
    deadline from a failed operation.
    """


def _waiter_copy(exc: BaseException) -> BaseException:
    """A per-waiter copy of ``exc`` with a fresh traceback.

    A failed event may have many waiters; re-raising the *same* exception
    instance into each one makes tracebacks accrete frames across waiters
    and lets one waiter's handling mutate what the others observe. Each
    waiter gets a shallow copy instead (falling back to the shared
    instance only for exceptions that cannot be reconstructed).
    """
    try:
        clone = copy.copy(exc)
    except Exception:
        return exc
    if type(clone) is not type(exc):
        return exc
    clone.__cause__ = exc.__cause__
    clone.__context__ = exc.__context__
    clone.__suppress_context__ = exc.__suppress_context__
    clone.__traceback__ = None
    return clone


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    Events start *pending*, become *triggered* when given a value (or an
    exception), and are *processed* once the simulator has run their
    callbacks. Processes wait on events by yielding them.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the simulator has fired this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event triggered with.

        Raises :class:`SimulationError` when the event is still pending.
        """
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise _waiter_copy(self._exception)
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have the exception thrown into them.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._queue_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._queue_event(self, delay=delay)


class Process(Event):
    """A running generator; also an event that triggers when it returns.

    The process event's value is the generator's return value; if the
    generator raises, waiting processes observe the exception.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the process at the current time. Tracked as
        # ``_waiting_on`` so an interrupt delivered before the first resume
        # detaches it cleanly instead of double-resuming the process.
        bootstrap = Event(sim)
        bootstrap._triggered = True
        bootstrap.add_callback(self._resume)
        self._waiting_on = bootstrap
        sim._queue_event(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._waiting_on is not None:
            target = self._waiting_on
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup._triggered = True
        wakeup._exception = Interrupt(cause)
        wakeup.add_callback(self._resume)
        self.sim._queue_event(wakeup)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # stale wakeup for a process that already finished
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event._exception is not None:
                target = self._generator.throw(_waiter_copy(event._exception))
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt kills the process but is not an error
            # of the simulation itself.
            self.sim._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if self.sim.strict:
                raise
            self.fail(exc)
            return
        self.sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composition events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._pending = 0
        for event in self.events:
            if event.sim is not self.sim:
                raise SimulationError("cannot combine events across simulators")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            self._pending += 1
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self.events if ev.processed and ev.ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every component event has triggered."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as any component event triggers."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: a priority queue of (time, tiebreak, event).

    Parameters
    ----------
    strict:
        When True (default) exceptions escaping a process propagate out of
        :meth:`run`; when False they fail the process event instead so
        joiners can observe them.
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.events_processed = 0
        self.strict = strict
        self._heap: List = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        return Process(self, generator, name=name)

    # Alias mirroring SimPy naming, some callers read better with it.
    process = spawn

    # -- scheduling core ----------------------------------------------------

    def _queue_event(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), event))

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` after ``delay``; returns the underlying event."""
        event = Timeout(self, delay)
        event.add_callback(lambda _ev: callback())
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _tie, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``."""
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._heap:
            if until is not None and self.peek() > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until


# -- vendored repro.sim.resources snapshot -------------------------------------





class Request(Event):
    """The event returned by :meth:`Resource.request`.

    Triggers when the slot is granted. Use as a context token: pass it back
    to :meth:`Resource.release` when done.
    """

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """A counted resource with FIFO (or priority) granting.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of slots that may be held simultaneously.
    name:
        Optional label used in error messages and tracing.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        # Statistics for utilization reporting. ``total_wait_time`` covers
        # granted requests only; canceled requests are tracked separately
        # so cancellations don't skew the wait-per-grant figures.
        self.total_wait_time = 0.0
        self.granted_count = 0
        self.canceled_count = 0
        self.canceled_wait_time = 0.0
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def busy_time(self) -> float:
        """Integrated (slots-held x time), for utilization accounting."""
        return self._busy_time + self.in_use * (self.sim.now - self._last_change)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        req = Request(self, priority)
        req._requested_at = self.sim.now
        if self.in_use < self.capacity and not self._queue:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request not in self._users:
            raise SimulationError(
                f"release of a request not holding {self.name or 'resource'}"
            )
        self._account()
        self._users.remove(request)
        self._grant_waiters()

    def cancel(self, request: Request) -> None:
        """Withdraw a request that has not been granted yet."""
        try:
            self._queue.remove(request)
        except ValueError:
            raise SimulationError(
                f"cancel of a request that is not queued on "
                f"{self.name or 'resource'}"
            ) from None
        self.canceled_count += 1
        if getattr(request, "_requested_at", None) is not None:
            self.canceled_wait_time += self.sim.now - request._requested_at
            request._requested_at = None

    def relinquish(self, request: Request) -> None:
        """Release a granted request, or cancel a still-queued one.

        The cleanup primitive for interrupted processes, which cannot know
        whether their request was granted before the interrupt landed.
        """
        if request in self._users:
            self.release(request)
        else:
            self.cancel(request)

    def _grant(self, request: Request) -> None:
        self._account()
        self._users.append(request)
        self.granted_count += 1
        self.total_wait_time += self.sim.now - request._requested_at
        request.succeed(request)

    def _select_next(self) -> Request:
        return self._queue.popleft()

    def _grant_waiters(self) -> None:
        while self._queue and self.in_use < self.capacity:
            self._grant(self._select_next())

    def acquire(self) -> Generator:
        """Process helper: ``req = yield from res.acquire()``."""
        req = self.request()
        yield req
        return req

    def use(self, duration: float) -> Generator:
        """Process helper: hold one slot for ``duration`` time units.

        Interruption-safe: a process interrupted while still *queued*
        withdraws its request (it never held the slot, so releasing
        would corrupt the user list); once granted, the slot is always
        released.
        """
        req = self.request()
        try:
            yield req
            yield self.sim.timeout(duration)
        finally:
            self.relinquish(req)


class PriorityResource(Resource):
    """A :class:`Resource` that grants the lowest-priority-number first.

    Ties break FIFO. Useful for modeling interrupt handling preempting
    batch restructuring work on CPU cores.
    """

    def _select_next(self) -> Request:
        best_index = 0
        best = self._queue[0]
        for index, req in enumerate(self._queue):
            if req.priority < best.priority:
                best, best_index = req, index
        del self._queue[best_index]
        return best


class Server:
    """A resource where each job's occupancy time is known on entry.

    ``transfer(duration)`` is a process helper that waits for a free slot,
    occupies it for ``duration``, then releases — exactly the store-and-
    forward contention model used for PCIe links and DRAM channels.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        self.sim = sim
        self.name = name
        self._resource = Resource(sim, capacity=capacity, name=name)
        self.total_service_time = 0.0
        self.jobs_served = 0

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    @property
    def in_use(self) -> int:
        return self._resource.in_use

    def busy_time(self) -> float:
        return self._resource.busy_time()

    def utilization(self) -> float:
        """Fraction of elapsed time the server was busy (capacity-1 view)."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_time() / (self.sim.now * self._resource.capacity)

    def transfer(self, duration: float) -> Generator:
        """Occupy one slot for ``duration``; yields until complete.

        Interruption-safe: an interrupt delivered while the job is still
        queued withdraws the request instead of releasing an unheld slot.
        """
        if duration < 0:
            raise ValueError(f"negative service time: {duration}")
        req = self._resource.request()
        try:
            yield req
            yield self.sim.timeout(duration)
            self.total_service_time += duration
            self.jobs_served += 1
        finally:
            self._resource.relinquish(req)


class Store:
    """Unbounded FIFO with blocking ``get`` for producer/consumer processes."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.put_count = 0
        self.canceled_getters = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest waiting getter, if any."""
        self.put_count += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event triggering with the next item (immediately if available)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: Event) -> bool:
        """Withdraw a waiting getter (e.g. the loser of an ``AnyOf`` race).

        An abandoned getter left in the queue silently swallows the next
        :meth:`put`, starving whichever consumer actually needed the item —
        every timeout race over :meth:`get` must cancel the losing event.
        Returns True when the getter was still waiting.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        self.canceled_getters += 1
        return True

    def get_or_timeout(self, timeout_s: float) -> Generator:
        """Process helper: next item, or :class:`WaitTimeout` after ``timeout_s``.

        The losing getter is canceled on timeout so it cannot swallow an
        item a later consumer needed.
        """
        get = self.get()
        yield AnyOf(self.sim, [get, Timeout(self.sim, timeout_s)])
        if get.triggered:
            return get.value
        self.cancel(get)
        raise WaitTimeout(
            f"get on {self.name or 'store'} exceeded {timeout_s} s"
        )

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (does not consume)."""
        return list(self._items)
