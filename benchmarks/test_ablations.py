"""Ablations: quantify the design choices DESIGN.md calls out.

Not paper figures — these isolate the mechanisms behind the headline
results: scratchpad fusion, the DRX compiler's vectorization, decoupled
access-execute, tiling vs scratchpad capacity, and NAPI-style
notification handling.
"""

from repro.eval.ablations import (
    ablate_decoupling,
    ablate_notification_strategy,
    ablate_scalar_residual,
    ablate_scratchpad_capacity,
    ablate_scratchpad_fusion,
)


def test_scratchpad_fusion_matters(run_once):
    result = run_once(ablate_scratchpad_fusion)
    # Fusing intermediates on chip is worth a measurable slice of the
    # DMX speedup; without it the DRX streams CPU-like traffic.
    assert result["fused"] > result["unfused"] * 1.05


def test_compiler_vectorization_matters(run_once):
    result = run_once(ablate_scalar_residual)
    # Monotone: the more restructuring stays scalar on DRX, the less
    # speedup survives.
    residuals = sorted(result)
    values = [result[r] for r in residuals]
    assert all(a >= b for a, b in zip(values, values[1:]))
    # Turning the programmable front-end's vectorization off entirely
    # costs a substantial fraction of the benefit.
    assert result[0.0] > result[1.0] * 1.15


def test_decoupled_access_execute_matters(run_once):
    result = run_once(ablate_decoupling)
    assert result["decoupled"] > result["serialized"] * 1.05


def test_bigger_scratchpads_reduce_tiling_overhead(run_once):
    sweep = run_once(ablate_scratchpad_capacity)
    sizes = sorted(sweep)
    loops = [sweep[s]["loop_iterations"] for s in sizes]
    # More scratchpad -> larger tiles -> no more hardware-loop iterations
    # than a smaller scratchpad needs.
    assert all(a >= b for a, b in zip(loops, loops[1:]))
    assert loops[0] > loops[-1]


def test_notification_strategy_under_load(run_once):
    stats = run_once(ablate_notification_strategy)
    # Completions arrive and are all accounted by exactly one strategy.
    assert stats["interrupts"] + stats["coalesced"] + stats["polled"] > 0


def test_small_batches_erode_dmx_benefit(run_once):
    from repro.eval.ablations import ablate_batch_size

    sweep = run_once(ablate_batch_size)
    # At a tenth of the paper's batch size the fixed per-request costs
    # (interrupts, DMA setup, kernel launch) eat into the speedup.
    assert sweep[0.1] < sweep[1.0]
    # Growing batches past the paper's sizes changes little: both sides
    # scale linearly once overheads are amortized.
    assert abs(sweep[4.0] - sweep[1.0]) / sweep[1.0] < 0.15
