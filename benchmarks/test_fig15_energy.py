"""Fig. 15: system energy reduction per DRX placement.

Paper targets: Integrated delivers 3.4-4.0x but does not scale;
Bump-in-the-Wire is best at 1 and 5 apps (3.8x, 4.3x); Standalone is
best at 10 and 15 apps (6.1x, 6.5x) because BITW replicates glue logic
and a dual-port PCIe mux per DRX while Standalone amortizes them.
"""

from repro.core import Mode
from repro.eval import fig15_placement_energy


def test_fig15_all_reductions_positive(run_once):
    result = run_once(fig15_placement_energy)
    for mode, series in result.per_placement.items():
        for level, value in series.items():
            assert value > 1.5, (mode, level, value)


def test_fig15_bitw_best_at_low_concurrency(run_once):
    result = run_once(fig15_placement_energy)
    for level in (1, 5):
        best = max(result.per_placement, key=lambda m:
                   result.per_placement[m][level])
        assert best == Mode.BUMP_IN_WIRE, (level, best)


def test_fig15_standalone_best_at_high_concurrency(run_once):
    """The replicated-glue crossover the paper highlights."""
    result = run_once(fig15_placement_energy)
    for level in (10, 15):
        standalone = result.per_placement[Mode.STANDALONE][level]
        bitw = result.per_placement[Mode.BUMP_IN_WIRE][level]
        assert standalone >= bitw, (level, standalone, bitw)


def test_fig15_integrated_does_not_scale(run_once):
    result = run_once(fig15_placement_energy)
    integrated = result.per_placement[Mode.INTEGRATED]
    # Paper: 3.4x / 3.9x / 4.0x / 4.0x — roughly flat.
    assert max(integrated.values()) < 1.5 * min(integrated.values())
    # While the distributed placements clearly scale.
    standalone = result.per_placement[Mode.STANDALONE]
    assert standalone[15] > 1.25 * standalone[1]


def test_fig15_magnitude_in_paper_band(run_once):
    result = run_once(fig15_placement_energy)
    bitw = result.per_placement[Mode.BUMP_IN_WIRE]
    # Paper: 3.8x @1, 4.3x @5.
    assert 2.5 < bitw[1] < 5.5
    assert 2.8 < bitw[5] < 6.0
