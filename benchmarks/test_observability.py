"""Observation-plane acceptance pins: overhead, identity, attribution.

ISSUE 8's measured acceptance criteria, on the serving-knee scenario:

* arming rollup + alert evaluation adds **under 10%** wall-clock
  overhead to a serving run (the observation pass is post hoc and
  cheap relative to the DES);
* a fault-free run with observation armed is **byte-identical** to the
  unarmed run — same sweep JSON, and the armed artifact's bytes are
  the unarmed artifact's bytes plus appended observation rows;
* a seeded DRX hardware regression produces a burn-rate alert whose
  root cause names a DRX restructuring site, and ``telemetry diff``
  ranks that same site-keyed cause first.
"""

import os
import time
from dataclasses import replace

from repro.core import Mode, SystemConfig
from repro.drx.microarch import DEFAULT_DRX
from repro.serve import ShedPolicy, SweepConfig, run_sweep
from repro.telemetry import (
    AlertConfig,
    ObservationConfig,
    RollupConfig,
    diff_runs,
    load_artifact,
)
from repro.telemetry.alerts import observe_run

CPU_MODE = Mode.MULTI_AXL
DMX_MODE = Mode.BUMP_IN_WIRE

OBSERVED = ObservationConfig(
    rollup=RollupConfig(window_s=10e-3), alerts=AlertConfig()
)


def knee_scenario(**kwargs):
    """The serving-knee sweep shape (fixed grid: the pin is about
    observation behavior, not knee placement)."""
    defaults = dict(
        offered_loads_rps=(60.0, 120.0, 180.0),
        benchmark="sound-detection",
        n_tenants=2,
        modes=(CPU_MODE, DMX_MODE),
        requests_per_tenant=32,
        arrival_kind="poisson",
        seed=0,
        slo_s=50e-3,
        max_inflight=8,
        shed=ShedPolicy.QUEUE,
    )
    defaults.update(kwargs)
    return SweepConfig(**defaults)


# -- overhead ------------------------------------------------------------------


def test_observation_overhead_under_ten_percent():
    """Rollup + alert evaluation must stay under 10% of the serving
    run's own wall-clock on the knee scenario."""
    from repro.serve.frontend import (
        FrontendConfig, ServingFrontend, TenantSpec,
    )
    from repro.serve.arrivals import make_arrivals
    from repro.core.system import DMXSystem
    from repro.workloads import build_benchmark_chains

    def run_once():
        chains = build_benchmark_chains("sound-detection", 2)
        system = DMXSystem(chains, SystemConfig(mode=DMX_MODE))
        tenants = [
            TenantSpec(
                name=chain.name,
                arrivals=make_arrivals("poisson", 90.0),
                n_requests=32,
                queue_capacity=256,
            )
            for chain in chains
        ]
        frontend = ServingFrontend(
            system, tenants,
            FrontendConfig(max_inflight=8, shed=ShedPolicy.QUEUE,
                           slo_s=50e-3),
            seed=0,
        )
        t0 = time.perf_counter()
        result = frontend.run()
        sim_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        observe_run(result.telemetry, OBSERVED, slo_s=50e-3)
        obs_s = time.perf_counter() - t0
        return sim_s, obs_s

    run_once()  # warm caches/JIT-free but import-heavy paths
    sims, obss = zip(*(run_once() for _ in range(3)))
    sim_s, obs_s = min(sims), min(obss)
    assert obs_s < 0.10 * sim_s, (
        f"observation pass took {obs_s * 1e3:.1f}ms vs "
        f"{sim_s * 1e3:.1f}ms serving run ({obs_s / sim_s:.1%})"
    )


# -- identity ------------------------------------------------------------------


def test_armed_run_is_byte_identical_to_unarmed(tmp_path, run_once):
    plain_dir = str(tmp_path / "plain")
    armed_dir = str(tmp_path / "armed")
    plain = run_once(
        run_sweep, knee_scenario(artifact_dir=plain_dir)
    )
    armed = run_sweep(
        knee_scenario(artifact_dir=armed_dir, observation=OBSERVED)
    )
    assert plain.to_json() == armed.to_json()
    for name in sorted(os.listdir(plain_dir)):
        if not name.endswith(".jsonl"):
            continue
        with open(os.path.join(plain_dir, name), "rb") as fh:
            plain_bytes = fh.read()
        with open(os.path.join(armed_dir, name), "rb") as fh:
            armed_bytes = fh.read()
        assert armed_bytes.startswith(plain_bytes), name
        assert len(armed_bytes) > len(plain_bytes), name


# -- seeded regression: alert attribution + diff ranking -----------------------


def regression_pair(tmp_path):
    """(baseline artifact, regressed artifact): same workload/seed, the
    regressed run's DRX derated 12x (clock + DRAM bandwidth)."""
    slow_drx = SystemConfig(drx=replace(
        DEFAULT_DRX,
        frequency_hz=DEFAULT_DRX.frequency_hz / 12,
        dram_bandwidth=DEFAULT_DRX.dram_bandwidth / 12,
    ))
    arts = []
    for tag, system in (("base", None), ("slow", slow_drx)):
        d = str(tmp_path / tag)
        run_sweep(SweepConfig(
            offered_loads_rps=(180.0,),
            modes=(DMX_MODE,),
            requests_per_tenant=24,
            seed=0,
            slo_s=12e-3,
            shed=ShedPolicy.QUEUE,
            artifact_dir=d,
            observation=ObservationConfig(
                rollup=RollupConfig(window_s=10e-3),
                alerts=AlertConfig(budget=0.10),
            ),
            system=system,
        ))
        arts.append(load_artifact(
            os.path.join(d, f"{DMX_MODE.value}-pt0.jsonl")
        ))
    return arts


def test_seeded_drx_regression_fires_attributed_alert(tmp_path, run_once):
    baseline, regressed = run_once(regression_pair, tmp_path)

    # the healthy baseline burns no budget
    assert [a for a in baseline.alerts if a.state == "fire"] == []

    fires = [a for a in regressed.alerts if a.state == "fire"]
    assert fires, "regressed run must fire at least one burn-rate alert"
    for fire in fires:
        # every fire is pinned on a DRX restructuring site, not on the
        # queueing symptom the slowdown induces
        assert fire.phase == "restructuring", fire.cause
        assert ".drx" in fire.site, fire.cause
        assert fire.share > 0.0
        assert "restructuring" in fire.describe()

    # ...and the differential diagnosis ranks the same cause first
    report = diff_runs(baseline, regressed)
    top = report["verdict"]["top_regression"]
    assert top.startswith("restructuring@"), report["verdict"]
    assert ".drx" in top
    assert report["verdict"]["delta_per_request_s"] > 0
    fired_causes = {f.cause for f in fires}
    assert top in fired_causes or any(
        c.startswith("restructuring@") for c in fired_causes
    )
