"""Fig. 19: sensitivity to the PCIe generation.

Paper target: moving from Gen 3 to Gen 4/5 changes DMX's speedup only
slightly (the paper measures a small decrease as the wider-provisioned
baselines catch up on movement) — demonstrating that the Multi-Axl
bottleneck is the data-restructuring *computation*, not interconnect
bandwidth.

Reproduction note (also in EXPERIMENTS.md): our model reproduces the
small-magnitude conclusion, with the sign of the few-percent drift
differing from the paper's.
"""

from repro.eval import fig19_pcie_generations


def test_fig19_speedup_survives_newer_generations(run_once):
    sweep = run_once(fig19_pcie_generations)
    # DMX keeps a large advantage on every generation.
    for gen, speedup in sweep.items():
        assert speedup > 3.0, (gen, speedup)


def test_fig19_sensitivity_is_small(run_once):
    sweep = run_once(fig19_pcie_generations)
    gen3, gen5 = sweep["GEN3"], sweep["GEN5"]
    # The whole Gen3->Gen5 sweep moves the speedup by well under 20%:
    # quadrupled link bandwidth barely matters.
    assert abs(gen5 - gen3) / gen3 < 0.20, sweep


def test_fig19_restructuring_is_the_bottleneck(run_once):
    """The paper's conclusion: even with 4x the PCIe bandwidth *and*
    twice the lanes on the baseline, DMX's advantage persists."""
    sweep = run_once(fig19_pcie_generations)
    assert min(sweep.values()) > 0.6 * max(sweep.values())
