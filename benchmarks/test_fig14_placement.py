"""Fig. 14: latency speedup of the four DRX placements.

Paper target: for every concurrency level the speedups order as
Integrated <= Standalone <= Bump-in-the-Wire <= PCIe-Integrated, with
Standalone/BITW pulling away from Integrated as concurrency grows
(shared-DRX and shared-PCIe contention).
"""

from repro.core import Mode
from repro.eval import fig14_placement_speedup


def test_fig14_ordering(run_once):
    result = run_once(fig14_placement_speedup)
    for level in result.levels:
        integrated = result.per_placement[Mode.INTEGRATED][level]
        standalone = result.per_placement[Mode.STANDALONE][level]
        bitw = result.per_placement[Mode.BUMP_IN_WIRE][level]
        pcie = result.per_placement[Mode.PCIE_INTEGRATED][level]
        assert integrated <= standalone * 1.02, level
        assert standalone <= bitw * 1.02, level
        assert bitw <= pcie * 1.05, level


def test_fig14_distributed_placements_scale_with_concurrency(run_once):
    result = run_once(fig14_placement_speedup)
    for mode in (Mode.STANDALONE, Mode.BUMP_IN_WIRE, Mode.PCIE_INTEGRATED):
        series = result.per_placement[mode]
        assert series[15] > series[1], mode


def test_fig14_integrated_lags_at_scale(run_once):
    """Shared DRX + shared PCIe make Integrated the worst at 15 apps."""
    result = run_once(fig14_placement_speedup)
    at_15 = {m: s[15] for m, s in result.per_placement.items()}
    assert at_15[Mode.INTEGRATED] == min(at_15.values())
    # The gap to BITW is substantial (paper: 4.4x vs ~8x at 15 apps).
    assert at_15[Mode.BUMP_IN_WIRE] > 1.5 * at_15[Mode.INTEGRATED]


def test_fig14_all_placements_beat_baseline(run_once):
    result = run_once(fig14_placement_speedup)
    for mode, series in result.per_placement.items():
        for level, value in series.items():
            assert value > 1.0, (mode, level, value)
