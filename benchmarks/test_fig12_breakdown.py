"""Fig. 12: runtime breakdown, Multi-Axl vs DMX.

Paper targets: baseline restructuring is 66.8/55.7/64.7/71.7% of latency
for 1/5/10/15 apps; DMX shrinks it to 17.0/15.3/13.5/7.2%, leaving
kernel execution as the largest component.
"""

from repro.eval import fig12_breakdown


def test_fig12_baseline_restructuring_share(run_once):
    results = run_once(fig12_breakdown)
    multi_axl = results["Multi-Axl"]
    for level in multi_axl.levels:
        share = multi_axl.fractions[level]["restructuring"]
        # Paper band 55.7-71.7%; allow modeling headroom above.
        assert 0.5 < share < 0.95, (level, share)


def test_fig12_dmx_restructuring_share_small(run_once):
    results = run_once(fig12_breakdown)
    dmx = results["DMX"]
    for level in dmx.levels:
        share = dmx.fractions[level]["restructuring"]
        # Paper band 7.2-17.0%; allow up to ~0.35 for the modeled DRX.
        assert share < 0.35, (level, share)


def test_fig12_dmx_cuts_restructuring_dramatically(run_once):
    results = run_once(fig12_breakdown)
    for level in results["DMX"].levels:
        base = results["Multi-Axl"].fractions[level]["restructuring"]
        dmx = results["DMX"].fractions[level]["restructuring"]
        assert dmx < base / 2.0, (level, base, dmx)


def test_fig12_kernels_grow_in_dmx_breakdown(run_once):
    results = run_once(fig12_breakdown)
    for level in results["DMX"].levels:
        base_kernel = results["Multi-Axl"].fractions[level]["kernel"]
        dmx_kernel = results["DMX"].fractions[level]["kernel"]
        # "the kernel execution takes up larger portion of the runtime
        # breakdown compared to the baseline".
        assert dmx_kernel > base_kernel
