"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): the DES is deterministic, so repeated timing rounds add nothing,
and the assertions are about the *shape* of the results, not the wall
time of the simulator.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


@pytest.fixture(scope="session", autouse=True)
def warm_benchmark_chains():
    """Build all workload chains once so per-figure timings are stable."""
    from repro.workloads import benchmark_names, build_benchmark_chains

    for name in benchmark_names() + ["pii-ner"]:
        build_benchmark_chains(name, 1)
