"""Fig. 13: DMX throughput improvement over Multi-Axl.

Paper targets: 3.0x at 1 app to 13.6x at 15 apps; Personal Info
Redaction shows the lowest improvement (its regex accelerator limits
throughput once restructuring is off the critical path).
"""

from repro.eval import fig13_throughput


def test_fig13_geomean_range_and_growth(run_once):
    result = run_once(fig13_throughput)
    low = result.geomean(1)
    high = result.geomean(15)
    # Paper: 3.0x -> 13.6x.
    assert 1.5 < low < 5.0, low
    assert 10.0 < high < 25.0, high
    assert high > 3.0 * low


def test_fig13_improvement_grows_with_concurrency(run_once):
    result = run_once(fig13_throughput)
    geomeans = [result.geomean(level) for level in result.levels]
    assert all(b > a for a, b in zip(geomeans, geomeans[1:]))


def test_fig13_pii_among_the_lowest(run_once):
    """PIR's throughput is limited by its regex kernel accelerator."""
    result = run_once(fig13_throughput)
    at_15 = {name: series[15] for name, series in result.per_benchmark.items()}
    ordered = sorted(at_15, key=at_15.get)
    assert "pii-redaction" in ordered[:2], at_15
