"""Fig. 16: the three-kernel PIR + NER extension.

Paper targets: even with the compute-intensive NER Transformer added,
the Multi-Axl baseline stays restructuring-heavy; DMX pushes data motion
below ~6% of runtime (kernels become 93.7-97.2%) and still delivers
1.9x-4.2x speedup, growing with concurrency — but less than the
two-kernel version, since the NER kernel dilutes the motion share.
"""

from repro.eval import fig11_speedup, fig16_ner_extension


def test_fig16_speedup_positive_and_grows(run_once):
    result = run_once(fig16_ner_extension)
    speedups = list(result.speedups.values())
    assert all(s > 1.2 for s in speedups), speedups
    assert result.speedups[15] > result.speedups[1]


def test_fig16_dmx_motion_share_small(run_once):
    result = run_once(fig16_ner_extension)
    for level, share in result.dmx_motion_fraction.items():
        # Paper: motion is under ~6.3%; our modeled NER kernel is lighter
        # so motion stays somewhat larger, but kernels must dominate.
        assert share < 0.35, (level, share)


def test_fig16_three_kernel_speedup_below_two_kernel(run_once):
    """Adding a compute-heavy third kernel dilutes DMX's benefit."""
    ner = run_once(fig16_ner_extension, levels=(1, 15))
    two_kernel = fig11_speedup(levels=(1, 15)).per_benchmark["pii-redaction"]
    assert ner.speedups[1] < two_kernel[1]
    assert ner.speedups[15] < two_kernel[15]


def test_fig16_baseline_motion_exceeds_dmx_motion(run_once):
    result = run_once(fig16_ner_extension, levels=(1, 15))
    for level in (1, 15):
        assert (
            result.baseline_restructure_fraction[level]
            > result.dmx_motion_fraction[level] * 0.9
        )
