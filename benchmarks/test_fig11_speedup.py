"""Fig. 11: DMX end-to-end latency speedup over Multi-Axl.

Paper targets: average speedup 3.5x at 1 app growing to 8.2x at 15 apps;
Video Surveillance gains least; Database Hash Join gains most.
"""

from repro.eval import fig11_speedup


def test_fig11_geomean_range_and_growth(run_once):
    result = run_once(fig11_speedup)
    low = result.geomean(1)
    high = result.geomean(15)
    # Paper: 3.5x -> 8.2x. Allow a band around both endpoints.
    assert 2.5 < low < 5.5, low
    assert 6.0 < high < 11.0, high
    assert high > 1.5 * low


def test_fig11_speedup_monotone_with_concurrency(run_once):
    result = run_once(fig11_speedup)
    geomeans = [result.geomean(level) for level in result.levels]
    assert all(b >= a * 0.95 for a, b in zip(geomeans, geomeans[1:]))


def test_fig11_every_benchmark_gains(run_once):
    result = run_once(fig11_speedup)
    for name, series in result.per_benchmark.items():
        for level, value in series.items():
            assert value > 1.2, (name, level, value)


def test_fig11_video_lowest_dbjoin_highest(run_once):
    result = run_once(fig11_speedup)
    at_15 = {name: series[15] for name, series in result.per_benchmark.items()}
    assert at_15["video-surveillance"] == min(at_15.values())
    assert at_15["db-hash-join"] == max(at_15.values())
