"""Fig. 17: one-to-many and many-to-one data movement.

Paper targets: DMX achieves 3.7-5.2x on broadcast and 5.1-10.5x on
all-reduce over 4-32 accelerators; all-reduce gains more ("more DMA
transfers and data restructuring"); speedup scales with the
accelerator count.
"""

from repro.eval import fig17_collectives


def test_fig17_both_collectives_gain(run_once):
    results = run_once(fig17_collectives)
    for operation, series in results.items():
        for n, speedup in series.speedups.items():
            assert speedup > 1.5, (operation, n, speedup)


def test_fig17_speedup_scales_with_accelerators(run_once):
    results = run_once(fig17_collectives)
    for operation, series in results.items():
        assert series.speedups[32] > series.speedups[4], operation


def test_fig17_allreduce_gains_more_than_broadcast(run_once):
    results = run_once(fig17_collectives)
    broadcast = results["broadcast"].speedups
    allreduce = results["allreduce"].speedups
    for n in (8, 16, 32):
        assert allreduce[n] > broadcast[n], n


def test_fig17_magnitudes_near_paper(run_once):
    results = run_once(fig17_collectives)
    # Paper: broadcast 3.7-5.2x, allreduce 5.1-10.5x. Allow a 2x band.
    for n, speedup in results["broadcast"].speedups.items():
        assert 1.8 < speedup < 10.5, ("broadcast", n, speedup)
    for n, speedup in results["allreduce"].speedups.items():
        assert 2.5 < speedup < 21.0, ("allreduce", n, speedup)
