"""Fig. 3: the motivation — data motion erases multi-acceleration gains.

Paper targets: (a) in the All-CPU configuration, domain kernels account
for ~49% of runtime on average (up to 78.5%); under Multi-Axl the data
restructuring dominates (57.7%-73.2%). (b) End-to-end Multi-Axl speedup
over All-CPU is only ~1.4x/1.1x (1/10 apps) even though the per-kernel
accelerator speedup geomean is 6.5x.
"""

import pytest

from repro.eval import fig3a_runtime_breakdown, fig3b_motivation_speedup


def test_fig3a_all_cpu_kernels_dominate(run_once):
    results = run_once(fig3a_runtime_breakdown)
    all_cpu = results["All-CPU"]
    for level in all_cpu.levels:
        kernel_share = all_cpu.fractions[level]["kernel"]
        # Paper: kernels are 49.1% on average, up to 78.5%.
        assert 0.3 < kernel_share < 0.85, (level, kernel_share)


def test_fig3a_multi_axl_restructuring_dominates(run_once):
    results = run_once(fig3a_runtime_breakdown)
    multi_axl = results["Multi-Axl"]
    for level in multi_axl.levels:
        restructure = multi_axl.fractions[level]["restructuring"]
        # Paper: 57.7%-73.2% of end-to-end runtime.
        assert restructure > 0.5, (level, restructure)
        # And restructuring is the single largest component.
        assert restructure == max(multi_axl.fractions[level].values())


def test_fig3b_end_to_end_speedup_far_below_per_kernel(run_once):
    result = run_once(fig3b_motivation_speedup)
    # Per-kernel speedup ~6.5x in the paper; ours is calibrated near it.
    assert 5.0 < result.per_kernel_geomean < 9.0
    for level, speedup in result.end_to_end.items():
        # Paper: 1.4x / 1.1x — an order of magnitude below per-kernel.
        assert speedup < result.per_kernel_geomean / 2.0, (level, speedup)
        assert speedup > 0.8
