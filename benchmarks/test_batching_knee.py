"""Batching knee: coalesced dispatch moves the serving knee right.

The acceptance scenario for ``repro.serve.batching``, run in the regime
batching is *for*: an RPC-style chain with tiny accelerator kernels and
16 KB payloads, two tenants sharing one STANDALONE DRX card. The shared
DRX is the bottleneck server and its 2 µs program load is ~40% of
per-job occupancy, so coalescing N jobs into one submission — one
chained descriptor ring + doorbell, one amortized DRX program load, one
coalesced completion ISR — buys real bottleneck capacity rather than
just shaving wall-clock control time off an idle path. Pinned here:

* at equal offered load, the p99-vs-load knee with batch formation
  armed sits **strictly right** of the per-request knee, and the
  batched tail dominates at every load beyond the per-request knee;
* at light load, where every batch is solo, the latency a request pays
  for batching is exactly the formation window — a solo batch seals by
  timer and then takes the identical single-request execution path;
* a coalesced batch pays ONE completion interrupt and one chained
  descriptor submission per motion leg for all members, and the
  per-member phase books still reconcile with the span-derived phase
  totals to 1e-9.
"""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.profiles import WorkProfile
from repro.serve import BatchingConfig, SweepConfig, run_sweep
from repro.telemetry import phase_totals

KB = 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)

#: Formation terms under test (window well under the SLO).
BATCHING = BatchingConfig(max_batch=8, window_s=50e-6)
SLO_S = 500e-6
#: Offered-load grid straddling both knees: the per-request path knees
#: at ~300 krps (DRX occupancy 1/job ≈ 5 µs incl. 2 µs program load);
#: coalesced dispatch sustains ≥340 krps.
LOADS = tuple(float(x) for x in
              (60e3, 140e3, 220e3, 300e3, 340e3, 420e3, 500e3))


def make_chains():
    """Two identical RPC-style tenant chains (control-path-bound)."""
    chains = []
    for i in range(2):
        profile = WorkProfile(
            name="motion", bytes_in=16 * KB, bytes_out=8 * KB,
            elements=16384, ops_per_element=20.0, gather_fraction=0.3,
        )
        chains.append(AppChain(
            name=f"app{i}",
            stages=[
                KernelStage("k1", SPEC, cpu_time_s=30e-6,
                            accel_time_s=2e-6, output_bytes=16 * KB),
                MotionStage("m", profile, input_bytes=16 * KB,
                            output_bytes=8 * KB, cpu_threads=3),
                KernelStage("k2", SPEC, cpu_time_s=24e-6,
                            accel_time_s=2e-6, output_bytes=4 * KB),
            ],
        ))
    return chains


def build_config(batching):
    return SweepConfig(
        offered_loads_rps=LOADS,
        modes=(Mode.STANDALONE,),
        requests_per_tenant=150,
        arrival_kind="poisson",
        seed=7,
        slo_s=SLO_S,
        max_inflight=8,
        chain_factory=make_chains,
        sample_period_s=None,
        batching=batching,
    )


@pytest.fixture(scope="module")
def sweeps():
    off = run_sweep(build_config(None))
    on = run_sweep(build_config(BATCHING))
    return off, on


# -- the knee moves strictly right ---------------------------------------------


def test_knee_strictly_right_with_batching_on(sweeps):
    off, on = sweeps
    knee_off = off.knee_rps(Mode.STANDALONE)
    knee_on = on.knee_rps(Mode.STANDALONE)
    assert knee_on > knee_off, (
        f"batching should move the knee right at SLO={SLO_S * 1e6:.0f}us: "
        f"off={knee_off} on={knee_on}"
    )
    # The grid straddles the per-request knee: light load within SLO,
    # heaviest load past it. (The batched curve must still be within SLO
    # at the load where the per-request curve first breaks — that's what
    # "strictly right" buys.)
    assert off.for_mode(Mode.STANDALONE)[0].within_slo(SLO_S)
    assert not off.for_mode(Mode.STANDALONE)[-1].within_slo(SLO_S)
    first_broken = next(
        p for p in off.for_mode(Mode.STANDALONE) if not p.within_slo(SLO_S)
    )
    matching = next(
        p for p in on.for_mode(Mode.STANDALONE)
        if p.offered_rps == first_broken.offered_rps
    )
    assert matching.within_slo(SLO_S)


def test_per_request_p99_monotone_in_offered_load(sweeps):
    off, _ = sweeps
    curve = off.p99_curve(Mode.STANDALONE)
    assert len(curve) == len(LOADS)
    for (load_a, p99_a), (load_b, p99_b) in zip(curve, curve[1:]):
        assert load_b > load_a
        assert p99_b >= p99_a


def test_batched_tail_dominates_past_the_knee(sweeps):
    off, on = sweeps
    knee_off = off.knee_rps(Mode.STANDALONE)
    heavy = [
        (o, b)
        for o, b in zip(off.for_mode(Mode.STANDALONE),
                        on.for_mode(Mode.STANDALONE))
        if o.offered_rps > knee_off
    ]
    assert heavy, "grid must extend past the per-request knee"
    for point_off, point_on in heavy:
        assert point_on.p99_s < point_off.p99_s, (
            f"at {point_off.offered_rps} rps batching should win: "
            f"off p99={point_off.p99_s} on p99={point_on.p99_s}"
        )


# -- formation delay is bounded by the window ----------------------------------


def light_load_config(batching):
    """So light every batch is solo: 1 ms gaps vs a 50 us window."""
    return SweepConfig(
        offered_loads_rps=(2e3,),
        modes=(Mode.STANDALONE,),
        requests_per_tenant=8,
        arrival_kind="deterministic",
        seed=7,
        slo_s=SLO_S,
        max_inflight=8,
        chain_factory=make_chains,
        sample_period_s=None,
        batching=batching,
    )


def test_added_latency_is_exactly_the_formation_window(run_once):
    """Solo batches seal by timer, then run the identical single path."""
    off = run_once(run_sweep, light_load_config(None))
    on = run_sweep(light_load_config(BATCHING))
    point_off = off.for_mode(Mode.STANDALONE)[0]
    point_on = on.for_mode(Mode.STANDALONE)[0]
    assert point_on.mean_s - point_off.mean_s == pytest.approx(
        BATCHING.window_s, abs=1e-9
    )
    # The tail pays no more than the window either.
    assert point_on.p99_s - point_off.p99_s == pytest.approx(
        BATCHING.window_s, abs=1e-9
    )


# -- one control path per batch, books still reconcile -------------------------


def run_direct(n_requests, coalesced):
    """Drive the system directly: one batch of N vs N serial submits."""
    system = DMXSystem(make_chains(), SystemConfig(mode=Mode.STANDALONE))
    records = []

    def batch_client():
        records.extend((yield from system.submit_batch(0, n_requests)))

    def serial_client():
        for _ in range(n_requests):
            records.append((yield from system.submit(0)))

    system.sim.spawn(batch_client() if coalesced else serial_client())
    system.sim.run()
    return system, records


def test_batch_members_share_one_control_path():
    n = 4
    batch_sys, batch_records = run_direct(n, coalesced=True)
    serial_sys, serial_records = run_direct(n, coalesced=False)
    assert len(batch_records) == len(serial_records) == n

    # One chained DMA submission per motion leg (in + out) covers all
    # members: 2 ring submissions carrying n descriptors each, where the
    # serial path pays 2*n submissions of one descriptor.
    assert batch_sys.dma.transfers_completed == 2
    assert serial_sys.dma.transfers_completed == 2 * n
    assert batch_sys.dma.descriptors_submitted == 2 * n
    assert serial_sys.dma.descriptors_submitted == 2 * n

    # One ISR per coalesced notification site (kernel completion + DRX
    # completion), with the other n-1 members reaped from the same ISR.
    assert batch_sys.notifier.stats.interrupts == 2
    assert batch_sys.notifier.stats.coalesced == 2 * (n - 1)

    # Members pay strictly less control time than serial requests...
    batch_control = sum(r.phases["control"] for r in batch_records)
    serial_control = sum(r.phases["control"] for r in serial_records)
    assert batch_control < serial_control

    # ...and the per-member books still reconcile with the span-derived
    # phase totals to 1e-9 (members split each pooled phase evenly).
    for system, records in ((batch_sys, batch_records),
                            (serial_sys, serial_records)):
        want = {}
        for record in records:
            for phase, seconds in record.phases.items():
                want[phase] = want.get(phase, 0.0) + seconds
        got = phase_totals(system.telemetry.spans)
        for phase, seconds in want.items():
            if seconds:
                assert got.get(phase, 0.0) == pytest.approx(
                    seconds, abs=1e-9
                ), phase


def test_sweep_is_byte_identical_given_seed_with_batching_on():
    first = run_sweep(light_load_config(BATCHING))
    second = run_sweep(light_load_config(BATCHING))
    assert first.to_json() == second.to_json()
