"""Host CPU specifications.

Defaults model the paper's testbed host: Intel Xeon Platinum 8260L,
2.4 GHz, 16 cores in use (hyperthreading disabled), AVX-256 vector units,
and a Cascade Lake-like cache hierarchy (the characterization machine,
Xeon Gold 6242R, shares the microarchitecture).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheLevel", "CPUSpec", "XEON_8260L"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy."""

    name: str
    size_bytes: int
    line_bytes: int
    latency_cycles: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError(f"{self.name}: sizes must be positive")
        if self.latency_cycles < 0:
            raise ValueError(f"{self.name}: negative latency")


@dataclass(frozen=True)
class CPUSpec:
    """Static description of the host CPU used by every CPU-side model."""

    name: str
    cores: int
    frequency_hz: float
    vector_width_bits: int  # AVX-256 on the testbed
    vector_ports: int  # SIMD issue ports per core
    l1i: CacheLevel
    l1d: CacheLevel
    l2: CacheLevel
    llc: CacheLevel
    dram_latency_cycles: float
    core_stream_bandwidth: float  # achievable streaming B/s per core
    socket_stream_bandwidth: float  # socket-level memory bandwidth cap, B/s
    mispredict_penalty_cycles: float = 17.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.vector_width_bits not in (128, 256, 512):
            raise ValueError(f"unsupported vector width: {self.vector_width_bits}")
        if self.core_stream_bandwidth <= 0 or self.socket_stream_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    def vector_lanes(self, element_size: int) -> int:
        """SIMD lanes per vector instruction for ``element_size``-byte data."""
        if element_size <= 0:
            raise ValueError("element_size must be positive")
        return max(1, self.vector_width_bits // 8 // element_size)

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz


XEON_8260L = CPUSpec(
    name="Intel Xeon Platinum 8260L",
    cores=16,
    frequency_hz=2.4e9,
    vector_width_bits=256,
    vector_ports=2,
    l1i=CacheLevel("L1I", 32 * 1024, 64, 4),
    l1d=CacheLevel("L1D", 32 * 1024, 64, 4),
    l2=CacheLevel("L2", 1024 * 1024, 64, 14),
    llc=CacheLevel("LLC", 36 * 1024 * 1024, 64, 50),
    dram_latency_cycles=220,
    # Streaming restructuring thrashes the cache hierarchy (Sec. IV-A), so
    # the achievable per-core rate is well below peak DRAM bandwidth.
    core_stream_bandwidth=6.0e9,
    socket_stream_bandwidth=85.0e9,
)
