"""Host CPU models: specs, cache behaviour, top-down analysis, DES device."""

from .cache import CacheBehaviour, CacheModel
from .host import BULK_PRIORITY, INTERRUPT_PRIORITY, HostCPU
from .specs import XEON_8260L, CacheLevel, CPUSpec
from .topdown import TopDownBreakdown, TopDownModel

__all__ = [
    "CacheBehaviour",
    "CacheModel",
    "BULK_PRIORITY",
    "INTERRUPT_PRIORITY",
    "HostCPU",
    "XEON_8260L",
    "CacheLevel",
    "CPUSpec",
    "TopDownBreakdown",
    "TopDownModel",
]
