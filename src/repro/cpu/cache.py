"""Analytical cache behaviour model for restructuring workloads.

The paper characterizes restructuring ops as *streaming*: large batches
(6–16 MB) flow through the cache hierarchy once, thrashing the 1 MB L2
(50–215 L1D MPKI, 25–109 L2 MPKI) while the instruction working set stays
tiny (≈2.3 L1I MPKI). This module reproduces those statistics from first
principles:

* a sequential stream takes one L1D miss per cache line touched;
* a next-line prefetcher hides a fraction of those at L2;
* gathers defeat both spatial locality and the prefetcher;
* a dataset larger than a level's capacity gets no reuse at that level.

The outputs feed the top-down model (stall cycles) and the Fig. 5 MPKI
series.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..profiles import WorkProfile
from .specs import CPUSpec

__all__ = ["CacheBehaviour", "CacheModel"]


@dataclass(frozen=True)
class CacheBehaviour:
    """Predicted cache statistics for one op (per kilo-instruction)."""

    instructions: float
    l1i_mpki: float
    l1d_mpki: float
    l2_mpki: float
    llc_mpki: float
    memory_stall_cycles: float  # total, not per-KI


class CacheModel:
    """Maps a :class:`WorkProfile` to cache statistics on a given CPU.

    Parameters
    ----------
    spec:
        The host CPU description.
    prefetch_coverage:
        Fraction of sequential L1D misses whose latency the L2 next-line
        prefetcher hides (they still count as L1D misses but hit in L2).
    instruction_bytes:
        Estimated instruction-footprint of a restructuring loop nest;
        restructuring kernels are tiny (fit in L1I), per the paper.
    """

    def __init__(
        self,
        spec: CPUSpec,
        prefetch_coverage: float = 0.55,
        instruction_bytes: int = 12 * 1024,
    ):
        if not 0.0 <= prefetch_coverage <= 1.0:
            raise ValueError(f"prefetch_coverage not in [0,1]: {prefetch_coverage}")
        self.spec = spec
        self.prefetch_coverage = prefetch_coverage
        self.instruction_bytes = instruction_bytes

    # -- instruction count ----------------------------------------------------

    def instruction_count(self, profile: WorkProfile) -> float:
        """Dynamic instructions for one invocation.

        Vectorized arithmetic retires ``lanes`` elements per instruction;
        the scalar remainder retires one. Loads/stores and loop overhead
        add roughly one instruction per vector of data moved.
        """
        lanes = self.spec.vector_lanes(profile.element_size)
        vec_ops = profile.total_ops * profile.vectorizable_fraction / lanes
        scalar_ops = profile.total_ops * (1.0 - profile.vectorizable_fraction)
        vector_bytes = self.spec.vector_width_bits // 8
        mem_instrs = profile.total_bytes / vector_bytes
        loop_overhead = 0.08 * (vec_ops + scalar_ops)
        return max(1.0, vec_ops + scalar_ops + mem_instrs + loop_overhead)

    # -- data-side misses -------------------------------------------------------

    def l1d_misses(self, profile: WorkProfile) -> float:
        """L1D misses: one per line streamed, one per gather element."""
        line = self.spec.l1d.line_bytes
        if profile.total_bytes <= self.spec.l1d.size_bytes:
            return 0.0
        streamed = profile.total_bytes * (1.0 - profile.gather_fraction) / line
        gathered = (
            profile.total_bytes
            * profile.gather_fraction
            / max(1, profile.element_size)
        )
        return streamed + gathered

    def l2_misses(self, profile: WorkProfile) -> float:
        """L1D misses that also miss the L2 (dataset >> 1 MB ⇒ no reuse).

        The next-line prefetcher converts covered sequential misses into
        L2 hits, which is the gap between the paper's L1D and L2 MPKI.
        """
        if profile.total_bytes <= self.spec.l2.size_bytes:
            return 0.0
        misses = self.l1d_misses(profile)
        sequential = misses * (1.0 - profile.gather_fraction)
        gathered = misses * profile.gather_fraction
        return sequential * (1.0 - self.prefetch_coverage) + gathered

    def llc_misses(self, profile: WorkProfile) -> float:
        """L2 misses that also miss the LLC."""
        if profile.total_bytes <= self.spec.llc.size_bytes:
            return 0.0
        return self.l2_misses(profile)

    def l1i_misses(self, profile: WorkProfile) -> float:
        """Instruction misses: cold footprint + occasional capacity churn."""
        cold = self.instruction_bytes / self.spec.l1i.line_bytes
        # Small steady-state churn scaling with branchiness (uOp-cache
        # switches, per the paper's Video Surveillance observation).
        churn_rate = 2.0 + 20.0 * profile.branch_fraction
        return cold + churn_rate * self.instruction_count(profile) / 1000.0

    # -- aggregate -----------------------------------------------------------

    def behaviour(self, profile: WorkProfile) -> CacheBehaviour:
        """Full predicted cache statistics for one invocation."""
        instrs = self.instruction_count(profile)
        kilo = instrs / 1000.0
        l1d = self.l1d_misses(profile)
        l2 = self.l2_misses(profile)
        llc = self.llc_misses(profile)
        spec = self.spec
        # Stall cycles: misses pay the latency of the level that serves
        # them; overlapping (MLP) is folded into the effective latencies.
        stalls = (
            (l1d - l2) * spec.l2.latency_cycles
            + (l2 - llc) * spec.llc.latency_cycles
            + llc * spec.dram_latency_cycles
        )
        return CacheBehaviour(
            instructions=instrs,
            l1i_mpki=self.l1i_misses(profile) / kilo,
            l1d_mpki=l1d / kilo,
            l2_mpki=l2 / kilo,
            llc_mpki=llc / kilo,
            memory_stall_cycles=stalls,
        )
