"""Top-down microarchitectural analysis model (reproduces Fig. 5).

The paper characterizes data-restructuring ops with Intel VTune's
top-down method [Yasin 2014]: pipeline slots are attributed to
*Retiring*, *Front-End Bound*, *Bad Speculation*, and *Back-End Bound*
(split into Core-Bound and Memory-Bound). We rebuild that attribution
analytically from a :class:`~repro.profiles.WorkProfile`:

* bad speculation — mispredicted branches × flush penalty;
* front-end — L1I refills plus branch re-steers (the paper calls out
  Video Surveillance's branchy restructuring as the front-end outlier);
* memory-bound — cache-miss stalls from :class:`~repro.cpu.cache.CacheModel`,
  derated by a memory-level-parallelism overlap factor;
* core-bound — SIMD port contention on the two vector ports;
* retiring — the useful slots; the remainder.

Published ranges this model must land in: Back-End Bound 53–77.6% of
cycles, Bad Speculation ≤ 12.5%, Front-End ≤ 14%, L1I MPKI ≈ 2.3,
L1D MPKI 50–215, L2 MPKI 25–109.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..profiles import WorkProfile
from .cache import CacheBehaviour, CacheModel
from .specs import CPUSpec

__all__ = ["TopDownBreakdown", "TopDownModel"]

ISSUE_WIDTH = 4  # pipeline slots per cycle on the modeled core
RESTEER_CYCLES = 2.0  # branch re-steer bubble charged to the front-end


@dataclass(frozen=True)
class TopDownBreakdown:
    """Slot-fraction breakdown for one op; fractions sum to 1."""

    retiring: float
    front_end_bound: float
    bad_speculation: float
    backend_core_bound: float
    backend_memory_bound: float
    cycles: float
    cache: CacheBehaviour

    @property
    def back_end_bound(self) -> float:
        return self.backend_core_bound + self.backend_memory_bound

    def as_dict(self) -> Dict[str, float]:
        return {
            "retiring": self.retiring,
            "front_end_bound": self.front_end_bound,
            "bad_speculation": self.bad_speculation,
            "backend_core_bound": self.backend_core_bound,
            "backend_memory_bound": self.backend_memory_bound,
        }


class TopDownModel:
    """Analytical top-down attribution on a single core.

    Parameters
    ----------
    spec:
        Host CPU description.
    mlp_overlap:
        Fraction of raw cache-miss stall cycles hidden by memory-level
        parallelism and out-of-order execution.
    core_pressure:
        Core-bound stall cycles per vector-issue cycle (functional-unit
        unavailability plus dependency chains). Calibrated >1: the
        paper's measured retiring fractions (10–25%) imply restructuring
        achieves a small fraction of peak SIMD throughput.
    """

    def __init__(
        self,
        spec: CPUSpec,
        cache_model: CacheModel = None,
        mlp_overlap: float = 0.75,
        core_pressure: float = 1.5,
    ):
        if not 0.0 <= mlp_overlap < 1.0:
            raise ValueError(f"mlp_overlap not in [0,1): {mlp_overlap}")
        if core_pressure < 0.0:
            raise ValueError(f"negative core_pressure: {core_pressure}")
        self.spec = spec
        self.cache_model = cache_model or CacheModel(spec)
        self.mlp_overlap = mlp_overlap
        self.core_pressure = core_pressure

    def analyze(self, profile: WorkProfile) -> TopDownBreakdown:
        """Attribute one invocation's pipeline slots."""
        cache = self.cache_model.behaviour(profile)
        instrs = cache.instructions
        ideal_cycles = instrs / ISSUE_WIDTH

        branches = instrs * profile.branch_fraction
        mispredicts = branches * profile.mispredict_rate
        bad_spec_cycles = mispredicts * self.spec.mispredict_penalty_cycles

        l1i_misses = self.cache_model.l1i_misses(profile)
        frontend_cycles = (
            l1i_misses * self.spec.l2.latency_cycles + mispredicts * RESTEER_CYCLES
            # Branchy code also costs decode bandwidth (uOp-cache switches).
            + branches * 0.1
        )

        lanes = self.spec.vector_lanes(profile.element_size)
        vec_instrs = profile.total_ops * profile.vectorizable_fraction / lanes
        scalar_instrs = profile.total_ops * (1.0 - profile.vectorizable_fraction)
        issue_cycles = vec_instrs / self.spec.vector_ports + scalar_instrs / 2.0
        core_cycles = self.core_pressure * issue_cycles

        memory_cycles = cache.memory_stall_cycles * (1.0 - self.mlp_overlap)

        total_cycles = (
            ideal_cycles
            + bad_spec_cycles
            + frontend_cycles
            + core_cycles
            + memory_cycles
        )
        total_slots = total_cycles * ISSUE_WIDTH
        return TopDownBreakdown(
            retiring=instrs / total_slots,
            front_end_bound=frontend_cycles / total_cycles,
            bad_speculation=bad_spec_cycles / total_cycles,
            backend_core_bound=core_cycles / total_cycles,
            backend_memory_bound=memory_cycles / total_cycles,
            cycles=total_cycles,
            cache=cache,
        )

    def runtime_seconds(self, profile: WorkProfile) -> float:
        """Single-core runtime implied by the cycle count."""
        return self.analyze(profile).cycles * self.spec.cycle_time_s
