"""Host CPU as a DES device.

The host plays three roles in the modeled system:

* **control plane** — fielding interrupts and configuring DMAs (short,
  high-priority core occupancy);
* **data restructuring** (baseline / Integrated-DRX-less configs) — the
  MKL-style parallel restructuring the paper profiles: a job fans out
  over up to ``max_threads`` cores and contends with every other
  concurrent application for the core pool;
* **application kernels** (All-CPU config) — running the domain kernels
  themselves.

Single-core time for a :class:`~repro.profiles.WorkProfile` comes from the
top-down cycle model, so Fig. 5's characterization and the end-to-end
latency numbers are produced by one consistent model.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..profiles import WorkProfile
from ..sim import AllOf, PriorityResource, Simulator
from .specs import CPUSpec, XEON_8260L
from .topdown import TopDownModel

__all__ = ["HostCPU", "INTERRUPT_PRIORITY", "BULK_PRIORITY"]

INTERRUPT_PRIORITY = 0
BULK_PRIORITY = 10


class HostCPU:
    """DES model of the host processor.

    Parameters
    ----------
    sim:
        Owning simulator.
    spec:
        Static CPU description (defaults to the testbed Xeon).
    max_threads:
        Cap on per-job restructuring parallelism. The paper observes MKL
        spawning 130–140 ephemeral threads over 16 cores; per job the
        useful parallelism is bounded by the core count.
    parallel_overhead:
        Per-extra-thread efficiency loss (synchronization, bandwidth
        sharing): ``chunk_time = serial/p * (1 + overhead*(p-1))``.
    spawn_overhead_s:
        Fixed cost of fanning a restructuring job out to worker threads.
        The paper observes MKL spawning 130–140 *ephemeral* threads per
        restructuring run — that churn is a real, fixed tax per job.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: CPUSpec = XEON_8260L,
        max_threads: Optional[int] = None,
        parallel_overhead: float = 0.05,
        spawn_overhead_s: float = 5e-5,
    ):
        if parallel_overhead < 0:
            raise ValueError("negative parallel_overhead")
        if spawn_overhead_s < 0:
            raise ValueError("negative spawn_overhead_s")
        self.sim = sim
        self.spec = spec
        self.cores = PriorityResource(sim, capacity=spec.cores, name="cpu-cores")
        self.topdown = TopDownModel(spec)
        self.max_threads = max_threads or spec.cores
        self.parallel_overhead = parallel_overhead
        self.spawn_overhead_s = spawn_overhead_s
        self.restructure_jobs = 0
        self.busy_seconds = 0.0

    # -- cost model ------------------------------------------------------------

    def serial_time(self, profile: WorkProfile) -> float:
        """Single-core execution time for ``profile``.

        The top-down cycle model prices the pipeline behaviour; a
        sustained-bandwidth floor prices the streaming traffic (a core
        cannot stream faster than its achievable memory bandwidth, and
        gathers derate that bandwidth sharply).
        """
        cycle_time = self.topdown.runtime_seconds(profile)
        effective_bw = self.spec.core_stream_bandwidth * (
            1.0 - 0.8 * profile.gather_fraction
        )
        bandwidth_floor = profile.total_bytes / effective_bw
        return max(cycle_time, bandwidth_floor)

    def parallel_time(self, profile: WorkProfile, threads: int) -> float:
        """Contention-free job time using ``threads`` cores.

        Includes the per-job thread-spawn tax and a socket-bandwidth floor
        (all threads share the memory controllers).
        """
        threads = max(1, min(threads, self.max_threads))
        serial = self.serial_time(profile)
        scaled = serial / threads * (1.0 + self.parallel_overhead * (threads - 1))
        socket_floor = profile.total_bytes / self.spec.socket_stream_bandwidth
        spawn = self.spawn_overhead_s if threads > 1 else 0.0
        return max(scaled, socket_floor) + spawn

    # -- DES processes -----------------------------------------------------------

    def _chunk(self, duration: float, priority: int) -> Generator:
        request = self.cores.request(priority=priority)
        yield request
        try:
            yield self.sim.timeout(duration)
            self.busy_seconds += duration
        finally:
            self.cores.release(request)

    def restructure(
        self, profile: WorkProfile, threads: Optional[int] = None
    ) -> Generator:
        """Process: run one restructuring job on the core pool.

        The job is split into ``threads`` chunks that each occupy one core;
        under load the chunks queue behind other jobs' chunks, which is how
        cross-application contention for restructuring capacity emerges.
        Returns elapsed wall time.
        """
        threads = max(1, min(threads or self.max_threads, self.max_threads))
        start = self.sim.now
        chunk_time = self.parallel_time(profile, threads) if threads > 1 else (
            self.serial_time(profile)
        )
        if threads > 1:
            procs = [
                self.sim.spawn(self._chunk(chunk_time, BULK_PRIORITY))
                for _ in range(threads)
            ]
            yield AllOf(self.sim, procs)
        else:
            yield from self._chunk(chunk_time, BULK_PRIORITY)
        self.restructure_jobs += 1
        return self.sim.now - start

    def run_kernel(self, duration: float, threads: int = 1) -> Generator:
        """Process: occupy ``threads`` cores for ``duration`` (All-CPU mode)."""
        if duration < 0:
            raise ValueError(f"negative kernel duration: {duration}")
        start = self.sim.now
        procs = [
            self.sim.spawn(self._chunk(duration, BULK_PRIORITY))
            for _ in range(max(1, threads))
        ]
        yield AllOf(self.sim, procs)
        return self.sim.now - start

    def service_interrupt(self, duration: float = 2e-6) -> Generator:
        """Process: high-priority interrupt service routine on one core."""
        yield from self._chunk(duration, INTERRUPT_PRIORITY)
        return duration

    def utilization(self) -> float:
        """Average busy fraction of the core pool so far."""
        if self.sim.now <= 0:
            return 0.0
        return self.cores.busy_time() / (self.sim.now * self.spec.cores)
