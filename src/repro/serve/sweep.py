"""SLO-percentile load sweeps: latency-vs-offered-load knee curves.

:func:`run_sweep` runs a grid of offered loads for each system
:class:`~repro.core.placement.Mode`, driving a fresh
:class:`~repro.core.system.DMXSystem` through a
:class:`~repro.serve.frontend.ServingFrontend` at every point, and
collects one :class:`SweepPoint` (p50/p95/p99, goodput, shed/violation
counts) per (mode, load). The resulting :class:`SweepResult` answers the
serving question the batch drivers cannot: *how much offered load does
each placement sustain before its tail latency crosses the SLO?* — the
knee the paper's CPU-restructuring baseline hits well before DMX.

Sweeps are deterministic end to end: chains are rebuilt identically per
point, every frontend reuses the same seed, and the DES replays exactly,
so two sweeps with equal configs serialize to byte-identical JSON
(:meth:`SweepResult.to_json`). A :class:`~repro.faults.FaultPlan` may be
armed to sweep a system with the recovery plane active.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..core.chain import AppChain
from ..core.placement import Mode, SystemConfig
from ..core.system import DMXSystem
from ..faults import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.planner import PlannerConfig
    from ..telemetry.alerts import ObservationConfig
    from ..telemetry.sampling import SamplingConfig
from .arrivals import make_arrivals
from .batching import BatchingConfig
from .frontend import (
    Discipline,
    FrontendConfig,
    ServingFrontend,
    ShedPolicy,
    TenantSpec,
)
from .slo import ServeResult

__all__ = ["SweepConfig", "SweepPoint", "SweepResult", "run_sweep",
           "run_sweep_point", "calibrate_peak_rps", "unloaded_latency"]


@dataclass(frozen=True)
class SweepConfig:
    """One load-sweep experiment.

    ``offered_loads_rps`` is the *aggregate* offered load per point,
    split evenly across ``n_tenants`` tenant chains. Chains come from
    the named benchmark unless ``chain_factory`` is given (it must
    return identically-built chains on every call — determinism rides
    on it). ``faults`` arms the recovery plane for every point.

    ``artifact_dir`` writes each grid point's telemetry out as a
    JSON-lines run artifact plus a Chrome-trace/Perfetto export
    (``<mode>-pt<index>.jsonl`` / ``.trace.json``) — deterministic
    filenames, byte-identical contents across equal-seed sweeps.

    ``batching`` arms batch formation at every grid point (None keeps
    the exact per-request dispatch path) — the on/off comparison the
    batching knee benchmark sweeps.
    """

    offered_loads_rps: Tuple[float, ...]
    benchmark: str = "sound-detection"
    n_tenants: int = 2
    modes: Tuple[Mode, ...] = (Mode.MULTI_AXL, Mode.BUMP_IN_WIRE)
    requests_per_tenant: int = 32
    arrival_kind: str = "poisson"
    seed: int = 0
    slo_s: float = 50e-3
    max_inflight: int = 8
    queue_capacity: int = 256
    shed: ShedPolicy = ShedPolicy.QUEUE
    discipline: Discipline = Discipline.FCFS
    sample_period_s: Optional[float] = 1e-3
    faults: Optional[FaultPlan] = None
    chain_factory: Optional[Callable[[], List[AppChain]]] = None
    artifact_dir: Optional[str] = None
    batching: Optional[BatchingConfig] = None
    #: Arms the cost-based per-leg backend planner at every grid point
    #: (None keeps the classic DRX-with-CPU-fallback routing).
    backends: Optional["PlannerConfig"] = None
    #: Arms the SLO observation plane at every grid point: rollup/alert
    #: sections land in each point's artifact and ``ServeResult``. Post
    #: hoc — sweep points and artifact span/metric bytes are unchanged.
    observation: Optional["ObservationConfig"] = None
    #: Trace sampling for written artifacts (None writes every trace).
    sampling: Optional["SamplingConfig"] = None
    #: Base system config for every grid point (the swept mode is
    #: substituted in). Lets a sweep inject hardware deltas — e.g. a
    #: derated DRX — for differential-diagnosis experiments.
    system: Optional[SystemConfig] = None

    def __post_init__(self) -> None:
        if not self.offered_loads_rps:
            raise ValueError("need at least one offered load")
        if any(load <= 0 for load in self.offered_loads_rps):
            raise ValueError("offered loads must be positive")
        if list(self.offered_loads_rps) != sorted(self.offered_loads_rps):
            raise ValueError("offered loads must be ascending")
        if self.n_tenants <= 0:
            raise ValueError("n_tenants must be positive")
        if self.requests_per_tenant <= 0:
            raise ValueError("requests_per_tenant must be positive")
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if not self.modes:
            raise ValueError("need at least one mode")

    def build_chains(self) -> List[AppChain]:
        if self.chain_factory is not None:
            return self.chain_factory()
        from ..workloads import build_benchmark_chains

        return build_benchmark_chains(self.benchmark, self.n_tenants)


@dataclass(frozen=True)
class SweepPoint:
    """One (mode, offered load) grid point's serving outcome."""

    mode: str
    offered_rps: float
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    mean_queue_wait_s: float
    goodput_rps: float
    completed: int
    shed: int
    violations: int
    failed: int
    max_queue_depth: int
    elapsed_s: float

    def within_slo(self, slo_s: float) -> bool:
        """True when the point's p99 meets the latency target."""
        return self.p99_s <= slo_s


@dataclass
class SweepResult:
    """All grid points of one sweep, with knee-curve queries."""

    slo_s: float
    seed: int
    points: List[SweepPoint] = field(default_factory=list)

    def modes(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            if point.mode not in seen:
                seen.append(point.mode)
        return seen

    def for_mode(self, mode: "Mode | str") -> List[SweepPoint]:
        """The mode's points, in ascending offered-load order."""
        key = mode.value if isinstance(mode, Mode) else mode
        return sorted(
            (p for p in self.points if p.mode == key),
            key=lambda p: p.offered_rps,
        )

    def p99_curve(self, mode: "Mode | str") -> List[Tuple[float, float]]:
        """(offered load, p99 latency) pairs — the knee curve."""
        return [(p.offered_rps, p.p99_s) for p in self.for_mode(mode)]

    def knee_rps(self, mode: "Mode | str") -> float:
        """Highest offered load sustained before the first SLO violation.

        Scans the mode's curve in ascending load order and returns the
        last load whose p99 met the SLO *before* the first violating
        point; 0.0 when even the lightest load violates.
        """
        sustained = 0.0
        for point in self.for_mode(mode):
            if not point.within_slo(self.slo_s):
                break
            sustained = point.offered_rps
        return sustained

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo_s": self.slo_s,
            "seed": self.seed,
            "points": [
                {
                    "mode": p.mode,
                    "offered_rps": p.offered_rps,
                    "p50_s": p.p50_s,
                    "p95_s": p.p95_s,
                    "p99_s": p.p99_s,
                    "mean_s": p.mean_s,
                    "mean_queue_wait_s": p.mean_queue_wait_s,
                    "goodput_rps": p.goodput_rps,
                    "completed": p.completed,
                    "shed": p.shed,
                    "violations": p.violations,
                    "failed": p.failed,
                    "max_queue_depth": p.max_queue_depth,
                    "elapsed_s": p.elapsed_s,
                }
                for p in self.points
            ],
        }

    def to_json(self) -> str:
        """Canonical serialization — byte-identical across equal runs."""
        return json.dumps(self.to_dict(), sort_keys=True)


def _point(mode: Mode, offered_rps: float, result: ServeResult) -> SweepPoint:
    has_latency = result.latency.count > 0
    queue_wait = [
        t.queue_wait for t in result.tenants.values() if t.queue_wait.count
    ]
    total_wait = sum(t.total for t in queue_wait)
    total_count = sum(t.count for t in queue_wait)
    violations = sum(result.per_tenant_slo_violations().values())
    return SweepPoint(
        mode=mode.value,
        offered_rps=offered_rps,
        p50_s=result.percentile(0.50) if has_latency else 0.0,
        p95_s=result.percentile(0.95) if has_latency else 0.0,
        p99_s=result.percentile(0.99) if has_latency else 0.0,
        mean_s=result.latency.mean() if has_latency else 0.0,
        mean_queue_wait_s=total_wait / total_count if total_count else 0.0,
        goodput_rps=result.goodput_rps(),
        completed=result.completed,
        shed=result.shed,
        violations=violations,
        failed=result.failed,
        max_queue_depth=result.max_queue_depth(),
        elapsed_s=result.elapsed,
    )


def _write_point_artifacts(
    config: SweepConfig,
    mode: Mode,
    point_index: int,
    load: float,
    result: ServeResult,
) -> None:
    """One grid point's run artifact + Perfetto export on disk."""
    from ..telemetry import plan_sampling, write_artifact, write_chrome_trace

    os.makedirs(config.artifact_dir, exist_ok=True)
    stem = os.path.join(
        config.artifact_dir, f"{mode.value}-pt{point_index}"
    )
    plan = None
    if config.sampling is not None:
        plan = plan_sampling(
            result.telemetry, config.sampling, alerts=result.alerts
        )
    write_artifact(
        f"{stem}.jsonl",
        result.telemetry,
        meta={
            "mode": mode.value,
            "offered_rps": load,
            "seed": config.seed,
            "benchmark": config.benchmark,
            "slo_s": config.slo_s,
        },
        rollups=result.rollups,
        alerts=result.alerts,
        sampling=plan,
    )
    write_chrome_trace(
        f"{stem}.trace.json", result.telemetry,
        rollups=result.rollups, alerts=result.alerts,
    )


def run_sweep_point(
    config: SweepConfig, mode: Mode, point_index: int
) -> SweepPoint:
    """Run one (mode, offered load) grid point of ``config``.

    The unit of work sharded sweep execution distributes
    (:mod:`repro.eval.orchestrator`); :func:`run_sweep` is exactly this
    over the whole grid, so a point computed here is byte-identical to
    the same point inside a full sweep.
    """
    load = config.offered_loads_rps[point_index]
    chains = config.build_chains()
    base = (
        replace(config.system, mode=mode)
        if config.system is not None
        else SystemConfig(mode=mode)
    )
    system = DMXSystem(
        chains, base, faults=config.faults, backends=config.backends,
    )
    per_tenant = load / len(chains)
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=make_arrivals(config.arrival_kind, per_tenant),
            n_requests=config.requests_per_tenant,
            queue_capacity=config.queue_capacity,
        )
        for chain in chains
    ]
    frontend = ServingFrontend(
        system,
        tenants,
        FrontendConfig(
            max_inflight=config.max_inflight,
            shed=config.shed,
            discipline=config.discipline,
            slo_s=config.slo_s,
            sample_period_s=config.sample_period_s,
            batching=config.batching,
            observation=config.observation,
        ),
        seed=config.seed,
    )
    result = frontend.run()
    if config.artifact_dir is not None:
        _write_point_artifacts(config, mode, point_index, load, result)
    return _point(mode, load, result)


def run_sweep(config: SweepConfig) -> SweepResult:
    """Run the full (mode x offered load) grid of one sweep."""
    sweep = SweepResult(slo_s=config.slo_s, seed=config.seed)
    for mode in config.modes:
        for point_index in range(len(config.offered_loads_rps)):
            sweep.points.append(run_sweep_point(config, mode, point_index))
    return sweep


# -- calibration helpers -------------------------------------------------------


def calibrate_peak_rps(config: SweepConfig, mode: Mode) -> float:
    """The mode's drain rate on a fixed backlog (batch-issue throughput).

    An upper bound on the sustainable online load; sweep drivers use it
    to place their offered-load grid around the knee.
    """
    chains = config.build_chains()
    system = DMXSystem(chains, SystemConfig(mode=mode))
    return system.run_throughput(requests_per_app=8).throughput()


def unloaded_latency(config: SweepConfig, mode: Mode) -> float:
    """Mean end-to-end latency with a single closed-loop client per
    tenant — the no-queueing service-latency floor SLOs are set from."""
    chains = config.build_chains()
    system = DMXSystem(chains, SystemConfig(mode=mode))
    return system.run_latency(requests_per_app=2).mean_latency()
