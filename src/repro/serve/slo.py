"""SLO accounting for the serving layer.

Latency here is *client-observed* latency: arrival → completion,
including admission-queue wait — the quantity SLOs are written against,
as opposed to the service-only latency in
:class:`~repro.core.system.RequestRecord`.

Percentiles are tracked two ways at once:

* a bounded-memory **streaming** estimate per tracked quantile via the
  P² algorithm (Jain & Chlamtác, CACM 1985) — O(1) state per quantile,
  what a production frontend would run;
* an optional **exact** computation from retained samples (the default
  at simulation scale), so sweep results are reproducible to the byte
  and assertions about knee curves don't ride on estimator error.

:class:`LatencyTracker` answers ``percentile(q)`` from the exact samples
when retained and falls back to the P² estimate otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sim.tracing import exact_percentile as _exact_percentile
from ..telemetry.metrics import time_weighted_mean

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.system import RequestRecord
    from ..telemetry import AlertEvent, RunRollups, Telemetry

__all__ = [
    "P2Quantile",
    "LatencyTracker",
    "TenantStats",
    "QueueSample",
    "ServeResult",
    "DEFAULT_QUANTILES",
]

DEFAULT_QUANTILES = (0.50, 0.95, 0.99)


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Maintains five markers (min, three interior, max) whose heights are
    nudged toward the ideal quantile positions with parabolic
    interpolation; memory and per-observation cost are O(1). Exact for
    the first five observations.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions: List[float] = []
        self._desired: List[float] = []

    def add(self, x: float) -> None:
        self.count += 1
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]
                q = self.q
                self._desired = [0.0, 2 * q, 4 * q, 2 + 2 * q, 4.0]
            return
        h, n = self._heights, self._positions
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = max(i for i in range(4) if h[i] <= x)
        for i in range(cell + 1, 5):
            n[i] += 1
        q = self.q
        for i, dn in enumerate((0.0, q / 2, q, (1 + q) / 2, 1.0)):
            self._desired[i] += dn
        for i in (1, 2, 3):
            drift = self._desired[i] - n[i]
            if (drift >= 1 and n[i + 1] - n[i] > 1) or (
                drift <= -1 and n[i - 1] - n[i] < -1
            ):
                step = 1 if drift >= 0 else -1
                candidate = self._parabolic(i, step)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, step)
                h[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (exact below five observations)."""
        if self.count == 0:
            raise ValueError("quantile of an empty stream")
        if self._heights is None:
            return _exact_percentile(sorted(self._initial), self.q)
        return self._heights[2]


class LatencyTracker:
    """Latency stream: streaming P² percentiles + optional exact samples.

    ``retain=True`` (the default) keeps every sample so
    :meth:`percentile` is exact; with ``retain=False`` memory stays O(1)
    and tracked quantiles come from the P² estimators (untracked
    quantiles then raise).
    """

    def __init__(
        self,
        quantiles: Tuple[float, ...] = DEFAULT_QUANTILES,
        retain: bool = True,
    ):
        self._estimators: Dict[float, P2Quantile] = {
            q: P2Quantile(q) for q in quantiles
        }
        self._samples: Optional[List[float]] = [] if retain else None
        # Sorted view of ``_samples``, invalidated on add: ``summary()``
        # asks for one percentile per tracked quantile, and re-sorting
        # the full sample list per quantile dominated large sweeps.
        self._sorted: Optional[List[float]] = None
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    @property
    def quantiles(self) -> Tuple[float, ...]:
        return tuple(self._estimators)

    def add(self, x: float) -> None:
        if x < 0:
            raise ValueError(f"negative latency sample: {x}")
        self.count += 1
        self.total += x
        if x > self.max:
            self.max = x
        for estimator in self._estimators.values():
            estimator.add(x)
        if self._samples is not None:
            self._samples.append(x)
            self._sorted = None

    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty tracker")
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """Exact when samples are retained, else the P² estimate.

        Exact answers come from a cached sorted view built on the first
        percentile query after an :meth:`add` — one sort amortized over
        every quantile a summary asks for.
        """
        if self.count == 0:
            raise ValueError("percentile of an empty tracker")
        if self._samples is not None:
            ordered = self._sorted
            if ordered is None:
                ordered = self._sorted = sorted(self._samples)
            return _exact_percentile(ordered, q)
        if q not in self._estimators:
            raise KeyError(
                f"quantile {q} not tracked (streaming mode tracks "
                f"{self.quantiles})"
            )
        return self._estimators[q].value

    def count_over(self, threshold: float) -> int:
        """How many retained samples exceed ``threshold`` (requires
        ``retain=True`` — streaming estimators can't answer this)."""
        if self._samples is None:
            raise ValueError(
                "count_over requires retained samples (retain=True)"
            )
        return sum(1 for x in self._samples if x > threshold)

    def streaming_estimate(self, q: float) -> float:
        """The P² estimate regardless of retention (for comparison)."""
        if q not in self._estimators:
            raise KeyError(f"quantile {q} not tracked")
        return self._estimators[q].value

    def summary(self) -> Dict[str, float]:
        """Mean + tracked percentiles, for reports."""
        out = {"count": float(self.count), "mean": self.mean(),
               "max": self.max}
        for q in self.quantiles:
            out[f"p{round(q * 100)}"] = self.percentile(q)
        return out


@dataclass
class TenantStats:
    """Per-tenant serving counters and latency streams.

    ``violations`` counts completed, non-failed requests whose
    client-observed latency exceeded the frontend's SLO; ``failed``
    counts requests whose recovery plane gave up (they completed with an
    error and are excluded from goodput). ``rate_limited`` and
    ``brownout_shed`` break ``shed`` down by cause: the tenant's own
    token-bucket policer vs. the brownout ladder shedding low-priority
    arrivals (queue-capacity sheds are the remainder). ``batches``
    counts coalesced submissions executed on the tenant's behalf when
    batch formation is armed (0 with batching off).
    """

    name: str
    arrived: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    violations: int = 0
    rate_limited: int = 0
    brownout_shed: int = 0
    batches: int = 0
    latency: LatencyTracker = field(default_factory=LatencyTracker)
    queue_wait: LatencyTracker = field(default_factory=LatencyTracker)

    def goodput_rps(self, elapsed_s: float) -> float:
        """Non-failed completions within SLO, per second of sim time."""
        if elapsed_s <= 0:
            raise ValueError("elapsed_s must be positive")
        return (self.completed - self.failed - self.violations) / elapsed_s


@dataclass(frozen=True)
class QueueSample:
    """One sim-clock sample of frontend occupancy."""

    time: float
    queued: Dict[str, int]
    inflight: int

    @property
    def total_queued(self) -> int:
        return sum(self.queued.values())


@dataclass
class ServeResult:
    """Everything one serving run produced.

    ``elapsed`` is the sim time at which the last admitted request
    completed (the queue-depth sampler may run marginally past it).
    """

    tenants: Dict[str, TenantStats]
    latency: LatencyTracker
    timeline: List[QueueSample]
    elapsed: float
    slo_s: Optional[float] = None
    #: Per-request service records from the fronted system (arrival order).
    records: List["RequestRecord"] = field(default_factory=list)
    #: The run's telemetry (spans + metrics); write it out with
    #: :func:`repro.telemetry.write_artifact`.
    telemetry: Optional["Telemetry"] = None
    #: Observation-plane output (windowed rollups + burn-rate alert
    #: timeline), computed post hoc when the frontend's ``observation``
    #: config is armed. Never feeds back into the run or ``to_dict()``.
    rollups: Optional["RunRollups"] = None
    alerts: List["AlertEvent"] = field(default_factory=list)

    # -- aggregate counters --------------------------------------------------

    def _total(self, attr: str) -> int:
        return sum(getattr(t, attr) for t in self.tenants.values())

    @property
    def arrived(self) -> int:
        return self._total("arrived")

    @property
    def admitted(self) -> int:
        return self._total("admitted")

    @property
    def shed(self) -> int:
        return self._total("shed")

    @property
    def completed(self) -> int:
        return self._total("completed")

    @property
    def failed(self) -> int:
        return self._total("failed")

    @property
    def violations(self) -> int:
        return self._total("violations")

    def percentile(self, q: float) -> float:
        return self.latency.percentile(q)

    def per_tenant_slo_violations(
        self, slo_s: Optional[float] = None
    ) -> Dict[str, int]:
        """Per-tenant SLO-violation counts.

        With ``slo_s=None`` this reads the counters the frontend
        accumulated against its configured SLO (failed requests
        excluded, matching goodput). Passing an explicit ``slo_s``
        recounts from each tenant's retained latency samples — for
        what-if SLOs — and then counts *every* completed request,
        including failed ones.
        """
        if slo_s is None:
            return {name: t.violations for name, t in self.tenants.items()}
        if slo_s <= 0:
            raise ValueError("slo_s must be positive")
        return {
            name: t.latency.count_over(slo_s)
            for name, t in self.tenants.items()
        }

    def goodput_rps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return (self.completed - self.failed - self.violations) / self.elapsed

    def max_queue_depth(self) -> int:
        if not self.timeline:
            return 0
        return max(s.total_queued for s in self.timeline)

    def mean_queue_depth(self) -> float:
        """Time-weighted mean total queue depth over the run.

        Each sample holds until the next one (last-value-carried-forward,
        with the final sample extended to ``elapsed``), so irregular
        sampling periods — e.g. a sampler perturbed by bursty arrivals —
        don't bias the mean toward densely-sampled intervals. The old
        unweighted average remains as :meth:`mean_sampled_queue_depth`.
        """
        if not self.timeline:
            return 0.0
        return time_weighted_mean(
            [(s.time, float(s.total_queued)) for s in self.timeline],
            end=self.elapsed,
        )

    def mean_sampled_queue_depth(self) -> float:
        """Unweighted mean over samples (biased under uneven spacing)."""
        if not self.timeline:
            return 0.0
        return sum(s.total_queued for s in self.timeline) / len(self.timeline)

    def to_dict(self) -> Dict[str, object]:
        """Deterministic summary (stable key order, raw floats)."""
        return {
            "elapsed_s": self.elapsed,
            "slo_s": self.slo_s,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "violations": self.violations,
            "goodput_rps": self.goodput_rps(),
            "latency": self.latency.summary() if self.latency.count else {},
            "max_queue_depth": self.max_queue_depth(),
            "tenants": {
                name: {
                    "arrived": t.arrived,
                    "admitted": t.admitted,
                    "shed": t.shed,
                    "rate_limited": t.rate_limited,
                    "brownout_shed": t.brownout_shed,
                    "completed": t.completed,
                    "failed": t.failed,
                    "violations": t.violations,
                    "batches": t.batches,
                    "latency": t.latency.summary() if t.latency.count else {},
                    "queue_wait": (
                        t.queue_wait.summary() if t.queue_wait.count else {}
                    ),
                }
                for name, t in self.tenants.items()
            },
        }
