"""The serving frontend: admission control and dispatch.

One :class:`ServingFrontend` fronts one :class:`~repro.core.system.DMXSystem`:
per-tenant arrival processes generate open-loop traffic, a bounded
admission queue per tenant absorbs (or sheds) bursts, and a dispatcher
with a bounded in-flight window issues admitted requests into the
shared system via :meth:`DMXSystem.submit`, collecting each request's
:class:`~repro.core.system.RequestRecord` and charging the full
arrival→completion latency against the SLO.

The pieces map onto the standard serving pipeline::

    arrivals ──> admission (token bucket | bounded queue | shed)
        ──> dispatch (FCFS | WRR | EDF | priority)
        ──> DMXSystem.submit ──> SLO accounting (p50/p95/p99, goodput)

Two resilience hooks from :mod:`repro.resilience` plug in here:
per-tenant **token buckets** police a tenant's sustained admission rate
at the door (protecting co-tenants from a bursty neighbour), and the
**brownout ladder** — driven by windowed tail latency vs. the SLO —
sheds low-priority arrivals, coalesces dispatch by tenant, and finally
forces motion stages onto the CPU (``submit(..., force_cpu=True)``).

Orthogonally to the dispatch discipline, a
:class:`~repro.serve.batching.BatchingConfig` arms **batch formation**:
dispatched same-tenant requests accumulate in a
:class:`~repro.serve.batching.BatchFormer` and execute as one coalesced
submission (:meth:`DMXSystem.submit_batch`) — one descriptor chain +
doorbell + completion ISR for all members. The brownout ``COALESCE``
tier escalates the formation window, turning the tier from a dispatch
heuristic into real control-path coalescing.

Everything runs on the system's own simulator, and all stochasticity
comes from one ``random.Random(seed)``, so a serving run — including one
with a :class:`~repro.faults.FaultPlan` armed — replays exactly.
"""

from __future__ import annotations

import enum
import math
import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Generator, List, Optional, \
    Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.alerts import ObservationConfig

from ..control import ClosedLoopController, ControllerConfig
from ..core.system import DMXSystem, RequestRecord
from ..resilience.admission import TokenBucket, TokenBucketConfig
from ..resilience.brownout import BrownoutConfig, BrownoutController, \
    BrownoutTier
from ..sim import Event
from .arrivals import ArrivalProcess
from .batching import BatchFormer, BatchingConfig, FormingBatch
from .slo import LatencyTracker, QueueSample, ServeResult, TenantStats

__all__ = [
    "ShedPolicy",
    "Discipline",
    "TenantSpec",
    "FrontendConfig",
    "ServingFrontend",
]


class ShedPolicy(enum.Enum):
    """What admission does when a tenant's queue is full.

    ``REJECT`` sheds the new arrival (bounded queue, load shedding);
    ``QUEUE`` admits unconditionally — ``TenantSpec.queue_capacity`` is
    *deliberately ignored* under this policy: the queue is unbounded and
    latency, not errors, absorbs overload (the right setting for knee
    curves, where a capacity bound would clip the very tail the sweep
    measures). This is by design, not an oversight; a test pins it.
    """

    REJECT = "reject"
    QUEUE = "queue"


class Discipline(enum.Enum):
    """Dispatch order across tenant queues.

    ``FCFS`` takes the globally earliest arrival; ``WRR`` cycles tenants
    by weight; ``EDF`` takes the earliest absolute deadline (arrival +
    the tenant's ``deadline_s``, defaulting to the frontend SLO — exact,
    since per-tenant queues are FIFO and the offset is constant);
    ``PRIORITY`` is strict priority, FCFS among equals.
    """

    FCFS = "fcfs"
    WRR = "wrr"
    EDF = "edf"
    PRIORITY = "priority"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: its chain, traffic model, and admission limits.

    ``name`` must match an application chain in the fronted system;
    ``weight`` is the tenant's weighted-round-robin share (ignored under
    FCFS); ``queue_capacity`` bounds the admission queue under
    ``ShedPolicy.REJECT``. ``priority`` orders tenants under
    ``Discipline.PRIORITY`` (higher dispatches first) and marks shedding
    victims for the brownout ladder; ``deadline_s`` is the tenant's
    per-request latency budget under ``Discipline.EDF``; ``rate_limit``
    arms a token-bucket policer at admission.
    """

    name: str
    arrivals: ArrivalProcess
    n_requests: int
    weight: int = 1
    queue_capacity: int = 16
    priority: int = 1
    deadline_s: Optional[float] = None
    rate_limit: Optional[TokenBucketConfig] = None

    def __post_init__(self) -> None:
        if self.n_requests <= 0:
            raise ValueError(f"{self.name}: n_requests must be positive")
        if self.weight < 1:
            raise ValueError(f"{self.name}: weight must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError(f"{self.name}: queue_capacity must be >= 1")
        if self.priority < 0:
            raise ValueError(f"{self.name}: priority must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"{self.name}: deadline_s must be positive")


@dataclass(frozen=True)
class FrontendConfig:
    """Dispatch-side knobs for one serving run.

    ``max_inflight`` bounds requests concurrently inside the fronted
    system (the dispatch window); ``slo_s`` is the client-observed
    latency target violations are counted against (None disables);
    ``sample_period_s`` is the queue-depth sampling period on the sim
    clock (None disables the timeline). ``brownout`` arms the graceful-
    degradation ladder (requires ``slo_s`` — the ladder is driven by
    p99-vs-SLO headroom).

    ``batching`` arms batch formation: dispatched requests accumulate
    per tenant and execute as coalesced submissions (orthogonal to
    ``discipline``, which still decides *which* request is dispatched
    next). ``max_affinity_run`` caps the brownout ``COALESCE`` tier's
    tenant-affinity fast path — at most this many consecutive dispatches
    may bypass the discipline for the last-served tenant (default: the
    tenant's WRR weight), after which dispatch falls through to the
    configured discipline so a backlogged tenant cannot starve its
    neighbours for as long as the tier holds.
    """

    max_inflight: int = 4
    shed: ShedPolicy = ShedPolicy.REJECT
    discipline: Discipline = Discipline.FCFS
    slo_s: Optional[float] = None
    sample_period_s: Optional[float] = 1e-3
    brownout: Optional[BrownoutConfig] = None
    batching: Optional[BatchingConfig] = None
    max_affinity_run: Optional[int] = None
    #: Arms the closed-loop controller (:mod:`repro.control`): live WRR
    #: weight driving, cheapest-sufficient-tier brownout selection, the
    #: standby-card capacity autoscaler, and crossing-minimizing chain
    #: placement — all on the sim clock. Requires ``slo_s`` (the loop
    #: senses p99-vs-SLO headroom); ``drive_tiers`` additionally
    #: requires ``brownout``. ``None`` (the default) changes nothing:
    #: disarmed runs are byte-identical to pre-controller builds.
    controller: Optional["ControllerConfig"] = None
    #: Arms the SLO observation plane (windowed rollups + burn-rate
    #: alerts). Evaluated strictly *after* the simulation drains, from
    #: recorded telemetry only — an armed run's simulation, telemetry,
    #: and summary are byte-identical to an unarmed run's.
    observation: Optional["ObservationConfig"] = None

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if self.sample_period_s is not None and self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if self.brownout is not None and self.slo_s is None:
            raise ValueError("brownout control requires slo_s")
        if self.max_affinity_run is not None and self.max_affinity_run < 1:
            raise ValueError("max_affinity_run must be >= 1")
        if self.controller is not None:
            if self.slo_s is None:
                raise ValueError("the closed-loop controller requires slo_s")
            if self.controller.drive_tiers and self.brownout is None:
                raise ValueError(
                    "controller.drive_tiers requires the brownout ladder"
                )


class _Admitted:
    """One admitted request waiting for (or holding) a dispatch slot."""

    __slots__ = ("spec", "arrival", "seq", "deadline")

    def __init__(
        self, spec: TenantSpec, arrival: float, seq: int,
        deadline: float = math.inf,
    ):
        self.spec = spec
        self.arrival = arrival
        self.seq = seq
        self.deadline = deadline


class ServingFrontend:
    """Drive one :class:`DMXSystem` with online multi-tenant traffic.

    The frontend owns the run: construct it around a *fresh* system
    (whose simulator has not been run), then call :meth:`run` once.
    """

    def __init__(
        self,
        system: DMXSystem,
        tenants: Sequence[TenantSpec],
        config: FrontendConfig = FrontendConfig(),
        seed: int = 0,
    ):
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        if system.sim.now != 0.0:
            raise ValueError(
                "frontend requires a fresh system (simulator already ran)"
            )
        self.system = system
        self.sim = system.sim
        self.telemetry = system.telemetry
        self.config = config
        self.tenants = list(tenants)
        self._app_index = {t.name: system.app_index(t.name) for t in tenants}
        self._rng = random.Random(seed)
        self._queues: Dict[str, Deque[_Admitted]] = {
            t.name: deque() for t in tenants
        }
        self._stats: Dict[str, TenantStats] = {
            t.name: TenantStats(name=t.name) for t in tenants
        }
        self._latency = LatencyTracker()
        self._records: List[RequestRecord] = []
        self._client_latency: Optional[Dict[str, object]] = (
            {
                t.name: self.telemetry.histogram(
                    "client_latency", tenant=t.name
                )
                for t in tenants
            }
            if self.telemetry.enabled
            else None
        )
        self._inflight = 0
        self._open_arrivals = len(self.tenants)
        self._wake: Optional[Event] = None
        self._finished = False
        self._done_at = 0.0
        self._ran = False
        # Live per-tenant WRR weights. Seeded from the specs, but kept
        # in mutable state so a closed-loop controller can retune shares
        # mid-run (:meth:`set_weight`); every credit refresh reads this
        # table, never the frozen spec.
        self._weights: Dict[str, int] = {t.name: t.weight for t in tenants}
        # Weighted-round-robin cursor: current tenant + remaining credit.
        self._wrr_index = 0
        self._wrr_credit = self._weights[self.tenants[0].name]
        # Resilience hooks: per-tenant policers + the brownout ladder.
        self._buckets: Dict[str, TokenBucket] = {
            t.name: TokenBucket(t.rate_limit)
            for t in tenants
            if t.rate_limit is not None
        }
        self._brownout: Optional[BrownoutController] = (
            BrownoutController(config.slo_s, config.brownout)
            if config.brownout is not None
            else None
        )
        # Tenant whose request was dispatched last — the COALESCE tier
        # prefers it, so completion notifications batch under the
        # driver's NAPI-style coalescing window. The affinity run is
        # capped (``_affinity_cap``) so the fast path cannot starve
        # other tenants while the tier holds.
        self._last_tenant: Optional[str] = None
        self._affinity_run = 0
        self._tenant_spec: Dict[str, TenantSpec] = {
            t.name: t for t in self.tenants
        }
        # Batch formation (None = per-request dispatch, the exact
        # pre-batching code path).
        self._former: Optional[BatchFormer] = (
            BatchFormer(self.sim, self._launch_batch)
            if config.batching is not None
            else None
        )
        self._batch_size_hist = None
        self._formation_delay_gauge = None
        if self._former is not None and self.telemetry.enabled:
            self._batch_size_hist = self.telemetry.histogram("batch_size")
            self._formation_delay_gauge = self.telemetry.metrics.gauge(
                "batch_formation_delay_s"
            )
        # Size-aware formation: per-tenant admission timestamps feeding
        # the arrival-rate estimate (None = fixed-window formation, the
        # exact pre-size-aware code path).
        self._admit_times: Optional[Dict[str, Deque[float]]] = (
            {
                t.name: deque(maxlen=config.batching.rate_window)
                for t in self.tenants
            }
            if self._former is not None and config.batching.size_aware
            else None
        )
        # Per-tenant in-flight counts: the controller's request-boundary
        # gate for live migration (a tenant moves cards only when none
        # of its requests are inside the system).
        self._tenant_inflight: Dict[str, int] = {
            t.name: 0 for t in tenants
        }
        self._controller: Optional[ClosedLoopController] = (
            ClosedLoopController(self, config.controller)
            if config.controller is not None
            else None
        )

    # -- live control surface ------------------------------------------------

    def weight(self, tenant: str) -> int:
        """The tenant's current (live) WRR weight."""
        return self._weights[tenant]

    def set_weight(self, tenant: str, weight: int) -> None:
        """Retune one tenant's WRR share mid-run.

        Takes effect at the next cursor advance onto the tenant (credit
        is always refreshed from the live table); the in-progress credit
        run is never retroactively grown or clawed back, so fairness
        accounting stays consistent across the change.
        """
        if tenant not in self._weights:
            raise KeyError(f"unknown tenant {tenant!r}")
        if weight < 1:
            raise ValueError(f"{tenant}: weight must be >= 1, got {weight}")
        self._weights[tenant] = weight

    # -- wakeup plumbing -----------------------------------------------------

    def _kick(self) -> None:
        """Wake the dispatcher if it is parked."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        self._wake = None

    def _park(self) -> Event:
        self._wake = self.sim.event()
        return self._wake

    # -- admission -----------------------------------------------------------

    def _deadline_offset(self, spec: TenantSpec) -> float:
        """The tenant's per-request deadline budget, resolved *now*.

        Resolved per arrival (not hoisted out of the arrival loop): the
        EDF deadline must track the SLO in effect when the request
        arrives, so a config- or controller-driven SLO change mid-run
        reaches subsequent arrivals instead of being frozen at
        arrival-loop start.
        """
        if spec.deadline_s is not None:
            return spec.deadline_s
        if self.config.slo_s is not None:
            return self.config.slo_s
        return math.inf

    def _arrival_loop(self, spec: TenantSpec) -> Generator:
        stats = self._stats[spec.name]
        queue = self._queues[spec.name]
        gaps = spec.arrivals.interarrivals(self._rng)
        bucket = self._buckets.get(spec.name)
        record_metrics = self.telemetry.enabled
        rate_limited_counter = None
        if record_metrics:
            arrivals_counter = self.telemetry.counter(
                "arrivals", tenant=spec.name
            )
            shed_counter = self.telemetry.counter("shed", tenant=spec.name)
            admitted_counter = self.telemetry.counter(
                "admitted", tenant=spec.name
            )
            if bucket is not None:
                rate_limited_counter = self.telemetry.counter(
                    "rate_limited", tenant=spec.name
                )
        for seq in range(spec.n_requests):
            yield self.sim.timeout(next(gaps))
            stats.arrived += 1
            if record_metrics:
                arrivals_counter.inc()
            # Policer first: a bursty tenant is throttled at the door,
            # before its burst can occupy queue slots.
            if bucket is not None and not bucket.try_take(self.sim.now):
                stats.shed += 1
                stats.rate_limited += 1
                if record_metrics:
                    shed_counter.inc()
                    rate_limited_counter.inc()
                    self.telemetry.instant(
                        "rate_limited", "admission", actor=spec.name, seq=seq
                    )
                continue
            if (
                self._brownout is not None
                and self._brownout.tier >= BrownoutTier.SHED_LOW
                and spec.priority <= self.config.brownout.shed_max_priority
            ):
                stats.shed += 1
                stats.brownout_shed += 1
                if record_metrics:
                    shed_counter.inc()
                    self.telemetry.instant(
                        "brownout_shed", "admission", actor=spec.name,
                        seq=seq, tier=int(self._brownout.tier),
                    )
                continue
            if (
                self.config.shed is ShedPolicy.REJECT
                and len(queue) >= spec.queue_capacity
            ):
                stats.shed += 1
                if record_metrics:
                    shed_counter.inc()
                    self.telemetry.instant(
                        "shed", "admission", actor=spec.name, seq=seq
                    )
                continue
            stats.admitted += 1
            if record_metrics:
                admitted_counter.inc()
            if self._admit_times is not None:
                self._admit_times[spec.name].append(self.sim.now)
            queue.append(
                _Admitted(
                    spec, self.sim.now, seq,
                    deadline=self.sim.now + self._deadline_offset(spec),
                )
            )
            self._kick()
        self._open_arrivals -= 1
        self._kick()

    # -- dispatch ------------------------------------------------------------

    def _queued_total(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _next_fcfs(self) -> Optional[_Admitted]:
        best: Optional[Deque[_Admitted]] = None
        for spec in self.tenants:
            queue = self._queues[spec.name]
            if queue and (best is None or queue[0].arrival < best[0].arrival):
                best = queue
        return best.popleft() if best is not None else None

    def _next_wrr(self) -> Optional[_Admitted]:
        n = len(self.tenants)
        for _ in range(n + 1):
            spec = self.tenants[self._wrr_index]
            queue = self._queues[spec.name]
            if self._wrr_credit > 0 and queue:
                self._wrr_credit -= 1
                return queue.popleft()
            self._wrr_index = (self._wrr_index + 1) % n
            # Credit refreshes from the *live* weight at every cursor
            # advance: a mid-run set_weight takes effect the next time
            # the cursor reaches the tenant, with no stale-credit skew.
            self._wrr_credit = self._weights[self.tenants[self._wrr_index].name]
        return None

    def _next_edf(self) -> Optional[_Admitted]:
        # Per-tenant queues are FIFO and each tenant's deadline offset is
        # constant, so queue heads are the only EDF candidates — this is
        # exact earliest-deadline-first, not an approximation.
        best: Optional[Deque[_Admitted]] = None
        for spec in self.tenants:
            queue = self._queues[spec.name]
            if queue and (
                best is None
                or (queue[0].deadline, queue[0].arrival)
                < (best[0].deadline, best[0].arrival)
            ):
                best = queue
        return best.popleft() if best is not None else None

    def _next_priority(self) -> Optional[_Admitted]:
        best: Optional[Deque[_Admitted]] = None
        best_key = None
        for spec in self.tenants:
            queue = self._queues[spec.name]
            if not queue:
                continue
            key = (-spec.priority, queue[0].arrival)
            if best is None or key < best_key:
                best, best_key = queue, key
        return best.popleft() if best is not None else None

    def _affinity_cap(self, tenant: str) -> int:
        """Longest same-tenant run the COALESCE fast path may extend."""
        if self.config.max_affinity_run is not None:
            return self.config.max_affinity_run
        return max(1, self._weights[tenant])

    def _next_affinity(self) -> Optional[_Admitted]:
        """The COALESCE tenant-affinity fast path — capped and
        credit-honest.

        Two fairness bugs lived here: the path (1) popped the last
        tenant's queue with no run-length cap, so one backlogged tenant
        starved every other (including higher-priority and earlier-
        deadline work) for as long as the tier held, and (2) bypassed
        WRR credit accounting entirely, corrupting fairness state past
        the brownout episode. Now the run is capped at
        :meth:`_affinity_cap` before falling through to the configured
        discipline, and under WRR an affinity pop is only allowed when
        it is the cursor tenant's turn with credit remaining — which it
        then debits, exactly as :meth:`_next_wrr` would.
        """
        tenant = self._last_tenant
        if self._affinity_run >= self._affinity_cap(tenant):
            return None
        queue = self._queues[tenant]
        if not queue:
            return None
        if self.config.discipline is Discipline.WRR:
            if (
                self.tenants[self._wrr_index].name != tenant
                or self._wrr_credit <= 0
            ):
                return None
            self._wrr_credit -= 1
        return queue.popleft()

    def _next_item(self) -> Optional[_Admitted]:
        if (
            self._brownout is not None
            and self._brownout.tier >= BrownoutTier.COALESCE
            and self._last_tenant is not None
        ):
            # Tenant-affinity dispatch: runs of the same tenant complete
            # back to back, so the notification model's coalescing
            # window batches their completion interrupts.
            item = self._next_affinity()
            if item is not None:
                return item
        if self.config.discipline is Discipline.FCFS:
            return self._next_fcfs()
        if self.config.discipline is Discipline.WRR:
            return self._next_wrr()
        if self.config.discipline is Discipline.EDF:
            return self._next_edf()
        return self._next_priority()

    def _dispatch_loop(self) -> Generator:
        while True:
            while self._inflight < self.config.max_inflight:
                item = self._next_item()
                if item is None:
                    break
                if item.spec.name == self._last_tenant:
                    self._affinity_run += 1
                else:
                    self._affinity_run = 1
                self._last_tenant = item.spec.name
                if self._former is not None:
                    self._form(item)
                    continue
                self._inflight += 1
                self._tenant_inflight[item.spec.name] += 1
                self.sim.spawn(
                    self._serve_one(item),
                    name=f"serve:{item.spec.name}#{item.seq}",
                )
            if self._former is not None:
                self._feed_formers()
            if (
                self._open_arrivals == 0
                and self._queued_total() == 0
                and self._inflight == 0
            ):
                self._finished = True
                self._done_at = self.sim.now
                return
            yield self._park()

    def _serve_one(self, item: _Admitted) -> Generator:
        stats = self._stats[item.spec.name]
        dispatched = self.sim.now
        telemetry = self.telemetry
        # The client span covers arrival→completion (what the SLO sees);
        # its "admission" child is the queue wait, and the system's
        # request span tree hangs under it via ``parent_span``.
        client = telemetry.begin(
            f"{item.spec.name}#{item.seq}", "client", actor=item.spec.name,
            start=item.arrival, tenant=item.spec.name, seq=item.seq,
        )
        force_cpu = (
            self._brownout is not None
            and self._brownout.tier >= BrownoutTier.FORCE_CPU
        )
        record = yield from self.system.submit(
            self._app_index[item.spec.name], parent_span=client.span_id,
            force_cpu=force_cpu,
        )
        client.request_id = record.request_id
        telemetry.add(
            "admission", "queue", start=item.arrival, end=dispatched,
            actor=item.spec.name, parent=client,
            request_id=record.request_id, phase="queue",
        )
        latency = self.sim.now - item.arrival
        stats.completed += 1
        if record.failed:
            stats.failed += 1
        elif self.config.slo_s is not None and latency > self.config.slo_s:
            stats.violations += 1
        stats.latency.add(latency)
        stats.queue_wait.add(dispatched - item.arrival)
        self._latency.add(latency)
        if self._brownout is not None:
            self._brownout.observe(latency)
        if self._controller is not None:
            self._controller.observe(item.spec.name, latency)
        self._records.append(record)
        telemetry.end(client, failed=record.failed)
        if self._client_latency is not None:
            self._client_latency[item.spec.name].observe(latency)
        self._inflight -= 1
        self._tenant_inflight[item.spec.name] -= 1
        if self._controller is not None:
            self._controller.on_request_boundary(item.spec.name)
        self._kick()

    # -- batched dispatch ----------------------------------------------------

    def _batch_terms(self, tenant: str) -> "tuple[int, float]":
        """(max_batch, window_s) for a batch the ``tenant`` opens *now*:
        the brownout COALESCE tier stretches the window (and optionally
        the cap) so overload buys more amortization per control-path
        invocation; size-aware formation then shrinks the window to what
        the tenant's admission rate can actually fill."""
        cfg = self.config.batching
        max_batch, window_s = cfg.max_batch, cfg.window_s
        if (
            self._brownout is not None
            and self._brownout.tier >= BrownoutTier.COALESCE
        ):
            window_s *= cfg.coalesce_window_factor
            if cfg.coalesce_max_batch is not None:
                max_batch = cfg.coalesce_max_batch
        if self._admit_times is not None:
            window_s = self._size_aware_window(tenant, max_batch, window_s)
        return max_batch, window_s

    def _size_aware_window(
        self, tenant: str, max_batch: int, window_s: float
    ) -> float:
        """Shrink ``window_s`` to the time the batch plausibly needs.

        With the tenant admitting at rate λ̂ (estimated from its last
        ``rate_window`` admission timestamps), a full window collects
        about ``λ̂·window_s`` more members. Waiting any longer than the
        expected time for ``min(max_batch-1, floor(λ̂·window_s))`` of
        them is pure added latency — and when that count is zero, the
        window buys nothing at all, so the batch seals immediately
        instead of idling out ``window_s`` as a singleton. Fewer than
        two samples means no estimate: keep the configured window.
        """
        times = self._admit_times[tenant]
        if len(times) < 2 or window_s <= 0:
            return window_s
        span = times[-1] - times[0]
        if span <= 0:
            return window_s  # same-instant burst: rate is unbounded
        rate = (len(times) - 1) / span
        fills = min(max_batch - 1, math.floor(rate * window_s))
        if fills <= 0:
            return 0.0
        return min(window_s, fills / rate)

    def _form(self, item: _Admitted) -> None:
        """Route one dispatched item into its tenant's forming batch.

        A forming batch holds one ``max_inflight`` slot from the moment
        it opens until its execution completes — formation must consume
        dispatch capacity, or it would drain admission queues without
        backpressure and void the discipline's ordering guarantees.
        """
        if not self._former.is_forming(item.spec.name):
            self._inflight += 1
            self._tenant_inflight[item.spec.name] += 1
        max_batch, window_s = self._batch_terms(item.spec.name)
        self._former.add(item, max_batch, window_s)

    def _feed_formers(self) -> None:
        """Drain queued same-tenant work into open forming batches.

        Joining an open batch consumes no dispatch slot, so this runs
        even when the inflight window is full — otherwise a forming
        batch would idle out its whole window while the members that
        could seal it sit in the admission queue behind a closed window
        (the worst case at small ``max_inflight``). At high load this is
        what makes batches size-out instantly instead of waiting.
        Within a tenant the queue is FIFO, so joining preserves the
        discipline's ordering guarantees.
        """
        for spec in self.tenants:
            if not self._former.is_forming(spec.name):
                continue
            queue = self._queues[spec.name]
            max_batch, window_s = self._batch_terms(spec.name)
            while queue and self._former.is_forming(spec.name):
                self._former.add(queue.popleft(), max_batch, window_s)

    def _launch_batch(self, batch: FormingBatch) -> None:
        self.sim.spawn(
            self._serve_batch(batch),
            name=f"serve-batch:{batch.tenant}#{batch.seq}",
        )

    def _serve_batch(self, batch: FormingBatch) -> Generator:
        items = batch.members
        spec = items[0].spec
        stats = self._stats[spec.name]
        dispatched = self.sim.now
        telemetry = self.telemetry
        # The batch span parents every member's client span (and, via
        # ``parent_span``, the system's batch-exec span tree); it opens
        # at formation start so its extent covers formation delay too.
        bspan = telemetry.begin(
            f"batch:{spec.name}#{batch.seq}", "batch", actor=spec.name,
            start=batch.created, tenant=spec.name,
            batch_size=len(items), sealed_by=batch.sealed_by,
        )
        clients = [
            telemetry.begin(
                f"{item.spec.name}#{item.seq}", "client",
                actor=item.spec.name, start=item.arrival,
                tenant=item.spec.name, seq=item.seq, parent=bspan,
            )
            for item in items
        ]
        force_cpu = (
            self._brownout is not None
            and self._brownout.tier >= BrownoutTier.FORCE_CPU
        )
        records = yield from self.system.submit_batch(
            self._app_index[spec.name], len(items),
            parent_span=bspan.span_id, force_cpu=force_cpu,
        )
        stats.batches += 1
        if self._batch_size_hist is not None:
            self._batch_size_hist.observe(float(len(items)))
            self._formation_delay_gauge.sample(
                self.sim.now, dispatched - batch.created
            )
        for item, client, record in zip(items, clients, records):
            client.request_id = record.request_id
            telemetry.add(
                "admission", "queue", start=item.arrival, end=dispatched,
                actor=item.spec.name, parent=client,
                request_id=record.request_id, phase="queue",
            )
            latency = self.sim.now - item.arrival
            stats.completed += 1
            if record.failed:
                stats.failed += 1
            elif (
                self.config.slo_s is not None and latency > self.config.slo_s
            ):
                stats.violations += 1
            stats.latency.add(latency)
            stats.queue_wait.add(dispatched - item.arrival)
            self._latency.add(latency)
            if self._brownout is not None:
                self._brownout.observe(latency)
            if self._controller is not None:
                self._controller.observe(item.spec.name, latency)
            self._records.append(record)
            telemetry.end(client, failed=record.failed)
            if self._client_latency is not None:
                self._client_latency[item.spec.name].observe(latency)
        telemetry.end(bspan)
        self._inflight -= 1
        self._tenant_inflight[spec.name] -= 1
        if self._controller is not None:
            self._controller.on_request_boundary(spec.name)
        self._kick()

    # -- brownout control loop -----------------------------------------------

    def _brownout_loop(self, period: float) -> Generator:
        # Tier changes land in the metrics registry (gauge timeline) and
        # the instant stream, so artifacts show when the ladder moved.
        controller = self._brownout
        gauge = self.telemetry.metrics.gauge("brownout_tier")
        gauge.sample(self.sim.now, int(controller.tier))
        while not self._finished:
            yield self.sim.timeout(period)
            change = controller.update(self.sim.now)
            if change is not None:
                old, new = change
                gauge.sample(self.sim.now, int(new))
                self.telemetry.instant(
                    "brownout_tier", "brownout",
                    **{"from": old.name, "to": new.name},
                )

    # -- closed-loop controller ----------------------------------------------

    def _controller_loop(self, period: float) -> Generator:
        controller = self._controller
        while not self._finished:
            yield self.sim.timeout(period)
            controller.update(self.sim.now)

    @property
    def controller_actions(self) -> List[Tuple[float, str, str]]:
        """``(time, kind, detail)`` log of every decision the armed
        closed-loop controller applied; empty when disarmed."""
        if self._controller is None:
            return []
        return list(self._controller.actions)

    # -- queue-depth timeline ------------------------------------------------

    def _sampler_loop(self, period: float) -> Generator:
        # The occupancy timeline lives in the metrics registry (written
        # straight to the registry, not gated on ``telemetry.enabled``,
        # so ``ServeResult.timeline`` behaves identically either way).
        registry = self.telemetry.metrics
        inflight_gauge = registry.gauge("inflight")
        queue_gauges = {
            name: registry.gauge("queue_depth", tenant=name)
            for name in self._queues
        }
        while not self._finished:
            now = self.sim.now
            for name, queue in self._queues.items():
                queue_gauges[name].sample(now, len(queue))
            inflight_gauge.sample(now, self._inflight)
            yield self.sim.timeout(period)

    def _build_timeline(self) -> List[QueueSample]:
        """Reconstruct the legacy per-sample timeline from the gauges."""
        if self.config.sample_period_s is None:
            return []
        registry = self.telemetry.metrics
        per_tenant = {
            name: registry.gauge("queue_depth", tenant=name).samples
            for name in self._queues
        }
        return [
            QueueSample(
                time=time,
                queued={
                    name: int(samples[i][1])
                    for name, samples in per_tenant.items()
                },
                inflight=int(value),
            )
            for i, (time, value) in enumerate(
                registry.gauge("inflight").samples
            )
        ]

    # -- the run -------------------------------------------------------------

    def run(self) -> ServeResult:
        """Generate, admit, dispatch, and complete all tenant traffic."""
        if self._ran:
            raise RuntimeError("a ServingFrontend can only run once")
        self._ran = True
        for spec in self.tenants:
            self.sim.spawn(
                self._arrival_loop(spec), name=f"arrivals:{spec.name}"
            )
        self.sim.spawn(self._dispatch_loop(), name="dispatch")
        if self.config.sample_period_s is not None:
            self.sim.spawn(
                self._sampler_loop(self.config.sample_period_s),
                name="queue-sampler",
            )
        drives_tiers = (
            self._controller is not None
            and self.config.controller.drive_tiers
        )
        if self._brownout is not None and not drives_tiers:
            # With the closed-loop controller picking tiers, the open-
            # loop ladder stepping stands down (two writers would fight
            # over the same actuator); the ladder machinery still
            # applies whatever tier the controller sets.
            self.sim.spawn(
                self._brownout_loop(self.config.brownout.update_period_s),
                name="brownout-controller",
            )
        if self._controller is not None:
            # Arm-time pass at t=0 (park standby cards, settle initial
            # placement), then the periodic control loop on the sim
            # clock.
            self._controller.start(self.sim.now)
            self.sim.spawn(
                self._controller_loop(
                    self.config.controller.update_period_s
                ),
                name="closed-loop-controller",
            )
        self.sim.run()
        self.telemetry.finalize()
        self.system._record_run_metrics()
        rollups = None
        alerts: List = []
        if self.config.observation is not None:
            # Post hoc by construction: the DES has fully drained, so
            # the observation pass can only read what the run recorded.
            from ..telemetry.alerts import observe_run

            rollups, alerts = observe_run(
                self.telemetry,
                self.config.observation,
                slo_s=self.config.slo_s,
            )
        return ServeResult(
            tenants=self._stats,
            latency=self._latency,
            timeline=self._build_timeline(),
            elapsed=self._done_at,
            slo_s=self.config.slo_s,
            records=self._records,
            telemetry=self.telemetry,
            rollups=rollups,
            alerts=alerts,
        )
