"""Seeded arrival processes for the online serving layer.

Three request-arrival models drive the serving frontend's open-loop
traffic, covering the regimes the serving literature sweeps:

* :class:`PoissonArrivals` — memoryless arrivals at a fixed mean rate,
  the default for load/latency knee curves;
* :class:`DeterministicArrivals` — perfectly paced arrivals (the
  lowest-variance reference; isolates queueing caused by service-time
  variation from queueing caused by arrival burstiness);
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process
  alternating quiet and burst phases, the standard bursty-traffic model.

A process object is an immutable *spec*: all randomness comes from the
caller-owned ``random.Random`` passed to :meth:`ArrivalProcess.interarrivals`,
so — like :mod:`repro.faults` — a seeded serving run replays its exact
arrival sequence, and :meth:`ArrivalProcess.scaled` re-rates a spec for
load sweeps without touching its shape parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, List, Union

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "MMPPArrivals",
    "RampArrivals",
    "ARRIVAL_KINDS",
    "make_arrivals",
    "arrival_times",
]


class ArrivalProcess:
    """Interface for arrival-time generators (immutable specs)."""

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate, requests per second."""
        raise NotImplementedError

    def interarrivals(self, rng: random.Random) -> Iterator[float]:
        """Infinite stream of interarrival gaps (seconds), drawn from ``rng``."""
        raise NotImplementedError

    def scaled(self, mean_rate_rps: float) -> "ArrivalProcess":
        """The same process shape re-rated to a new mean arrival rate."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential interarrival gaps at ``rate_rps``."""

    rate_rps: float

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")

    @property
    def mean_rate_rps(self) -> float:
        return self.rate_rps

    def interarrivals(self, rng: random.Random) -> Iterator[float]:
        while True:
            yield rng.expovariate(self.rate_rps)

    def scaled(self, mean_rate_rps: float) -> "PoissonArrivals":
        return replace(self, rate_rps=mean_rate_rps)


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """Perfectly paced arrivals: a fixed ``1 / rate_rps`` gap."""

    rate_rps: float

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")

    @property
    def mean_rate_rps(self) -> float:
        return self.rate_rps

    def interarrivals(self, rng: random.Random) -> Iterator[float]:
        gap = 1.0 / self.rate_rps
        while True:
            yield gap

    def scaled(self, mean_rate_rps: float) -> "DeterministicArrivals":
        return replace(self, rate_rps=mean_rate_rps)


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates a *quiet* phase (Poisson at ``base_rate_rps``)
    and a *burst* phase (Poisson at ``base_rate_rps * burst_factor``);
    phase dwell times are exponential with the given means. Phase
    switches mid-gap exploit the exponential's memorylessness: the
    residual wait is re-drawn at the new phase's rate, which is the
    exact MMPP construction, not a thinning approximation.
    """

    base_rate_rps: float
    burst_factor: float = 8.0
    mean_dwell_quiet_s: float = 0.5
    mean_dwell_burst_s: float = 0.1

    def __post_init__(self) -> None:
        if self.base_rate_rps <= 0:
            raise ValueError("base_rate_rps must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.mean_dwell_quiet_s <= 0 or self.mean_dwell_burst_s <= 0:
            raise ValueError("phase dwell times must be positive")

    @property
    def mean_rate_rps(self) -> float:
        """Time-weighted average of the two phase rates."""
        quiet, burst = self.mean_dwell_quiet_s, self.mean_dwell_burst_s
        return self.base_rate_rps * (
            (quiet + self.burst_factor * burst) / (quiet + burst)
        )

    def interarrivals(self, rng: random.Random) -> Iterator[float]:
        in_burst = False
        phase_left = rng.expovariate(1.0 / self.mean_dwell_quiet_s)
        while True:
            gap = 0.0
            while True:
                rate = self.base_rate_rps * (
                    self.burst_factor if in_burst else 1.0
                )
                draw = rng.expovariate(rate)
                if draw < phase_left:
                    phase_left -= draw
                    gap += draw
                    break
                # No arrival before the phase flips: advance to the flip
                # and re-draw the (memoryless) residual at the new rate.
                gap += phase_left
                in_burst = not in_burst
                dwell = (
                    self.mean_dwell_burst_s
                    if in_burst
                    else self.mean_dwell_quiet_s
                )
                phase_left = rng.expovariate(1.0 / dwell)
            yield gap

    def scaled(self, mean_rate_rps: float) -> "MMPPArrivals":
        if mean_rate_rps <= 0:
            raise ValueError("mean_rate_rps must be positive")
        factor = mean_rate_rps / self.mean_rate_rps
        return replace(self, base_rate_rps=self.base_rate_rps * factor)


@dataclass(frozen=True)
class RampArrivals(ArrivalProcess):
    """Piecewise-constant-rate Poisson: a load ramp in one process.

    ``segments`` is a sequence of ``(duration_s, rate_rps)`` legs walked
    once from t=0; after the last leg its rate holds forever. Within a
    leg arrivals are Poisson at the leg's rate, and a gap that straddles
    a leg boundary is re-drawn at the new rate from the boundary — the
    memorylessness construction :class:`MMPPArrivals` uses, so this is
    the exact inhomogeneous process, not a thinning approximation.
    Closed-loop controller tests ramp offered load through a knee with
    this while keeping the whole run one seeded, replayable process.
    """

    segments: "tuple"

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("need at least one (duration_s, rate_rps) leg")
        for duration, rate in self.segments:
            if duration <= 0:
                raise ValueError(f"leg duration must be positive: {duration}")
            if rate <= 0:
                raise ValueError(f"leg rate must be positive: {rate}")

    @property
    def mean_rate_rps(self) -> float:
        """Time-weighted mean rate over the declared ramp span."""
        total = sum(duration for duration, _ in self.segments)
        return (
            sum(duration * rate for duration, rate in self.segments) / total
        )

    def interarrivals(self, rng: random.Random) -> Iterator[float]:
        index = 0
        leg_left = self.segments[0][0]
        while True:
            gap = 0.0
            while True:
                rate = self.segments[index][1]
                draw = rng.expovariate(rate)
                if index == len(self.segments) - 1 and leg_left <= 0:
                    # Past the ramp: the final rate holds forever.
                    gap += draw
                    break
                if draw < leg_left:
                    leg_left -= draw
                    gap += draw
                    break
                # No arrival before the leg ends: advance to the
                # boundary and re-draw the residual at the next rate.
                gap += leg_left
                if index < len(self.segments) - 1:
                    index += 1
                    leg_left = self.segments[index][0]
                else:
                    leg_left = 0.0
            yield gap

    def scaled(self, mean_rate_rps: float) -> "RampArrivals":
        if mean_rate_rps <= 0:
            raise ValueError("mean_rate_rps must be positive")
        factor = mean_rate_rps / self.mean_rate_rps
        return replace(
            self,
            segments=tuple(
                (duration, rate * factor)
                for duration, rate in self.segments
            ),
        )


ARRIVAL_KINDS = ("poisson", "deterministic", "mmpp")


def make_arrivals(kind: str, mean_rate_rps: float, **kwargs) -> ArrivalProcess:
    """Build an arrival process by name (``ARRIVAL_KINDS``).

    Extra keyword arguments go to the process constructor (e.g.
    ``burst_factor`` for ``"mmpp"``); the mean rate is always the first
    argument so sweep drivers can treat kinds interchangeably.
    """
    if kind == "poisson":
        return PoissonArrivals(mean_rate_rps, **kwargs)
    if kind == "deterministic":
        return DeterministicArrivals(mean_rate_rps, **kwargs)
    if kind == "mmpp":
        process = MMPPArrivals(base_rate_rps=mean_rate_rps, **kwargs)
        return process.scaled(mean_rate_rps)
    raise ValueError(
        f"unknown arrival kind {kind!r}; expected one of {ARRIVAL_KINDS}"
    )


def arrival_times(
    process: ArrivalProcess, seed_or_rng: Union[int, random.Random], n: int
) -> List[float]:
    """The first ``n`` absolute arrival times of ``process``.

    Accepts a seed (a fresh ``random.Random`` is built) or a live rng;
    mainly a determinism-testing and plotting helper.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = (
        seed_or_rng
        if isinstance(seed_or_rng, random.Random)
        else random.Random(seed_or_rng)
    )
    gaps = process.interarrivals(rng)
    times: List[float] = []
    now = 0.0
    for _ in range(n):
        now += next(gaps)
        times.append(now)
    return times
