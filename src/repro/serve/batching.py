"""Batch formation for coalesced dispatch (RPCAcc-style).

The frontend dispatches each admitted request individually, so every
motion stage pays the full control path — descriptor-ring submission,
doorbell, completion interrupt — per request. A :class:`BatchFormer`
accumulates same-tenant admitted requests (same chain, hence same chain
legs) into a forming batch that seals on whichever comes first:

* **size-out** — the batch reaches its member cap, or
* **time-out** — the formation window expires on the sim clock.

Sealed batches execute as one coalesced submission via
:meth:`~repro.core.system.DMXSystem.submit_batch`: one chained DMA
descriptor submission + doorbell, one amortized DRX program load, and
one coalesced completion ISR cover every member, while kernels and
payload restructuring still run per member. The price is formation
delay — each member waits up to ``window_s`` for the batch to fill —
which is exactly the batch-formation-delay-vs-tail-latency trade the
knee benchmark (``benchmarks/test_batching_knee.py``) measures.

Formation is deterministic: it is driven entirely by the DES clock and
the arrival order of admitted requests, with no stochastic state of its
own, so seeded serving runs with batching enabled replay byte-for-byte.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional

from ..sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .frontend import _Admitted

__all__ = ["BatchingConfig", "FormingBatch", "BatchFormer"]


@dataclass(frozen=True)
class BatchingConfig:
    """Batch-formation knobs for one serving run.

    ``max_batch`` is the size-out threshold (members per coalesced
    submission); ``window_s`` is the time-out — the longest any member
    waits for its batch to fill, and therefore the bound on the latency
    batching may add to a request. ``window_s=0`` still coalesces
    requests dispatched at the same sim instant (the timer fires after
    the current instant's events drain) but adds no wall-clock delay.

    Under the brownout ``COALESCE`` tier the window stretches by
    ``coalesce_window_factor`` and the cap is replaced by
    ``coalesce_max_batch`` (when set) — trading more formation delay for
    fewer control-path invocations exactly when the system is drowning
    in them. Both escalations read the tier at the moment a batch is
    *opened*, so an in-flight batch's terms never change under it.

    ``size_aware=True`` shrinks the window of a batch *at open time* to
    the time the tenant's recent admission rate says it actually needs:
    a window long enough for the members that can plausibly arrive, and
    zero when the rate estimate says no other request will show up
    inside ``window_s`` at all. Low-rate tenants stop paying the full
    window as pure added latency on every singleton batch, while
    high-rate tenants (whose batches size-out anyway) are untouched.
    The estimate is the last ``rate_window`` admission timestamps of the
    tenant — deterministic DES state, so seeded replays still match.
    """

    max_batch: int = 8
    window_s: float = 2e-3
    coalesce_window_factor: float = 4.0
    coalesce_max_batch: Optional[int] = None
    size_aware: bool = False
    rate_window: int = 8

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.window_s < 0:
            raise ValueError("window_s must be non-negative")
        if self.coalesce_window_factor < 1:
            raise ValueError("coalesce_window_factor must be >= 1")
        if self.coalesce_max_batch is not None and self.coalesce_max_batch < 1:
            raise ValueError("coalesce_max_batch must be >= 1")
        if self.rate_window < 2:
            raise ValueError(
                "rate_window must be >= 2 (a rate needs two samples)"
            )


class FormingBatch:
    """One per-tenant batch being accumulated (then sealed)."""

    __slots__ = ("tenant", "seq", "created", "members", "max_batch",
                 "window_s", "sealed", "sealed_by")

    def __init__(
        self, tenant: str, seq: int, created: float,
        max_batch: int, window_s: float,
    ):
        self.tenant = tenant
        self.seq = seq
        self.created = created
        self.members: List["_Admitted"] = []
        self.max_batch = max_batch
        self.window_s = window_s
        self.sealed = False
        self.sealed_by = ""  # "size" | "window"

    def __len__(self) -> int:
        return len(self.members)


class BatchFormer:
    """Per-tenant accumulation of admitted requests into sealed batches.

    The dispatcher hands items in via :meth:`add`; a sealed batch is
    delivered to the ``launch`` callback (synchronously on size-out,
    from a timer process on window expiry). The caller owns concurrency
    accounting: a forming batch should hold one dispatch slot from the
    moment it opens (`is_forming` tells the caller whether ``add`` will
    open one) until its launched execution completes — otherwise
    formation would drain admission queues without backpressure and
    destroy the dispatch discipline's semantics.
    """

    def __init__(
        self,
        sim: Simulator,
        launch: Callable[[FormingBatch], None],
    ):
        self.sim = sim
        self._launch = launch
        self._forming: Dict[str, FormingBatch] = {}
        self._seq = itertools.count()
        self.batches_sealed = 0
        self.sealed_by_size = 0
        self.sealed_by_window = 0

    def is_forming(self, tenant: str) -> bool:
        """True when ``add(item)`` for this tenant joins an open batch
        (False means it will open a new one — and a new dispatch slot)."""
        return tenant in self._forming

    def forming_count(self) -> int:
        return len(self._forming)

    def open_batch(self, tenant: str) -> Optional[FormingBatch]:
        """The tenant's forming batch, if one is open."""
        return self._forming.get(tenant)

    def add(
        self, item: "_Admitted", max_batch: int, window_s: float
    ) -> FormingBatch:
        """Add one admitted request to its tenant's forming batch.

        ``max_batch``/``window_s`` are the formation terms *for a batch
        opened by this call* (the frontend resolves brownout escalation
        at open time); an already-forming batch keeps its own terms.
        Returns the batch the item joined; the batch may seal (and
        launch) during this call when the item fills it.
        """
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        tenant = item.spec.name
        batch = self._forming.get(tenant)
        if batch is None:
            batch = FormingBatch(
                tenant, next(self._seq), self.sim.now, max_batch, window_s
            )
            self._forming[tenant] = batch
            batch.members.append(item)
            if len(batch) >= batch.max_batch:
                self._seal(batch, "size")
            else:
                self.sim.spawn(
                    self._window_timer(batch),
                    name=f"batch-window:{tenant}#{batch.seq}",
                )
            return batch
        batch.members.append(item)
        if len(batch) >= batch.max_batch:
            self._seal(batch, "size")
        return batch

    def _window_timer(self, batch: FormingBatch) -> Generator:
        yield self.sim.timeout(batch.window_s)
        if not batch.sealed:
            self._seal(batch, "window")

    def _seal(self, batch: FormingBatch, cause: str) -> None:
        batch.sealed = True
        batch.sealed_by = cause
        if self._forming.get(batch.tenant) is batch:
            del self._forming[batch.tenant]
        self.batches_sealed += 1
        if cause == "size":
            self.sealed_by_size += 1
        else:
            self.sealed_by_window += 1
        self._launch(batch)
