"""Online multi-tenant serving layer over the DMX system model.

Where :meth:`~repro.core.system.DMXSystem.run_latency` (closed-loop) and
:meth:`~repro.core.system.DMXSystem.run_throughput` (batch-issue) drive
fixed request counts, this package models *sustained online traffic*:

* :mod:`repro.serve.arrivals` — seeded Poisson / deterministic / MMPP
  arrival processes (one ``random.Random(seed)``, exact replay);
* :mod:`repro.serve.frontend` — per-tenant bounded admission queues,
  reject-vs-queue shedding, FCFS / weighted-round-robin dispatch into
  the shared system via :meth:`DMXSystem.submit`;
* :mod:`repro.serve.batching` — per-tenant batch formation (size-out +
  time-out window) feeding coalesced submissions via
  :meth:`DMXSystem.submit_batch` (one descriptor chain + doorbell +
  completion ISR per batch);
* :mod:`repro.serve.slo` — streaming p50/p95/p99 latency percentiles
  (P² + exact), per-tenant goodput, shed/violation counts, queue-depth
  timelines on the sim clock;
* :mod:`repro.serve.sweep` — latency-vs-offered-load knee curves per
  system :class:`~repro.core.placement.Mode`, optionally with a
  :class:`~repro.faults.FaultPlan` armed.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    RampArrivals,
    arrival_times,
    make_arrivals,
)
from .batching import BatchFormer, BatchingConfig, FormingBatch
from .frontend import (
    Discipline,
    FrontendConfig,
    ServingFrontend,
    ShedPolicy,
    TenantSpec,
)
from .slo import (
    DEFAULT_QUANTILES,
    LatencyTracker,
    P2Quantile,
    QueueSample,
    ServeResult,
    TenantStats,
)
from .sweep import (
    SweepConfig,
    SweepPoint,
    SweepResult,
    calibrate_peak_rps,
    run_sweep,
    run_sweep_point,
    unloaded_latency,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "MMPPArrivals",
    "RampArrivals",
    "make_arrivals",
    "arrival_times",
    "ShedPolicy",
    "Discipline",
    "TenantSpec",
    "FrontendConfig",
    "ServingFrontend",
    "BatchingConfig",
    "BatchFormer",
    "FormingBatch",
    "DEFAULT_QUANTILES",
    "P2Quantile",
    "LatencyTracker",
    "TenantStats",
    "QueueSample",
    "ServeResult",
    "SweepConfig",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "run_sweep_point",
    "calibrate_peak_rps",
    "unloaded_latency",
]
