"""The unified closed-loop controller.

One :class:`ClosedLoopController` runs on the sim clock inside a
:class:`~repro.serve.frontend.ServingFrontend` and closes the loop over
every actuator the serving and resilience planes expose, from one
sensing substrate — windowed per-tenant tail latency vs. the SLO, plus
the live :class:`~repro.resilience.health.HealthMonitor` scores:

* **WRR weights** — tenants burning their SLO headroom get more
  dispatch share, tenants with headroom give it back
  (:meth:`ServingFrontend.set_weight`, the live-weight surface);
* **brownout tier** — instead of one-step ladder walking, the
  :class:`~repro.control.cost.TierCostModel` prices every tier on live
  backend estimates and the cheapest *sufficient* tier wins
  (:meth:`BrownoutController.set_tier`);
* **DRX capacity** — a standby pool of standalone cards is commissioned
  (``ControlPlane.revive``) as windowed p99 approaches the SLO and
  decommissioned (``ControlPlane.mark_dead``) when headroom returns;
* **placement** — chains are re-packed onto the in-service cards to
  minimize load-weighted upstream crossings, live-migrating a tenant
  (:meth:`DMXSystem.migrate_app`) only at request boundaries:
  immediately when the tenant is idle, otherwise deferred to its next
  request completion.

Every actuator carries its own dwell-time hysteresis, every decision is
mirrored into telemetry (``controller_*`` instants, a
``controller_actions`` counter per kind), and the whole loop is
deterministic: sensing reads recorded latencies and pure cost
estimates, actuation happens at fixed update periods on the sim clock,
and no controller path touches an RNG. A frontend with
``controller=None`` runs byte-identically to a frontend built before
this module existed.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..resilience.brownout import BrownoutTier
from ..sim.tracing import exact_percentile
from .cost import TierBid, TierCostModel
from .placement import plan_placement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.frontend import ServingFrontend

__all__ = ["ControllerConfig", "ClosedLoopController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Arms the closed-loop controller on a serving frontend.

    The four actuators arm independently: ``drive_weights`` /
    ``drive_tiers`` / ``drive_placement`` flags and a non-zero
    ``standby_cards`` pool for the capacity autoscaler. ``drive_tiers``
    requires the frontend's brownout ladder (the controller picks the
    tier; the ladder's machinery applies it); ``standby_cards`` requires
    the fronted system's resilience control plane (commission /
    decommission ride the breaker revive / mark-dead machinery).
    """

    update_period_s: float = 2e-3
    #: Per-tenant (and global) sliding latency window.
    window: int = 32
    min_samples: int = 4
    quantile: float = 0.99
    #: Steer windowed tails toward ``target_fraction * slo``.
    target_fraction: float = 0.85

    # (a) WRR weight driver
    drive_weights: bool = True
    min_weight: int = 1
    max_weight: int = 8
    weight_dwell_s: float = 4e-3

    # (b) cost-model tier selection
    drive_tiers: bool = True
    shed_cost_weight: float = 2.0
    coalesce_relief_fraction: float = 0.35
    coalesce_cost_s: float = 1e-3
    energy_cost_s_per_j: float = 0.0
    #: De-escalate only once the windowed tail is back under this
    #: fraction of the SLO — the dual-threshold band the open-loop
    #: ladder has; without it the tier limit-cycles at the dwell period
    #: (shed drains the queue, the tail dips, NORMAL refills it).
    deescalate_fraction: float = 0.7

    # (c) DRX capacity autoscaler (inert at standby_cards=0)
    standby_cards: int = 0
    scale_up_at: float = 0.85
    scale_down_at: float = 0.35
    scale_dwell_s: float = 8e-3

    # (d) placement optimizer
    drive_placement: bool = True
    placement_dwell_s: float = 6e-3
    max_migrations_per_update: int = 1

    def __post_init__(self) -> None:
        if self.update_period_s <= 0:
            raise ValueError("update_period_s must be positive")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError("min_samples must be in [1, window]")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if not 0.0 < self.target_fraction <= 1.0:
            raise ValueError("target_fraction must be in (0, 1]")
        if not 1 <= self.min_weight <= self.max_weight:
            raise ValueError("need 1 <= min_weight <= max_weight")
        if self.standby_cards < 0:
            raise ValueError("standby_cards must be >= 0")
        if not self.scale_down_at < self.scale_up_at:
            raise ValueError("scale_down_at must be < scale_up_at")
        if not 0.0 < self.deescalate_fraction <= self.target_fraction:
            raise ValueError(
                "deescalate_fraction must be in (0, target_fraction]"
            )
        if self.max_migrations_per_update < 0:
            raise ValueError("max_migrations_per_update must be >= 0")
        for name in ("weight_dwell_s", "scale_dwell_s",
                     "placement_dwell_s", "coalesce_cost_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


class ClosedLoopController:
    """Sense windowed tails + health; drive weights, tier, capacity,
    and placement. Owned and clocked by a :class:`ServingFrontend`."""

    def __init__(self, frontend: "ServingFrontend",
                 config: ControllerConfig):
        if frontend.config.slo_s is None:
            raise ValueError("the closed-loop controller requires slo_s")
        if config.drive_tiers and frontend._brownout is None:
            raise ValueError(
                "drive_tiers requires the brownout ladder "
                "(FrontendConfig.brownout)"
            )
        self.frontend = frontend
        self.system = frontend.system
        self.config = config
        self.slo_s = frontend.config.slo_s
        self.telemetry = frontend.telemetry
        self._tenant_window: Dict[str, Deque[float]] = {
            t.name: deque(maxlen=config.window) for t in frontend.tenants
        }
        self._global_window: Deque[float] = deque(maxlen=config.window)
        self._base_weight: Dict[str, int] = {
            t.name: t.weight for t in frontend.tenants
        }
        self._last_weight_change: Dict[str, Optional[float]] = {
            t.name: None for t in frontend.tenants
        }
        self._last_scale: Optional[float] = None
        self._last_migration: Optional[float] = None
        #: (sim time, kind, human-readable detail) — the demo/report feed.
        self.actions: List[Tuple[float, str, str]] = []
        self._tenant_of_app: Dict[int, str] = {
            app: name for name, app in frontend._app_index.items()
        }
        #: Admitted counts at the last placement pass: placement loads
        #: are the deltas since, so a tenant idle (or shed) for a while
        #: stops counting as hot no matter its lifetime totals.
        self._admitted_snapshot: Dict[str, int] = {
            t.name: 0 for t in frontend.tenants
        }
        #: Planned moves waiting for their tenant's next request
        #: boundary: app index -> (from card, to card, urgent). A busy
        #: tenant is *deferred*, never dropped — a continuously
        #: backlogged tenant would otherwise be unmigratable exactly
        #: when moving it matters most.
        self._pending_migration: Dict[int, Tuple[str, str, bool]] = {}
        cards = self.system.standalone_cards()
        if config.standby_cards > 0:
            if self.system.control is None:
                raise ValueError(
                    "standby_cards requires the system's resilience "
                    "control plane (DMXSystem(..., resilience=...))"
                )
            if config.standby_cards >= len(cards):
                raise ValueError(
                    f"standby_cards={config.standby_cards} would leave "
                    f"no card in service (system has {len(cards)})"
                )
        #: Cards the autoscaler may park; the tail of the sorted card
        #: list, so the first cards (hosting the first chains) stay up.
        self._pool: List[str] = (
            cards[len(cards) - config.standby_cards:]
            if config.standby_cards
            else []
        )
        self._parked: List[str] = []
        self._tier_model: Optional[TierCostModel] = (
            TierCostModel(
                self.system,
                shed_cost_weight=config.shed_cost_weight,
                coalesce_relief_fraction=config.coalesce_relief_fraction,
                coalesce_cost_s=config.coalesce_cost_s,
                energy_cost_s_per_j=config.energy_cost_s_per_j,
                max_tier=frontend._brownout.config.max_tier
                if frontend._brownout is not None
                else BrownoutTier.FORCE_CPU,
            )
            if config.drive_tiers
            else None
        )

    # -- sensing ---------------------------------------------------------------

    def observe(self, tenant: str, latency_s: float) -> None:
        """Fold one completed request's client latency into the windows."""
        self._tenant_window[tenant].append(latency_s)
        self._global_window.append(latency_s)

    def _tail(self, window: Deque[float]) -> Optional[float]:
        if len(window) < self.config.min_samples:
            return None
        return exact_percentile(sorted(window), self.config.quantile)

    def tenant_tail(self, tenant: str) -> Optional[float]:
        return self._tail(self._tenant_window[tenant])

    def global_tail(self) -> Optional[float]:
        return self._tail(self._global_window)

    def _shed_fraction(self) -> float:
        """Load share of tenants the SHED_LOW tier would shed."""
        brownout = self.frontend._brownout
        if brownout is None:
            return 0.0
        ceiling = brownout.config.shed_max_priority
        total = sheddable = 0
        for spec in self.frontend.tenants:
            admitted = self.frontend._stats[spec.name].admitted
            total += admitted
            if spec.priority <= ceiling:
                sheddable += admitted
        return sheddable / total if total else 0.0

    # -- bookkeeping -----------------------------------------------------------

    def _note(self, now: float, kind: str, detail: str, **attrs) -> None:
        self.actions.append((now, kind, detail))
        if not self.telemetry.enabled:
            return
        self.telemetry.counter("controller_actions", kind=kind).inc()
        self.telemetry.instant(f"controller_{kind}", "controller", **attrs)

    def _dead_cards(self) -> List[str]:
        control = self.system.control
        if control is not None:
            return control.dead_targets()
        return list(self._parked)

    def _card_health(self, card: str) -> float:
        control = self.system.control
        if control is None:
            return 1.0
        return control.monitor.health(card)

    # -- lifecycle -------------------------------------------------------------

    def start(self, now: float = 0.0) -> None:
        """Arm-time pass, before any traffic: park the standby pool and
        settle the initial placement so the run starts on the scaled-in
        configuration rather than discovering it mid-ramp."""
        for card in self._pool:
            self.system.control.mark_dead(card)
            self._parked.append(card)
            self._note(
                now, "scale_down", f"parked standby card {card}",
                card=card, in_service=self._in_service_count(),
            )
        if self._pool or self.config.drive_placement:
            self._run_placement(now, initial=True)
        if (
            self.telemetry.enabled
            and self.config.drive_tiers
            and self.frontend._brownout is not None
        ):
            self.telemetry.metrics.gauge("brownout_tier").sample(
                now, int(self.frontend._brownout.tier)
            )

    def _in_service_count(self) -> int:
        dead = set(self._dead_cards())
        return sum(
            1 for c in self.system.standalone_cards() if c not in dead
        )

    # -- the update ------------------------------------------------------------

    def update(self, now: float) -> None:
        """One control period: sense, then drive each armed actuator."""
        if self.config.drive_weights:
            self._drive_weights(now)
        tail = self.global_tail()
        if self._tier_model is not None and tail is not None:
            self._drive_tier(now, tail)
        if self._pool and tail is not None:
            self._drive_capacity(now, tail)
        if self.config.drive_placement:
            self._run_placement(now)

    # (a) -- WRR weights -------------------------------------------------------

    def _drive_weights(self, now: float) -> None:
        cfg = self.config
        for spec in self.frontend.tenants:
            name = spec.name
            tail = self.tenant_tail(name)
            if tail is None:
                continue
            last = self._last_weight_change[name]
            if last is not None and now - last < cfg.weight_dwell_s:
                continue
            pressure = tail / (cfg.target_fraction * self.slo_s)
            pressure = min(2.0, max(0.5, pressure))
            health = self._card_health(
                self.system.card_of_app(self.frontend._app_index[name])
                if self.system.standalone_cards()
                else name
            )
            raw = self._base_weight[name] * pressure * health
            weight = max(cfg.min_weight,
                         min(cfg.max_weight, int(round(raw))))
            current = self.frontend.weight(name)
            if weight == current:
                continue
            self.frontend.set_weight(name, weight)
            self._last_weight_change[name] = now
            self._note(
                now, "weight",
                f"{name}: weight {current} -> {weight} "
                f"(p99 {tail * 1e3:.2f}ms, health {health:.2f})",
                tenant=name, **{"from": current, "to": weight},
            )

    # (b) -- cost-model tier ---------------------------------------------------

    def _drive_tier(self, now: float, tail: float) -> None:
        brownout = self.frontend._brownout
        chosen, bids = self._tier_model.choose(
            tail, self.slo_s, self.config.target_fraction,
            self._shed_fraction(),
        )
        if (
            chosen < brownout.tier
            and tail > self.config.deescalate_fraction * self.slo_s
        ):
            # Inside the hysteresis band: the current tier bought this
            # tail; dropping it on the first good window refills the
            # queue and flaps at the dwell period.
            return
        change = brownout.set_tier(now, chosen)
        if change is None:
            return
        old, new = change
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge("brownout_tier").sample(
                now, int(new)
            )
        self._note(
            now, "tier",
            f"tier {old.name} -> {new.name} "
            f"(p99 {tail * 1e3:.2f}ms vs SLO {self.slo_s * 1e3:.2f}ms; "
            + "; ".join(b.describe() for b in bids) + ")",
            **{"from": old.name, "to": new.name},
        )

    # (c) -- capacity ----------------------------------------------------------

    def _drive_capacity(self, now: float, tail: float) -> None:
        cfg = self.config
        if (
            self._last_scale is not None
            and now - self._last_scale < cfg.scale_dwell_s
        ):
            return
        if tail >= cfg.scale_up_at * self.slo_s and self._parked:
            card = self._parked.pop(0)
            self.system.control.revive(card, cooldown_s=0.0)
            self._last_scale = now
            self._note(
                now, "scale_up",
                f"commissioned {card} "
                f"(p99 {tail * 1e3:.2f}ms >= "
                f"{cfg.scale_up_at:.2f}x SLO)",
                card=card, in_service=self._in_service_count(),
            )
        elif tail <= cfg.scale_down_at * self.slo_s:
            in_service = [c for c in self._pool if c not in self._parked]
            if not in_service:
                return
            card = in_service[-1]
            self.system.control.mark_dead(card)
            self._parked.append(card)
            self._parked.sort()
            self._last_scale = now
            self._note(
                now, "scale_down",
                f"decommissioned {card} "
                f"(p99 {tail * 1e3:.2f}ms <= "
                f"{cfg.scale_down_at:.2f}x SLO)",
                card=card, in_service=self._in_service_count(),
            )

    # (d) -- placement ---------------------------------------------------------

    def _migratable(self, app_index: int) -> bool:
        """Request-boundary gate: no in-flight requests for the tenant."""
        tenant = self._tenant_of_app.get(app_index)
        if tenant is None:
            return True
        return self.frontend._tenant_inflight.get(tenant, 0) == 0

    def _run_placement(self, now: float, initial: bool = False) -> None:
        cfg = self.config
        cards = self.system.standalone_cards()
        if not cards:
            return
        if (
            not initial
            and self._last_migration is not None
            and now - self._last_migration < cfg.placement_dwell_s
        ):
            return
        dead = set(self._dead_cards())
        alive = [c for c in cards if c not in dead]
        if not alive:
            return
        loads: Dict[int, float] = {}
        for app, tenant in self._tenant_of_app.items():
            admitted = self.frontend._stats[tenant].admitted
            loads[app] = float(admitted - self._admitted_snapshot[tenant])
            self._admitted_snapshot[tenant] = admitted
        plan = plan_placement(self.system, loads, alive)
        if not plan.migrations:
            return
        # A fresh plan supersedes any moves still waiting on a boundary.
        self._pending_migration.clear()
        budget = (
            len(plan.migrations)
            if initial
            else cfg.max_migrations_per_update
        )
        # plan.migrations already orders evacuations (urgent) first.
        charged = 0
        for app_index, old, new in plan.migrations:
            urgent = old in dead
            if not urgent:
                if charged >= budget:
                    continue
                charged += 1
            if initial or self._migratable(app_index):
                self._apply_migration(now, app_index, old, new, urgent)
            else:
                self._pending_migration[app_index] = (old, new, urgent)

    def _apply_migration(
        self, now: float, app_index: int, old: str, new: str, urgent: bool
    ) -> None:
        self.system.migrate_app(app_index, new)
        self._last_migration = now
        tenant = self._tenant_of_app.get(app_index, f"app{app_index}")
        self._note(
            now, "migration",
            f"{tenant}: {old} -> {new}"
            + (" (home card decommissioned)" if urgent else ""),
            tenant=tenant, app=app_index,
            **{"from": old, "to": new},
        )

    def on_request_boundary(self, tenant: str) -> None:
        """The frontend's completion path calls this after a tenant's
        in-flight count drops; a deferred migration applies at the
        tenant's first completion after it was planned. A completion is
        the stream's request boundary — requests already dispatched
        keep draining (their remaining legs re-route to the new card
        exactly like the breaker plane's alternate routing does), so a
        continuously backlogged tenant still migrates instead of being
        pinned to its card by its own backlog."""
        if not self._pending_migration:
            return
        app_index = self.frontend._app_index.get(tenant)
        if app_index is None or app_index not in self._pending_migration:
            return
        old, new, urgent = self._pending_migration.pop(app_index)
        if new in set(self._dead_cards()):
            return  # stale: the target died; the next pass re-plans
        if self.system.card_of_app(app_index) != old:
            return  # stale: the app moved some other way meanwhile
        self._apply_migration(self.frontend.sim.now, app_index, old, new,
                              urgent)
