"""Closed-loop control: the unified autoscaling + placement controller.

This package closes the loop over the actuators the rest of the system
exposes open-loop — WRR weights, the brownout ladder, standalone-card
capacity, and chain→card placement — from one deterministic sensing
substrate (windowed tail latency vs. SLO plus live health scores). See
:class:`ClosedLoopController` for the loop,
:class:`~repro.control.cost.TierCostModel` for the cheapest-sufficient-
tier pricing, and :func:`~repro.control.placement.plan_placement` for
the crossing-minimizing re-packer.
"""

from .controller import ClosedLoopController, ControllerConfig
from .cost import TierBid, TierCostModel
from .placement import PlacementPlan, plan_placement

__all__ = [
    "ClosedLoopController",
    "ControllerConfig",
    "TierBid",
    "TierCostModel",
    "PlacementPlan",
    "plan_placement",
]
