"""Tenant-chain re-packing across standalone DRX cards.

The STANDALONE placement homes each application chain on one card; a
chain staged on a card that hangs off a *different* switch than its
accelerators pays two upstream (root-complex) crossings per motion
stage. The optimizer improves the chain→card assignment over the cards
currently in service — but as a *local search from the current
assignment*, not a re-pack from scratch: a scratch packer produces one
canonical assignment and migrates every equivalent-but-permuted live
placement into it, churning tenants for zero benefit.

Three kinds of move are emitted, hottest app first:

* **evacuation** — an app homed on a decommissioned card is re-placed
  unconditionally; capacity stretches (``ceil(apps / alive cards)``) so
  a scale-down never strands a chain;
* **crossing win** — a move that strictly lowers the app's upstream
  crossings;
* **balance win** — a move to the least-loaded card when it shrinks the
  donor/recipient load gap by more than the app's own load (the strict
  margin is what makes a balanced placement a fixed point — without it
  equal-load assignments swap tenants forever).

Everything is deterministic: apps are visited hottest-first (observed
load, chain index breaking ties), candidate cards are ranked by
``(crossings, load, occupancy, name)`` — no randomness, no clock
access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence

from ..core.system import STANDALONE_APPS_PER_CARD

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.system import DMXSystem

__all__ = ["PlacementPlan", "plan_placement"]


@dataclass(frozen=True)
class PlacementPlan:
    """The optimizer's desired assignment, plus the moves to get there."""

    assignment: Dict[int, str]
    #: ``(app_index, from_card, to_card)`` for every app whose desired
    #: card differs from its current one — evacuations off dead cards
    #: first, then improvement moves, hottest app first within each.
    migrations: List["tuple[int, str, str]"]


def plan_placement(
    system: "DMXSystem",
    loads: Dict[int, float],
    alive_cards: Sequence[str],
) -> PlacementPlan:
    """Improve the live chain→card assignment on ``alive_cards``.

    ``loads`` maps app index → observed load (any monotone measure; the
    controller passes recent admitted-request counts, so an idle or
    shed tenant weighs nothing when balancing).
    """
    if not alive_cards:
        raise ValueError("no cards in service to place chains on")
    cards = sorted(alive_cards)
    alive = set(cards)
    n_apps = len(system.chains)
    capacity = max(
        STANDALONE_APPS_PER_CARD, math.ceil(n_apps / len(cards))
    )

    assignment: Dict[int, str] = {}
    occupancy = {card: 0 for card in cards}
    card_load = {card: 0.0 for card in cards}
    stranded: List[int] = []
    for app_index in range(n_apps):
        home = system.card_of_app(app_index)
        if home in alive:
            assignment[app_index] = home
            occupancy[home] += 1
            card_load[home] += loads.get(app_index, 0.0)
        else:
            stranded.append(app_index)

    def by_heat(apps):
        return sorted(apps, key=lambda a: (-loads.get(a, 0.0), a))

    def best_card(app_index, exclude=None):
        return min(
            (
                card for card in cards
                if card != exclude and occupancy[card] < capacity
            ),
            key=lambda card: (
                system.upstream_crossings(app_index, card),
                card_load[card],
                occupancy[card],
                card,
            ),
        )

    migrations: List["tuple[int, str, str]"] = []
    moved = set()

    def move(app_index, old, new):
        assignment[app_index] = new
        occupancy[new] += 1
        card_load[new] += loads.get(app_index, 0.0)
        migrations.append((app_index, old, new))
        moved.add(app_index)

    for app_index in by_heat(stranded):
        move(app_index, system.card_of_app(app_index), best_card(app_index))

    for app_index in by_heat(list(assignment)):
        if app_index in moved:
            continue
        current = assignment[app_index]
        load = loads.get(app_index, 0.0)
        try:
            candidate = best_card(app_index, exclude=current)
        except ValueError:  # every other card is at capacity
            continue
        crossings_now = system.upstream_crossings(app_index, current)
        crossings_there = system.upstream_crossings(app_index, candidate)
        balance_win = (
            load > 0.0
            and card_load[current] - card_load[candidate] > load
            and crossings_there <= crossings_now
        )
        if crossings_there < crossings_now or balance_win:
            occupancy[current] -= 1
            card_load[current] -= load
            move(app_index, current, candidate)

    return PlacementPlan(assignment=assignment, migrations=migrations)
