"""Per-tier cost model: what does each brownout tier buy, and at what
price, *right now*?

The open-loop ladder steps one tier at a time on a threshold; the
closed-loop controller instead asks each tier for a priced bid —
estimated tail-latency **relief** (seconds of windowed tail the tier is
expected to shave) against the **cost** it charges (goodput shed,
formation latency added, host restructuring time and energy paid) — and
picks the *cheapest sufficient* tier: the lowest-cost rung whose relief
covers the current SLO overshoot.

All prices come from the same :class:`~repro.backends.base.CostEstimate`
machinery the per-leg planner ranks on: the DRX/CPU backends are priced
on a representative leg per application chain (the chain's first motion
stage, staged on the app's *current* card — live queue depths and the
live placement both feed the bid). Estimates are pure functions of DES
state: pricing a tier advances no clock and draws no randomness, so two
equal-seed runs bid — and therefore step — identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from ..backends.base import CPUBackend, DRXBackend, LegSpec
from ..core.chain import MotionStage
from ..core.system import SCRATCHPAD_FUSION
from ..resilience.brownout import BrownoutTier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.system import DMXSystem

__all__ = ["TierBid", "TierCostModel"]


@dataclass(frozen=True)
class TierBid:
    """One tier's priced offer: relief bought vs. cost charged."""

    tier: BrownoutTier
    relief_s: float
    paid_s: float

    def describe(self) -> str:
        return (
            f"{self.tier.name}: relief={self.relief_s * 1e6:.1f}us "
            f"paid={self.paid_s * 1e6:.1f}us"
        )


def _representative_leg(system: "DMXSystem", app_index: int) -> LegSpec:
    """The chain's first motion stage, bound to its *current* card."""
    from dataclasses import replace

    chain = system.chains[app_index]
    for stage_index, stage in enumerate(chain.stages):
        if not isinstance(stage, MotionStage):
            continue
        src = system._accel_names[(app_index, stage_index - 1)]
        dst = system._accel_names[(app_index, stage_index + 1)]
        drx_name = system.card_of_app(app_index)
        drx = system.drx_devices[drx_name]
        if SCRATCHPAD_FUSION:
            fused = replace(
                stage.profile,
                bytes_in=stage.input_bytes,
                bytes_out=stage.output_bytes,
            )
        else:
            fused = stage.profile
        return LegSpec(
            mode=system.config.mode, src=src, dst=dst, staging=drx_name,
            stage=stage, fused=fused, threads=stage.cpu_threads, drx=drx,
        )
    raise ValueError(f"chain {chain.name!r} has no motion stage to price")


class TierCostModel:
    """Price the brownout tiers on live backend estimates.

    ``shed_fraction`` (the load share belonging to sheddable tenants)
    and the per-chain queue estimates are re-read at every evaluation,
    so bids track the run: a migration that drains a hot card's queue
    immediately lowers FORCE_CPU's relief (there is less queueing left
    to dodge), and the model de-escalates on the next update.
    """

    def __init__(
        self,
        system: "DMXSystem",
        shed_cost_weight: float,
        coalesce_relief_fraction: float,
        coalesce_cost_s: float,
        energy_cost_s_per_j: float,
        max_tier: BrownoutTier,
    ):
        self.system = system
        self.shed_cost_weight = shed_cost_weight
        self.coalesce_relief_fraction = coalesce_relief_fraction
        self.coalesce_cost_s = coalesce_cost_s
        self.energy_cost_s_per_j = energy_cost_s_per_j
        self.max_tier = max_tier
        # Reuse the armed planner's backends when present (their
        # queue_weight matches what dispatch actually pays); otherwise
        # build bare ones — both price without touching the sim.
        planner = system.planner
        if planner is not None and "drx" in planner.backends:
            self._drx = planner.backends["drx"]
        else:
            self._drx = DRXBackend(system)
        if planner is not None:
            self._cpu = planner.backends["cpu"]
        else:
            self._cpu = CPUBackend(system)

    def bids(self, slo_s: float, shed_fraction: float) -> List[TierBid]:
        """Current bids for every actionable tier, in tier order."""
        legs = [
            _representative_leg(self.system, app_index)
            for app_index in range(len(self.system.chains))
        ]
        n = len(legs)
        drx_ests = [self._drx.estimate(leg) for leg in legs]
        cpu_ests = [self._cpu.estimate(leg) for leg in legs]
        queue_s = sum(e.queue_s for e in drx_ests) / n
        drx_service = sum(e.service_s for e in drx_ests) / n
        cpu_total = sum(e.total_s for e in cpu_ests) / n
        energy_delta = max(
            0.0,
            sum(e.energy_j for e in cpu_ests) / n
            - sum(e.energy_j for e in drx_ests) / n,
        )
        bids = [
            # Shedding removes the sheddable tenants' share of the
            # queueing pressure; its price is the goodput destroyed,
            # converted to latency units via the configured weight.
            TierBid(
                tier=BrownoutTier.SHED_LOW,
                relief_s=shed_fraction * queue_s,
                paid_s=self.shed_cost_weight * shed_fraction * slo_s,
            ),
            # Coalescing amortizes the control path (descriptor chains,
            # doorbells, one completion ISR): a configured fraction of
            # the queueing pressure, paid for in formation delay.
            TierBid(
                tier=BrownoutTier.COALESCE,
                relief_s=self.coalesce_relief_fraction * queue_s,
                paid_s=self.coalesce_cost_s,
            ),
            # Host restructuring dodges the DRX queue entirely, but the
            # service-time gap is *signed*: when the CPU path is slower
            # than DRX service (the usual case), forcing it is net harm
            # unless the dodged queue exceeds the slowdown. An unsigned
            # gap here once made FORCE_CPU look mildly helpful under any
            # backlog, and the controller pinned every request onto the
            # slow host path.
            TierBid(
                tier=BrownoutTier.FORCE_CPU,
                relief_s=queue_s + (drx_service - cpu_total),
                paid_s=max(0.0, cpu_total - drx_service)
                + self.energy_cost_s_per_j * energy_delta,
            ),
        ]
        return [b for b in bids if b.tier <= self.max_tier]

    def choose(
        self, tail_s: float, slo_s: float, target_fraction: float,
        shed_fraction: float,
    ) -> "tuple[BrownoutTier, List[TierBid]]":
        """The cheapest tier whose relief covers the overshoot.

        ``needed = tail - target_fraction * slo``; non-positive means
        the system is inside its headroom target and NORMAL suffices.
        When no tier's relief covers the overshoot, the biggest-relief
        tier wins (cheapest among ties) — degrade as far as the ladder
        can usefully go rather than giving up.
        """
        bids = self.bids(slo_s, shed_fraction)
        needed = tail_s - target_fraction * slo_s
        if needed <= 0.0:
            return BrownoutTier.NORMAL, bids
        sufficient = [b for b in bids if b.relief_s >= needed]
        if sufficient:
            best = min(sufficient, key=lambda b: (b.paid_s, int(b.tier)))
            return best.tier, bids
        best = max(bids, key=lambda b: (b.relief_s, -b.paid_s, -int(b.tier)))
        return best.tier, bids
