"""DRX microarchitecture timing model (Sec. IV-B, Fig. 6).

The DRX is a decoupled access-execute machine: the Off-chip Data Access
Engine streams tiles between DDR4 and the scratchpads while the
Restructuring Engine lanes compute — so steady-state time is the *max*
of the memory stream time and the compute time, not their sum. The
Instruction Repeater removes branch overhead, and the strided address
calculator removes address arithmetic, so compute cycles are just
``lane-operations / lanes``.

Two entry points produce latencies:

* :meth:`DRXTimingModel.time_from_stats` — cycle-accurate-ish timing for
  a program executed on the functional simulator;
* :meth:`DRXTimingModel.time_for_profile` — analytical timing for a
  :class:`~repro.profiles.WorkProfile`, used by the system-level DES
  (same formula, volume taken from the profile).

Defaults follow the paper's evaluated configuration: 128 RE lanes,
64 KB instruction cache, 64 KB scratchpad, one DDR4-3200 channel
(~25 GB/s, chosen to match an x8 PCIe Gen 4 link), 250 MHz on FPGA and
1 GHz as ASIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from ..profiles import WorkProfile
from ..sim import Server, Simulator
from .functional import ExecutionStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import SpanContext

__all__ = ["DRXConfig", "DRXTimingModel", "DRXDevice", "DEFAULT_DRX"]


@dataclass(frozen=True)
class DRXConfig:
    """Static DRX hardware configuration (the compiler's arch file)."""

    lanes: int = 128
    frequency_hz: float = 1e9  # ASIC; FPGA prototype runs at 250 MHz
    scratchpad_bytes: int = 64 * 1024
    icache_bytes: int = 64 * 1024
    dram_bandwidth: float = 25e9  # one DDR4-3200 channel, B/s
    dram_bytes: int = 8 * 1024**3
    n_banks: int = 16
    compute_efficiency: float = 0.9  # achieved fraction of peak lane thruput
    # Fraction of CPU-scalar work that stays scalar on DRX. The DRX
    # compiler vectorizes most control-flow-bound restructuring (compare +
    # select predication, strided-address gathers) that defeats CPU
    # auto-vectorization; the residual runs in DRX scalar mode.
    scalar_residual: float = 0.1
    kernel_launch_overhead_s: float = 2e-6  # program load + SYNC pair
    transpose_throughput_elems_per_cycle: Optional[int] = None  # default: lanes
    power_w: float = 12.0  # DRX card power while restructuring

    def __post_init__(self) -> None:
        if self.lanes <= 0 or self.frequency_hz <= 0:
            raise ValueError("lanes and frequency must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if self.dram_bandwidth <= 0:
            raise ValueError("dram_bandwidth must be positive")
        if self.power_w <= 0:
            raise ValueError("power must be positive")

    @property
    def effective_lane_rate(self) -> float:
        """Lane-operations per second the RE array sustains."""
        return self.lanes * self.frequency_hz * self.compute_efficiency


DEFAULT_DRX = DRXConfig()


class DRXTimingModel:
    """Latency estimation for restructuring work on a DRX."""

    def __init__(self, config: DRXConfig = DEFAULT_DRX):
        self.config = config

    def time_from_stats(self, stats: ExecutionStats) -> float:
        """Latency of a functionally-executed program.

        Decoupled access-execute: overlap memory streaming with compute;
        loop iterations cost one Instruction Repeater cycle each.
        """
        cfg = self.config
        transpose_rate = cfg.transpose_throughput_elems_per_cycle or cfg.lanes
        compute_cycles = (
            stats.vector_ops / (cfg.lanes * cfg.compute_efficiency)
            + stats.transpose_elements / transpose_rate
            + stats.loop_iterations
            + stats.dynamic_instructions * 0.05  # issue overhead
        )
        compute_time = compute_cycles / cfg.frequency_hz
        memory_time = stats.bytes_total / cfg.dram_bandwidth
        return cfg.kernel_launch_overhead_s + max(compute_time, memory_time)

    def time_for_profile(self, profile: WorkProfile) -> float:
        """Analytical latency for a work profile (system-model path).

        Most of the CPU-scalar fraction vectorizes under the DRX compiler
        (predication + strided addressing); the residual runs in DRX
        scalar mode ("turns off all but one REs"). Gathers are free for
        DRX — the programmable strided address calculator and scratchpads
        are exactly the hardware the paper adds to beat the CPU's cache
        hierarchy.
        """
        cfg = self.config
        scalar_ops = (
            profile.total_ops
            * (1.0 - profile.vectorizable_fraction)
            * cfg.scalar_residual
        )
        vec_ops = profile.total_ops - scalar_ops
        compute_time = (
            vec_ops / cfg.effective_lane_rate
            + scalar_ops / (cfg.frequency_hz * cfg.compute_efficiency)
        )
        memory_time = profile.total_bytes / cfg.dram_bandwidth
        return cfg.kernel_launch_overhead_s + max(compute_time, memory_time)

    def time_for_profile_batch(self, profiles: "list[WorkProfile]") -> float:
        """Analytical latency for a coalesced batch of restructuring jobs.

        A batched submission loads one program and pays one SYNC pair
        (``kernel_launch_overhead_s``) for the whole batch; each member's
        data-dependent work (the ``max(compute, memory)`` steady state)
        still runs in full. This is the amortized-setup model the serve
        layer's :class:`~repro.serve.batching.BatchFormer` buys.
        """
        if not profiles:
            raise ValueError("batch needs at least one profile")
        launch = self.config.kernel_launch_overhead_s
        return launch + sum(
            self.time_for_profile(p) - launch for p in profiles
        )

    def bound_for_profile(self, profile: WorkProfile) -> str:
        """Which side of the roofline binds: "compute" or "memory"."""
        cfg = self.config
        scalar_ops = (
            profile.total_ops
            * (1.0 - profile.vectorizable_fraction)
            * cfg.scalar_residual
        )
        vec_ops = profile.total_ops - scalar_ops
        compute_time = (
            vec_ops / cfg.effective_lane_rate
            + scalar_ops / (cfg.frequency_hz * cfg.compute_efficiency)
        )
        memory_time = profile.total_bytes / cfg.dram_bandwidth
        return "compute" if compute_time >= memory_time else "memory"


class DRXDevice:
    """DES occupancy model of one DRX unit.

    One restructuring kernel executes at a time; concurrent jobs queue —
    the shared-DRX contention that differentiates Integrated/Standalone
    placements from Bump-in-the-Wire.
    """

    def __init__(
        self,
        sim: Simulator,
        config: DRXConfig = DEFAULT_DRX,
        name: str = "drx",
    ):
        self.sim = sim
        self.config = config
        self.name = name
        self.timing = DRXTimingModel(config)
        self._server = Server(sim, capacity=1, name=name)
        self.jobs_completed = 0
        self.busy_seconds = 0.0

    def restructure(
        self,
        profile: WorkProfile,
        ctx: Optional["SpanContext"] = None,
    ) -> Generator:
        """Process: run one restructuring job on this DRX unit.

        ``ctx`` attaches a "drx" span; its ``queued_s`` attribute is the
        time the job waited behind other jobs on this unit (the shared-DRX
        contention signal).
        """
        duration = self.timing.time_for_profile(profile)
        start = self.sim.now
        span = (
            ctx.begin(self.name, "drx", actor=self.name, service_s=duration)
            if ctx is not None
            else None
        )
        try:
            yield from self._server.transfer(duration)
        except BaseException as exc:
            if span is not None:
                ctx.end(span, abandoned=True, error=type(exc).__name__)
            raise
        self.jobs_completed += 1
        self.busy_seconds += duration
        elapsed = self.sim.now - start
        if span is not None:
            ctx.end(span, queued_s=elapsed - duration)
        return elapsed

    def restructure_batch(
        self,
        profiles: "list[WorkProfile]",
        ctx: Optional["SpanContext"] = None,
    ) -> Generator:
        """Process: run a coalesced batch of restructuring jobs as ONE
        occupancy of this DRX unit.

        The batch holds the unit for
        :meth:`DRXTimingModel.time_for_profile_batch` — one program load +
        SYNC pair amortized over all members — and counts every member in
        ``jobs_completed``. A single-member batch is identical to
        :meth:`restructure`.
        """
        duration = self.timing.time_for_profile_batch(profiles)
        start = self.sim.now
        span = (
            ctx.begin(
                self.name, "drx", actor=self.name, service_s=duration,
                batch=len(profiles),
            )
            if ctx is not None
            else None
        )
        try:
            yield from self._server.transfer(duration)
        except BaseException as exc:
            if span is not None:
                ctx.end(span, abandoned=True, error=type(exc).__name__)
            raise
        self.jobs_completed += len(profiles)
        self.busy_seconds += duration
        elapsed = self.sim.now - start
        if span is not None:
            ctx.end(span, queued_s=elapsed - duration)
        return elapsed

    def utilization(self) -> float:
        return self._server.utilization()
