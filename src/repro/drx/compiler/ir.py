"""DRX compiler intermediate representation.

The DRX compiler (Sec. IV-B) "takes two inputs: a high-level
representation of the data restructuring kernel and an architecture
configuration file", maps the kernel to an IR, optimizes tiling against
the hardware configuration, and emits DRX ISA instructions.

This IR models restructuring kernels as a short sequence of dataflow
statements over named flat buffers:

* :class:`Elementwise` — a chain of per-element primitives applied while
  streaming one buffer to another (the dominant restructuring shape);
* :class:`MatMul` — dense projection (mel filterbank, feature maps);
* :class:`Transpose2D` — materialized layout pivot;
* :class:`Cast` — dtype conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "BufferDecl",
    "Primitive",
    "Elementwise",
    "ElementwiseBinary",
    "MatMul",
    "Transpose2D",
    "Cast",
    "Kernel",
    "IRError",
    "Statement",
]


class IRError(ValueError):
    """Raised for malformed kernel IR."""


@dataclass(frozen=True)
class BufferDecl:
    """A named DRAM buffer the kernel reads or writes."""

    name: str
    n_elements: int
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.n_elements <= 0:
            raise IRError(f"buffer {self.name!r} must have elements")
        np.dtype(self.dtype)  # validates

    @property
    def nbytes(self) -> int:
        return self.n_elements * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class Primitive:
    """One per-element primitive in an elementwise chain.

    ``op`` maps directly onto a vector opcode: "add", "sub", "mul",
    "div", "max", "min" (with ``imm``), or "sqrt", "exp", "log1p",
    "abs", "sqr", "round" (unary).
    """

    op: str
    imm: Optional[float] = None

    _IMMEDIATE = frozenset({"add", "sub", "mul", "div", "max", "min"})
    _UNARY = frozenset({"sqrt", "exp", "log1p", "abs", "sqr", "round"})

    def __post_init__(self) -> None:
        if self.op in self._IMMEDIATE:
            if self.imm is None:
                raise IRError(f"primitive {self.op!r} needs an immediate")
        elif self.op in self._UNARY:
            if self.imm is not None:
                raise IRError(f"primitive {self.op!r} takes no immediate")
        else:
            raise IRError(f"unknown primitive {self.op!r}")


@dataclass(frozen=True)
class Elementwise:
    """``dst[i] = chain(src[i])`` for every element."""

    src: str
    dst: str
    chain: Tuple[Primitive, ...] = ()


@dataclass(frozen=True)
class ElementwiseBinary:
    """``dst[i] = op(src_a[i], src_b[i])`` for every element."""

    src_a: str
    src_b: str
    dst: str
    op: str

    _OPS = frozenset({"add", "sub", "mul", "div", "max", "min"})

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise IRError(f"unknown binary op {self.op!r}")


@dataclass(frozen=True)
class MatMul:
    """``dst[M,N] = a[M,K] @ b[K,N]`` over flat row-major buffers."""

    a: str
    b: str
    dst: str
    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise IRError("MatMul dimensions must be positive")


@dataclass(frozen=True)
class Transpose2D:
    """``dst[cols,rows] = src[rows,cols]^T`` over flat row-major buffers."""

    src: str
    dst: str
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise IRError("Transpose2D dimensions must be positive")


@dataclass(frozen=True)
class Cast:
    """``dst[i] = dtype(src[i])``."""

    src: str
    dst: str
    dtype: str

    def __post_init__(self) -> None:
        np.dtype(self.dtype)


Statement = Union[Elementwise, ElementwiseBinary, MatMul, Transpose2D, Cast]


@dataclass
class Kernel:
    """A complete restructuring kernel: buffers + statement list."""

    name: str
    buffers: List[BufferDecl] = field(default_factory=list)
    statements: List[Statement] = field(default_factory=list)

    def buffer(self, name: str) -> BufferDecl:
        for decl in self.buffers:
            if decl.name == name:
                return decl
        raise IRError(f"kernel {self.name!r} has no buffer {name!r}")

    def validate(self) -> None:
        """Check statement/buffer consistency before codegen."""
        if not self.statements:
            raise IRError(f"kernel {self.name!r} has no statements")
        names = {b.name for b in self.buffers}
        if len(names) != len(self.buffers):
            raise IRError(f"kernel {self.name!r} has duplicate buffer names")
        for statement in self.statements:
            if isinstance(statement, Elementwise):
                refs = [statement.src, statement.dst]
                if self.buffer(statement.src).n_elements != self.buffer(
                    statement.dst
                ).n_elements:
                    raise IRError(
                        f"{self.name}: elementwise src/dst sizes differ"
                    )
            elif isinstance(statement, ElementwiseBinary):
                refs = [statement.src_a, statement.src_b, statement.dst]
                sizes = {self.buffer(r).n_elements for r in refs}
                if len(sizes) != 1:
                    raise IRError(
                        f"{self.name}: binary elementwise sizes differ"
                    )
            elif isinstance(statement, MatMul):
                refs = [statement.a, statement.b, statement.dst]
                if self.buffer(statement.a).n_elements != statement.m * statement.k:
                    raise IRError(f"{self.name}: matmul A size mismatch")
                if self.buffer(statement.b).n_elements != statement.k * statement.n:
                    raise IRError(f"{self.name}: matmul B size mismatch")
                if self.buffer(statement.dst).n_elements != (
                    statement.m * statement.n
                ):
                    raise IRError(f"{self.name}: matmul C size mismatch")
            elif isinstance(statement, Transpose2D):
                refs = [statement.src, statement.dst]
                expected = statement.rows * statement.cols
                for ref in refs:
                    if self.buffer(ref).n_elements != expected:
                        raise IRError(
                            f"{self.name}: transpose buffer size mismatch"
                        )
            elif isinstance(statement, Cast):
                refs = [statement.src, statement.dst]
                if self.buffer(statement.src).n_elements != self.buffer(
                    statement.dst
                ).n_elements:
                    raise IRError(f"{self.name}: cast src/dst sizes differ")
            else:  # pragma: no cover - exhaustive
                raise IRError(f"unknown statement {statement!r}")
            for ref in refs:
                if ref not in names:
                    raise IRError(
                        f"{self.name}: statement references unknown buffer "
                        f"{ref!r}"
                    )
