"""DRX code generation: kernel IR → tiled instruction streams.

The compiler's optimization pass is tiling: every statement is blocked
so its live tiles fit the configured scratchpad (with headroom for
double buffering), loop counts feed the Instruction Repeater, and
``<Base, Stride, Iteration>`` affine addresses feed the strided address
calculators — no pack/unpack or branch instructions are emitted, per the
paper's ISA design.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa import AddressExpr, Instruction, Opcode, Program, ProgramError
from ..microarch import DRXConfig, DEFAULT_DRX
from .ir import (
    Cast,
    Elementwise,
    ElementwiseBinary,
    IRError,
    Kernel,
    MatMul,
    Primitive,
    Transpose2D,
)

__all__ = ["DRXCompiler", "choose_tile"]

_BINARY_TO_OPCODE = {
    "add": Opcode.VADD,
    "sub": Opcode.VSUB,
    "mul": Opcode.VMUL,
    "div": Opcode.VDIV,
    "max": Opcode.VMAX,
    "min": Opcode.VMIN,
}

_PRIMITIVE_TO_OPCODE = {
    "add": Opcode.VADDI,
    "sub": Opcode.VSUBI,
    "mul": Opcode.VMULI,
    "div": Opcode.VDIVI,
    "max": Opcode.VMAXI,
    "min": Opcode.VMINI,
    "sqrt": Opcode.VSQRT,
    "exp": Opcode.VEXP,
    "log1p": Opcode.VLOG1P,
    "abs": Opcode.VABS,
    "sqr": Opcode.VSQR,
    "round": Opcode.VROUND,
}


def choose_tile(
    n_elements: int,
    element_size: int,
    config: DRXConfig,
    live_tiles: int = 2,
    headroom: float = 0.5,
) -> int:
    """Largest lane-aligned tile such that ``live_tiles`` tiles fit.

    ``headroom`` reserves scratchpad space for double buffering (the
    access engine prefetches the next tile while the REs compute).
    """
    if n_elements <= 0:
        raise IRError("cannot tile an empty buffer")
    budget = int(config.scratchpad_bytes * headroom) // max(1, live_tiles)
    max_tile = max(config.lanes, budget // element_size)
    # Lane-align, then clamp to the problem size.
    tile = (max_tile // config.lanes) * config.lanes
    tile = max(config.lanes, tile)
    return min(tile, n_elements)


class DRXCompiler:
    """Compile validated kernels against a hardware configuration."""

    def __init__(self, config: DRXConfig = DEFAULT_DRX):
        self.config = config

    def compile(self, kernel: Kernel) -> Program:
        """Produce a validated, SYNC-bracketed instruction stream."""
        kernel.validate()
        instructions: List[Instruction] = [Instruction(Opcode.SYNC_START)]
        for statement in kernel.statements:
            if isinstance(statement, Elementwise):
                instructions += self._elementwise(kernel, statement)
            elif isinstance(statement, ElementwiseBinary):
                instructions += self._elementwise_binary(kernel, statement)
            elif isinstance(statement, Cast):
                instructions += self._cast(kernel, statement)
            elif isinstance(statement, MatMul):
                instructions += self._matmul(kernel, statement)
            elif isinstance(statement, Transpose2D):
                instructions += self._transpose(kernel, statement)
            else:  # pragma: no cover - exhaustive
                raise IRError(f"unsupported statement {statement!r}")
        instructions.append(Instruction(Opcode.SYNC_END))
        program = Program(instructions=instructions, name=kernel.name)
        program.validate(self.config.n_banks)
        return program

    # -- per-statement lowering ---------------------------------------------------

    def _streaming_blocks(self, total: int, element_size: int,
                          live_tiles: int) -> List[tuple]:
        """(base, tile_len, n_tiles) blocks covering ``total`` elements."""
        tile = choose_tile(total, element_size, self.config, live_tiles)
        full = total // tile
        blocks = []
        if full:
            blocks.append((0, tile, full))
        tail = total - full * tile
        if tail:
            blocks.append((full * tile, tail, 1))
        return blocks

    def _elementwise(self, kernel: Kernel, stmt: Elementwise) -> List[Instruction]:
        total = kernel.buffer(stmt.src).n_elements
        element_size = np.dtype(kernel.buffer(stmt.src).dtype).itemsize
        out: List[Instruction] = []
        for base, tile, n_tiles in self._streaming_blocks(total, element_size, 2):
            body: List[Instruction] = [
                Instruction(
                    Opcode.LD,
                    dst=0,
                    addr=AddressExpr(stmt.src, base=base, strides=(tile,)),
                    count=tile,
                )
            ]
            bank = 0
            for prim in stmt.chain:
                opcode = _PRIMITIVE_TO_OPCODE[prim.op]
                if prim.imm is not None:
                    body.append(
                        Instruction(opcode, dst=1, src=bank, imm=prim.imm)
                    )
                else:
                    body.append(Instruction(opcode, dst=1, src=bank))
                bank = 1
            body.append(
                Instruction(
                    Opcode.ST,
                    addr=AddressExpr(stmt.dst, base=base, strides=(tile,)),
                    src=bank,
                    count=tile,
                )
            )
            out.append(Instruction(Opcode.LOOP, count=n_tiles))
            out += body
            out.append(Instruction(Opcode.ENDLOOP))
        return out

    def _elementwise_binary(
        self, kernel: Kernel, stmt: ElementwiseBinary
    ) -> List[Instruction]:
        total = kernel.buffer(stmt.src_a).n_elements
        element_size = np.dtype(kernel.buffer(stmt.src_a).dtype).itemsize
        opcode = _BINARY_TO_OPCODE[stmt.op]
        out: List[Instruction] = []
        for base, tile, n_tiles in self._streaming_blocks(total, element_size, 3):
            out.append(Instruction(Opcode.LOOP, count=n_tiles))
            out.append(
                Instruction(
                    Opcode.LD, dst=0,
                    addr=AddressExpr(stmt.src_a, base=base, strides=(tile,)),
                    count=tile,
                )
            )
            out.append(
                Instruction(
                    Opcode.LD, dst=1,
                    addr=AddressExpr(stmt.src_b, base=base, strides=(tile,)),
                    count=tile,
                )
            )
            out.append(Instruction(opcode, dst=2, src=0, src2=1))
            out.append(
                Instruction(
                    Opcode.ST,
                    addr=AddressExpr(stmt.dst, base=base, strides=(tile,)),
                    src=2,
                    count=tile,
                )
            )
            out.append(Instruction(Opcode.ENDLOOP))
        return out

    def _cast(self, kernel: Kernel, stmt: Cast) -> List[Instruction]:
        total = kernel.buffer(stmt.src).n_elements
        element_size = max(
            np.dtype(kernel.buffer(stmt.src).dtype).itemsize,
            np.dtype(stmt.dtype).itemsize,
        )
        out: List[Instruction] = []
        for base, tile, n_tiles in self._streaming_blocks(total, element_size, 2):
            out.append(Instruction(Opcode.LOOP, count=n_tiles))
            out.append(
                Instruction(
                    Opcode.LD,
                    dst=0,
                    addr=AddressExpr(stmt.src, base=base, strides=(tile,)),
                    count=tile,
                )
            )
            out.append(Instruction(Opcode.VCVT, dst=1, src=0, dtype=stmt.dtype))
            out.append(
                Instruction(
                    Opcode.ST,
                    addr=AddressExpr(stmt.dst, base=base, strides=(tile,)),
                    src=1,
                    count=tile,
                )
            )
            out.append(Instruction(Opcode.ENDLOOP))
        return out

    def _matmul(self, kernel: Kernel, stmt: MatMul) -> List[Instruction]:
        """C[m, :] = sum_k A[m, k] * B[k, :], accumulator tiled over N."""
        m, k, n = stmt.m, stmt.k, stmt.n
        element_size = np.dtype(kernel.buffer(stmt.dst).dtype).itemsize
        # Live tiles: accumulator, broadcast scalar, B row tile.
        n_tile = choose_tile(n, element_size, self.config, live_tiles=3)
        out: List[Instruction] = []
        n_full = n // n_tile
        tail = n - n_full * n_tile

        def emit_block(n_base: int, width: int, n_blocks: int) -> None:
            # Loop order: m (rows), then n-blocks, then k (reduction).
            out.append(Instruction(Opcode.LOOP, count=m))
            out.append(Instruction(Opcode.LOOP, count=n_blocks))
            out.append(Instruction(Opcode.VSET, dst=2, imm=0.0, count=width))
            out.append(Instruction(Opcode.LOOP, count=k))
            # A[m, k]: one element; strides over (m, n-block, k).
            out.append(
                Instruction(
                    Opcode.LD,
                    dst=0,
                    addr=AddressExpr(stmt.a, base=0, strides=(k, 0, 1)),
                    count=1,
                )
            )
            out.append(Instruction(Opcode.VBCAST, dst=1, src=0, count=width))
            # B[k, n_base + block*width : +width].
            out.append(
                Instruction(
                    Opcode.LD,
                    dst=3,
                    addr=AddressExpr(
                        stmt.b, base=n_base, strides=(0, width, n)
                    ),
                    count=width,
                )
            )
            out.append(Instruction(Opcode.VMAC, dst=2, src=1, src2=3))
            out.append(Instruction(Opcode.ENDLOOP))
            out.append(
                Instruction(
                    Opcode.ST,
                    addr=AddressExpr(stmt.dst, base=n_base, strides=(n, width)),
                    src=2,
                    count=width,
                )
            )
            out.append(Instruction(Opcode.ENDLOOP))
            out.append(Instruction(Opcode.ENDLOOP))

        if n_full:
            emit_block(0, n_tile, n_full)
        if tail:
            emit_block(n_full * n_tile, tail, 1)
        return out

    def _transpose(self, kernel: Kernel, stmt: Transpose2D) -> List[Instruction]:
        """Row-block tiling: load R rows, transpose, store column slices."""
        rows, cols = stmt.rows, stmt.cols
        element_size = np.dtype(kernel.buffer(stmt.src).dtype).itemsize
        # Two live tiles of R*cols elements each.
        budget = int(self.config.scratchpad_bytes * 0.5) // 2 // element_size
        r_block = max(1, min(rows, budget // cols))
        out: List[Instruction] = []
        n_full = rows // r_block
        tail = rows - n_full * r_block

        def emit_block(row_base: int, height: int, n_blocks: int) -> None:
            out.append(Instruction(Opcode.LOOP, count=n_blocks))
            out.append(
                Instruction(
                    Opcode.LD,
                    dst=0,
                    addr=AddressExpr(
                        stmt.src, base=row_base * cols, strides=(height * cols,)
                    ),
                    count=height * cols,
                )
            )
            out.append(
                Instruction(Opcode.TRANS, dst=1, src=0, rows=height, cols=cols)
            )
            # v1 is (cols, height): store column c at dst[c*rows + row_base].
            out.append(Instruction(Opcode.LOOP, count=cols))
            out.append(
                Instruction(
                    Opcode.ST,
                    addr=AddressExpr(
                        stmt.dst, base=row_base, strides=(height, rows)
                    ),
                    src=1,
                    bank_addr=AddressExpr("bank", base=0, strides=(0, height)),
                    count=height,
                )
            )
            out.append(Instruction(Opcode.ENDLOOP))
            out.append(Instruction(Opcode.ENDLOOP))

        if n_full:
            emit_block(0, r_block, n_full)
        if tail:
            emit_block(n_full * r_block, tail, 1)
        return out
