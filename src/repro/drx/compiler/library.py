"""Prebuilt DRX kernel IR for the benchmark restructuring operations.

Each builder returns a :class:`~repro.drx.compiler.ir.Kernel` whose
functional execution on the DRX simulator matches the corresponding
numpy restructuring op — the cross-check tests assert exact agreement.
Buffer naming convention: inputs first, output last.
"""

from __future__ import annotations

from .ir import (
    BufferDecl,
    Cast,
    Elementwise,
    ElementwiseBinary,
    Kernel,
    MatMul,
    Primitive,
    Transpose2D,
)

__all__ = [
    "normalize_kernel",
    "quantize_kernel",
    "typecast_kernel",
    "power_spectrum_kernel",
    "log_compress_kernel",
    "transpose_kernel",
    "mel_projection_kernel",
    "sound_motion_kernel",
    "image_tensor_kernel",
    "columnar_pivot_kernel",
]


def normalize_kernel(n: int, offset: float, scale: float) -> Kernel:
    """``out = (in - offset) / scale`` (the Normalize restructuring op)."""
    return Kernel(
        name="normalize",
        buffers=[
            BufferDecl("in", n, "float32"),
            BufferDecl("out", n, "float32"),
        ],
        statements=[
            Elementwise(
                "in",
                "out",
                chain=(
                    Primitive("sub", offset),
                    Primitive("div", scale),
                ),
            )
        ],
    )


def quantize_kernel(n: int, scale: float) -> Kernel:
    """fp32 → int8 affine quantization with clipping."""
    return Kernel(
        name="quantize-int8",
        buffers=[
            BufferDecl("in", n, "float32"),
            BufferDecl("scaled", n, "float32"),
            BufferDecl("out", n, "int8"),
        ],
        statements=[
            Elementwise(
                "in",
                "scaled",
                chain=(
                    Primitive("div", scale),
                    Primitive("round"),
                    Primitive("min", 127.0),
                    Primitive("max", -128.0),
                ),
            ),
            Cast("scaled", "out", "int8"),
        ],
    )


def typecast_kernel(n: int, src_dtype: str, dst_dtype: str) -> Kernel:
    """Pure dtype conversion (ubiquitous "typecasting" step)."""
    return Kernel(
        name=f"typecast-{src_dtype}-to-{dst_dtype}",
        buffers=[
            BufferDecl("in", n, src_dtype),
            BufferDecl("out", n, dst_dtype),
        ],
        statements=[Cast("in", "out", dst_dtype)],
    )


def power_spectrum_kernel(n: int) -> Kernel:
    """``power = re^2 + im^2`` from split complex FFT output."""
    return Kernel(
        name="power-spectrum",
        buffers=[
            BufferDecl("re", n, "float32"),
            BufferDecl("im", n, "float32"),
            BufferDecl("re2", n, "float32"),
            BufferDecl("im2", n, "float32"),
            BufferDecl("out", n, "float32"),
        ],
        statements=[
            Elementwise("re", "re2", chain=(Primitive("sqr"),)),
            Elementwise("im", "im2", chain=(Primitive("sqr"),)),
            ElementwiseBinary("re2", "im2", "out", "add"),
        ],
    )


def log_compress_kernel(n: int) -> Kernel:
    """``out = log1p(in)`` dynamic-range compression."""
    return Kernel(
        name="log-compress",
        buffers=[
            BufferDecl("in", n, "float32"),
            BufferDecl("out", n, "float32"),
        ],
        statements=[Elementwise("in", "out", chain=(Primitive("log1p"),))],
    )


def transpose_kernel(rows: int, cols: int, dtype: str = "float32") -> Kernel:
    """Materialized 2-D transpose (spectrogram assembly, layout pivots)."""
    return Kernel(
        name=f"transpose-{rows}x{cols}",
        buffers=[
            BufferDecl("in", rows * cols, dtype),
            BufferDecl("out", rows * cols, dtype),
        ],
        statements=[Transpose2D("in", "out", rows, cols)],
    )


def mel_projection_kernel(n_mels: int, n_bins: int, n_frames: int) -> Kernel:
    """``mel[n_mels, frames] = bank[n_mels, bins] @ spec[bins, frames]``."""
    return Kernel(
        name="mel-projection",
        buffers=[
            BufferDecl("bank", n_mels * n_bins, "float32"),
            BufferDecl("spec", n_bins * n_frames, "float32"),
            BufferDecl("out", n_mels * n_frames, "float32"),
        ],
        statements=[
            MatMul("bank", "spec", "out", m=n_mels, k=n_bins, n=n_frames)
        ],
    )


def image_tensor_kernel(height: int, width: int, mean: float = 127.5,
                        scale: float = 127.5) -> Kernel:
    """HWC uint8 image → normalized planar CHW fp32 (ImageToTensor on DRX).

    Cast to fp32, affine-normalize, then pivot the (H*W, C) interleaved
    layout to (C, H*W) planar with the Transposition Engine.
    """
    n = height * width * 3
    return Kernel(
        name="image-to-tensor",
        buffers=[
            BufferDecl("in", n, "uint8"),
            BufferDecl("as_float", n, "float32"),
            BufferDecl("normalized", n, "float32"),
            BufferDecl("out", n, "float32"),
        ],
        statements=[
            Cast("in", "as_float", "float32"),
            Elementwise(
                "as_float",
                "normalized",
                chain=(Primitive("sub", mean), Primitive("div", scale)),
            ),
            # Interleaved (H*W rows of C) -> planar (C rows of H*W).
            Transpose2D("normalized", "out", rows=height * width, cols=3),
        ],
    )


def columnar_pivot_kernel(n_rows: int, n_cols: int) -> Kernel:
    """Row-major int32 table → columnar layout (RowsToColumnar on DRX).

    The row→column pivot is exactly a (rows, cols) transpose over the
    int32 fields — the Transposition Engine's home turf.
    """
    n = n_rows * n_cols
    return Kernel(
        name="columnar-pivot",
        buffers=[
            BufferDecl("in", n, "int32"),
            BufferDecl("out", n, "int32"),
        ],
        statements=[Transpose2D("in", "out", rows=n_rows, cols=n_cols)],
    )


def sound_motion_kernel(n_frames: int, n_bins: int, n_mels: int) -> Kernel:
    """The full Sound Detection data-motion kernel (Fig. 2) on DRX.

    FFT output (split re/im, ``(frames, bins)`` row-major) → power →
    spectrogram transpose → mel projection → log compression. The mel
    filterbank arrives as an input buffer (precomputed on the host at
    context-creation time, like any other kernel constant).
    """
    n = n_frames * n_bins
    return Kernel(
        name="sound-detection-motion",
        buffers=[
            BufferDecl("re", n, "float32"),
            BufferDecl("im", n, "float32"),
            BufferDecl("bank", n_mels * n_bins, "float32"),
            BufferDecl("re2", n, "float32"),
            BufferDecl("im2", n, "float32"),
            BufferDecl("power", n, "float32"),
            BufferDecl("spectrogram", n, "float32"),
            BufferDecl("mel", n_mels * n_frames, "float32"),
            BufferDecl("out", n_mels * n_frames, "float32"),
        ],
        statements=[
            Elementwise("re", "re2", chain=(Primitive("sqr"),)),
            Elementwise("im", "im2", chain=(Primitive("sqr"),)),
            ElementwiseBinary("re2", "im2", "power", "add"),
            Transpose2D("power", "spectrogram", rows=n_frames, cols=n_bins),
            MatMul("bank", "spectrogram", "mel",
                   m=n_mels, k=n_bins, n=n_frames),
            Elementwise("mel", "out", chain=(Primitive("log1p"),)),
        ],
    )
