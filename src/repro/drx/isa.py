"""DRX instruction set architecture (Sec. IV-B, Fig. 7).

The DRX ISA departs from conventional SIMD in three ways the paper calls
out, all reflected here:

* **memory** — no vector register file / cache hierarchy; instructions
  move tiles between off-chip DRAM and software-managed on-chip
  scratchpad banks via the Off-chip Data Access Engine;
* **loops** — hardware loops (the Instruction Repeater) replace branch
  instructions: ``LOOP n ... ENDLOOP`` repeats a body with a loop index
  available for strided address calculation;
* **addressing** — memory operands carry ``<Base, Stride, Iteration>``
  style affine addresses over the enclosing loop indices (the Strided
  Scratchpad Address Calculator), eliminating pack/unpack instructions.

Instruction classes: loop (``LOOP``/``ENDLOOP``), off-chip access
(``LD``/``ST``), compute (``V*`` vector ops, ``TRANS`` for the
Transposition Engine), synchronization (``SYNC``), and scalar support
(``SSET``, ``HALT``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Opcode",
    "AddressExpr",
    "Instruction",
    "Program",
    "ProgramError",
    "VECTOR_OPCODES",
    "UNARY_OPCODES",
    "BINARY_OPCODES",
    "IMMEDIATE_OPCODES",
]


class ProgramError(ValueError):
    """Raised for malformed DRX programs."""


class Opcode(enum.Enum):
    """Every DRX instruction opcode."""

    # Loop instructions (Instruction Repeater).
    LOOP = "LOOP"
    ENDLOOP = "ENDLOOP"
    # Off-chip Data Access Engine.
    LD = "LD"
    ST = "ST"
    # Vector compute (Restructuring Engines).
    VADD = "VADD"
    VSUB = "VSUB"
    VMUL = "VMUL"
    VDIV = "VDIV"
    VMAX = "VMAX"
    VMIN = "VMIN"
    VMAC = "VMAC"
    VADDI = "VADDI"
    VSUBI = "VSUBI"
    VMULI = "VMULI"
    VDIVI = "VDIVI"
    VMAXI = "VMAXI"
    VMINI = "VMINI"
    VSQRT = "VSQRT"
    VEXP = "VEXP"
    VLOG1P = "VLOG1P"
    VABS = "VABS"
    VSQR = "VSQR"
    VROUND = "VROUND"
    VMOV = "VMOV"
    VSET = "VSET"
    VBCAST = "VBCAST"
    VCVT = "VCVT"
    VRED = "VRED"
    # Transposition Engine.
    TRANS = "TRANS"
    # Synchronization.
    SYNC_START = "SYNC.START"
    SYNC_END = "SYNC.END"
    # Scalar support.
    SSET = "SSET"
    HALT = "HALT"


BINARY_OPCODES = frozenset(
    {Opcode.VADD, Opcode.VSUB, Opcode.VMUL, Opcode.VDIV, Opcode.VMAX,
     Opcode.VMIN, Opcode.VMAC}
)
IMMEDIATE_OPCODES = frozenset(
    {Opcode.VADDI, Opcode.VSUBI, Opcode.VMULI, Opcode.VDIVI, Opcode.VMAXI,
     Opcode.VMINI, Opcode.VSET}
)
UNARY_OPCODES = frozenset(
    {Opcode.VSQRT, Opcode.VEXP, Opcode.VLOG1P, Opcode.VABS, Opcode.VSQR,
     Opcode.VROUND, Opcode.VMOV}
)
VECTOR_OPCODES = BINARY_OPCODES | IMMEDIATE_OPCODES | UNARY_OPCODES | {
    Opcode.VCVT, Opcode.VRED, Opcode.VBCAST,
}


@dataclass(frozen=True)
class AddressExpr:
    """Affine DRAM address: ``base + sum(loop_index[l] * strides[l])``.

    ``strides`` aligns with enclosing loops, outermost first; shorter
    tuples leave inner loops unused. All units are *elements*, not bytes.
    """

    buffer: str
    base: int = 0
    strides: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.buffer:
            raise ProgramError("address requires a buffer name")
        if self.base < 0:
            raise ProgramError(f"negative base offset {self.base}")

    def resolve(self, loop_indices: Sequence[int]) -> int:
        """Concrete element offset for the current loop indices."""
        if len(self.strides) > len(loop_indices):
            raise ProgramError(
                f"address uses {len(self.strides)} loop dims but only "
                f"{len(loop_indices)} loops are live"
            )
        offset = self.base
        for stride, index in zip(self.strides, loop_indices):
            offset += stride * index
        return offset

    def format(self) -> str:
        strides = "".join(f",{s:+d}" for s in self.strides)
        return f"{self.buffer}[{self.base}{strides}]"


@dataclass(frozen=True)
class Instruction:
    """One DRX instruction.

    Fields are opcode-dependent; :meth:`validate` enforces the shape.

    ==========  ==============================================================
    opcode      operands used
    ==========  ==============================================================
    LOOP        ``count``
    ENDLOOP     (none)
    LD          ``dst`` (bank), ``addr``, ``count``
    ST          ``src`` (bank), ``addr``, ``count``
                [+ ``bank_addr``: affine offset *within* the source bank,
                for storing a slice of a tile (transpose tiling)]
    V binary    ``dst``, ``src`` (a), ``src2`` (b)
    V immediate ``dst``, ``src``, ``imm``
    V unary     ``dst``, ``src``
    VSET        ``dst``, ``imm``, ``count`` (tile fill)
    VBCAST      ``dst``, ``src``, ``count`` (broadcast src[0])
    VCVT        ``dst``, ``src``, ``dtype``
    VRED        ``dst``, ``src``, ``reduce_op`` ("sum"|"max"|"min")
    TRANS       ``dst``, ``src``, ``rows``, ``cols``
    SYNC.*      (none)
    SSET        ``dst`` (scalar reg id), ``imm``
    HALT        (none)
    ==========  ==============================================================
    """

    opcode: Opcode
    dst: Optional[int] = None
    src: Optional[int] = None
    src2: Optional[int] = None
    imm: Optional[float] = None
    addr: Optional[AddressExpr] = None
    bank_addr: Optional[AddressExpr] = None
    count: Optional[int] = None
    rows: Optional[int] = None
    cols: Optional[int] = None
    dtype: Optional[str] = None
    reduce_op: Optional[str] = None

    def validate(self, n_banks: int) -> None:
        """Raise :class:`ProgramError` on operand-shape violations."""
        op = self.opcode

        def need_bank(value, role):
            if value is None or not 0 <= value < n_banks:
                raise ProgramError(f"{op.value}: {role} bank {value!r} invalid")

        if op == Opcode.LOOP:
            if self.count is None or self.count <= 0:
                raise ProgramError(f"LOOP count must be positive, got {self.count}")
        elif op in (Opcode.LD, Opcode.ST):
            bank = self.dst if op == Opcode.LD else self.src
            need_bank(bank, "data")
            if self.addr is None:
                raise ProgramError(f"{op.value}: missing address")
            if self.count is None or self.count <= 0:
                raise ProgramError(f"{op.value}: count must be positive")
        elif op in BINARY_OPCODES:
            need_bank(self.dst, "dst")
            need_bank(self.src, "src")
            need_bank(self.src2, "src2")
        elif op in IMMEDIATE_OPCODES:
            need_bank(self.dst, "dst")
            if op != Opcode.VSET:
                need_bank(self.src, "src")
            if self.imm is None:
                raise ProgramError(f"{op.value}: missing immediate")
        elif op == Opcode.VBCAST:
            need_bank(self.dst, "dst")
            need_bank(self.src, "src")
            if self.count is None or self.count <= 0:
                raise ProgramError("VBCAST: count must be positive")
        elif op in UNARY_OPCODES:
            need_bank(self.dst, "dst")
            need_bank(self.src, "src")
        elif op == Opcode.VCVT:
            need_bank(self.dst, "dst")
            need_bank(self.src, "src")
            if self.dtype is None:
                raise ProgramError("VCVT: missing dtype")
            np.dtype(self.dtype)  # raises TypeError if unknown
        elif op == Opcode.VRED:
            need_bank(self.dst, "dst")
            need_bank(self.src, "src")
            if self.reduce_op not in ("sum", "max", "min"):
                raise ProgramError(f"VRED: bad reduce op {self.reduce_op!r}")
        elif op == Opcode.TRANS:
            need_bank(self.dst, "dst")
            need_bank(self.src, "src")
            if not self.rows or not self.cols or self.rows <= 0 or self.cols <= 0:
                raise ProgramError("TRANS: rows/cols must be positive")
        elif op == Opcode.SSET:
            if self.dst is None or self.dst < 0:
                raise ProgramError("SSET: bad scalar register")
            if self.imm is None:
                raise ProgramError("SSET: missing immediate")
        elif op in (Opcode.ENDLOOP, Opcode.SYNC_START, Opcode.SYNC_END,
                    Opcode.HALT):
            pass
        else:  # pragma: no cover - exhaustive
            raise ProgramError(f"unknown opcode {op!r}")


@dataclass
class Program:
    """A validated DRX instruction stream.

    Programs must be bracketed by ``SYNC.START`` / ``SYNC.END`` (the
    paper: "synchronization instructions are issued at the start and the
    end of the instruction stream").
    """

    instructions: List[Instruction] = field(default_factory=list)
    name: str = "drx-kernel"

    def validate(self, n_banks: int = 16) -> None:
        if not self.instructions:
            raise ProgramError(f"{self.name}: empty program")
        if self.instructions[0].opcode != Opcode.SYNC_START:
            raise ProgramError(f"{self.name}: must begin with SYNC.START")
        if self.instructions[-1].opcode != Opcode.SYNC_END:
            raise ProgramError(f"{self.name}: must end with SYNC.END")
        depth = 0
        for instr in self.instructions:
            instr.validate(n_banks)
            if instr.opcode == Opcode.LOOP:
                depth += 1
            elif instr.opcode == Opcode.ENDLOOP:
                depth -= 1
                if depth < 0:
                    raise ProgramError(f"{self.name}: unbalanced ENDLOOP")
        if depth != 0:
            raise ProgramError(f"{self.name}: {depth} unterminated LOOPs")

    def __len__(self) -> int:
        return len(self.instructions)

    def counts(self) -> dict:
        """Static instruction histogram by class (compiler statistics)."""
        out = {"loop": 0, "memory": 0, "compute": 0, "sync": 0, "other": 0}
        for instr in self.instructions:
            if instr.opcode in (Opcode.LOOP, Opcode.ENDLOOP):
                out["loop"] += 1
            elif instr.opcode in (Opcode.LD, Opcode.ST):
                out["memory"] += 1
            elif instr.opcode in VECTOR_OPCODES or instr.opcode == Opcode.TRANS:
                out["compute"] += 1
            elif instr.opcode in (Opcode.SYNC_START, Opcode.SYNC_END):
                out["sync"] += 1
            else:
                out["other"] += 1
        return out
