"""DRX RX/TX data queues (Sec. V, Fig. 9).

Each DRX's 8 GB device memory is statically partitioned into RX/TX data
queue pairs — one pair per peer accelerator for direct DRX↔accelerator
traffic and one pair per peer DRX. Each RX/TX *pair* is 100 MB (so each
queue is 50 MB); two pairs per accelerator in the system bound it to
8 GB / 200 MB = 40 accelerators per server, the paper's provisioning.
The driver tracks head/tail pointers per queue; a point-to-point DMA
moves payloads between queue buffers and accelerator memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["DataQueue", "QueuePartition", "QueueFullError",
           "QUEUE_BYTES", "QUEUE_PAIR_BYTES", "DRX_MEMORY_BYTES",
           "MAX_ACCELERATORS"]

QUEUE_PAIR_BYTES = 100 * 1024 * 1024
QUEUE_BYTES = QUEUE_PAIR_BYTES // 2
DRX_MEMORY_BYTES = 8 * 1024**3


def _max_accelerators(memory_bytes: int = DRX_MEMORY_BYTES,
                      pair_bytes: int = QUEUE_PAIR_BYTES) -> int:
    """Accelerator budget: 2 pairs (accel pair + DRX-DRX pair) per peer."""
    return memory_bytes // (2 * pair_bytes)


MAX_ACCELERATORS = _max_accelerators()


class QueueFullError(RuntimeError):
    """Raised when an enqueue would exceed a data queue's capacity."""


@dataclass
class DataQueue:
    """A circular buffer with head/tail pointers (driver-visible state)."""

    name: str
    capacity_bytes: int = QUEUE_BYTES
    head: int = 0  # total bytes dequeued
    tail: int = 0  # total bytes enqueued
    entries: List[Tuple[int, int]] = field(default_factory=list)  # (offset, size)

    @property
    def used_bytes(self) -> int:
        return self.tail - self.head

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def enqueue(self, nbytes: int) -> int:
        """Reserve space for a payload; returns its offset token."""
        if nbytes <= 0:
            raise ValueError(f"payload size must be positive, got {nbytes}")
        if nbytes > self.free_bytes:
            raise QueueFullError(
                f"{self.name}: {nbytes} B requested, {self.free_bytes} B free"
            )
        offset = self.tail
        self.tail += nbytes
        self.entries.append((offset, nbytes))
        return offset

    def dequeue(self) -> Tuple[int, int]:
        """Release the oldest payload; returns ``(offset, size)``."""
        if not self.entries:
            raise IndexError(f"{self.name}: dequeue from empty queue")
        offset, size = self.entries.pop(0)
        self.head += size
        return offset, size

    def __len__(self) -> int:
        return len(self.entries)


class QueuePartition:
    """Static partition of one DRX's memory into per-peer queue pairs.

    Peers are discovered at PCIe enumeration time (Sec. V): the driver
    learns the accelerator and DRX population and carves two RX/TX pairs
    per peer out of device memory.
    """

    def __init__(
        self,
        drx_name: str,
        accelerator_peers: List[str],
        drx_peers: Optional[List[str]] = None,
        memory_bytes: int = DRX_MEMORY_BYTES,
        queue_bytes: int = QUEUE_BYTES,
    ):
        drx_peers = drx_peers or []
        total_peers = len(accelerator_peers) + len(drx_peers)
        needed = total_peers * 2 * queue_bytes
        if needed > memory_bytes:
            raise MemoryError(
                f"{drx_name}: {total_peers} peers need {needed} B of queue "
                f"space but only {memory_bytes} B are provisioned"
            )
        self.drx_name = drx_name
        self.queue_bytes = queue_bytes
        self.rx: Dict[str, DataQueue] = {}
        self.tx: Dict[str, DataQueue] = {}
        for peer in list(accelerator_peers) + list(drx_peers):
            self.rx[peer] = DataQueue(f"{drx_name}.rx[{peer}]", queue_bytes)
            self.tx[peer] = DataQueue(f"{drx_name}.tx[{peer}]", queue_bytes)

    def rx_for(self, peer: str) -> DataQueue:
        if peer not in self.rx:
            raise KeyError(f"{self.drx_name}: no RX queue for peer {peer!r}")
        return self.rx[peer]

    def tx_for(self, peer: str) -> DataQueue:
        if peer not in self.tx:
            raise KeyError(f"{self.drx_name}: no TX queue for peer {peer!r}")
        return self.tx[peer]

    @property
    def peers(self) -> List[str]:
        return list(self.rx)
