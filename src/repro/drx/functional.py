"""Functional DRX simulator: executes programs on real data.

The simulator models the architecture of Fig. 6 functionally:

* **DRAM** — named numpy buffers (the DRX's 8 GB DDR4 device memory,
  where RX/TX data queues live);
* **scratchpad banks** — a fixed number of software-managed tile
  registers with a total byte capacity (64 KB default);
* **Restructuring Engines** — elementwise vector ops over banks;
* **Transposition Engine** — tile transposes;
* **Instruction Repeater** — hardware loops with loop indices feeding
  the strided address calculator.

Execution also produces a :class:`ExecutionStats` record (dynamic
instruction counts, bytes moved, vector operations) that the timing
model converts to cycles, so functional runs and timing are derived from
the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .isa import (
    BINARY_OPCODES,
    IMMEDIATE_OPCODES,
    UNARY_OPCODES,
    AddressExpr,
    Instruction,
    Opcode,
    Program,
    ProgramError,
)

__all__ = ["DRXMemory", "ExecutionStats", "FunctionalDRX"]

_BINARY_FUNCS = {
    Opcode.VADD: np.add,
    Opcode.VSUB: np.subtract,
    Opcode.VMUL: np.multiply,
    Opcode.VDIV: np.divide,
    Opcode.VMAX: np.maximum,
    Opcode.VMIN: np.minimum,
}
_IMMEDIATE_FUNCS = {
    Opcode.VADDI: np.add,
    Opcode.VSUBI: np.subtract,
    Opcode.VMULI: np.multiply,
    Opcode.VDIVI: np.divide,
    Opcode.VMAXI: np.maximum,
    Opcode.VMINI: np.minimum,
}
_UNARY_FUNCS = {
    Opcode.VSQRT: np.sqrt,
    Opcode.VEXP: np.exp,
    Opcode.VLOG1P: np.log1p,
    Opcode.VABS: np.abs,
    Opcode.VSQR: np.square,
    Opcode.VROUND: np.round,
    Opcode.VMOV: np.copy,
}


class DRXMemory:
    """Named DRAM buffers on the DRX card (flat element arrays)."""

    def __init__(self, capacity_bytes: int = 8 * 1024**3):
        self.capacity_bytes = capacity_bytes
        self._buffers: Dict[str, np.ndarray] = {}

    def bind(self, name: str, data: np.ndarray) -> None:
        """Attach an input/output buffer (stored flat, dtype preserved)."""
        flat = np.ascontiguousarray(data).reshape(-1)
        used = sum(b.nbytes for b in self._buffers.values())
        if used + flat.nbytes > self.capacity_bytes:
            raise MemoryError(
                f"binding {name!r} ({flat.nbytes} B) exceeds DRX DRAM capacity"
            )
        self._buffers[name] = flat.copy()

    def allocate(self, name: str, n_elements: int, dtype) -> None:
        """Create a zeroed output buffer."""
        self.bind(name, np.zeros(n_elements, dtype=dtype))

    def read(self, name: str) -> np.ndarray:
        if name not in self._buffers:
            raise KeyError(f"no DRAM buffer named {name!r}")
        return self._buffers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._buffers


@dataclass
class ExecutionStats:
    """Dynamic execution trace summary of one program run."""

    dynamic_instructions: int = 0
    vector_ops: int = 0  # elementwise lane-operations issued
    transpose_elements: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    loop_iterations: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_loaded + self.bytes_stored


class FunctionalDRX:
    """Executes a validated :class:`Program` against a :class:`DRXMemory`.

    Parameters
    ----------
    memory:
        The card's DRAM buffers.
    n_banks:
        Scratchpad banks (tile registers).
    scratchpad_bytes:
        Total on-chip scratchpad capacity; a tile set exceeding it is a
        program bug and raises.
    """

    def __init__(
        self,
        memory: DRXMemory,
        n_banks: int = 16,
        scratchpad_bytes: int = 64 * 1024,
    ):
        self.memory = memory
        self.n_banks = n_banks
        self.scratchpad_bytes = scratchpad_bytes
        self.banks: List[Optional[np.ndarray]] = [None] * n_banks
        self.scalar_regs: Dict[int, float] = {}
        self.stats = ExecutionStats()

    # -- helpers ---------------------------------------------------------------

    def _bank(self, index: int) -> np.ndarray:
        value = self.banks[index]
        if value is None:
            raise ProgramError(f"read of uninitialized scratchpad bank v{index}")
        return value

    def _check_scratchpad(self) -> None:
        used = sum(b.nbytes for b in self.banks if b is not None)
        if used > self.scratchpad_bytes:
            raise ProgramError(
                f"scratchpad overflow: {used} B used, "
                f"{self.scratchpad_bytes} B available"
            )

    def _resolve(self, addr: AddressExpr, indices: List[int]) -> int:
        return addr.resolve(indices)

    # -- execution ---------------------------------------------------------------

    def execute(self, program: Program) -> ExecutionStats:
        """Run the program to completion; returns execution statistics."""
        program.validate(self.n_banks)
        self.stats = ExecutionStats()
        self._run_block(program.instructions, 0, len(program.instructions), [])
        return self.stats

    def _find_matching_endloop(self, instrs, start: int, end: int) -> int:
        depth = 0
        for pc in range(start, end):
            if instrs[pc].opcode == Opcode.LOOP:
                depth += 1
            elif instrs[pc].opcode == Opcode.ENDLOOP:
                depth -= 1
                if depth == 0:
                    return pc
        raise ProgramError("LOOP without matching ENDLOOP")

    def _run_block(self, instrs, start: int, end: int, indices: List[int]) -> None:
        pc = start
        while pc < end:
            instr = instrs[pc]
            if instr.opcode == Opcode.LOOP:
                end_pc = self._find_matching_endloop(instrs, pc, end)
                for iteration in range(instr.count):
                    self.stats.loop_iterations += 1
                    self._run_block(instrs, pc + 1, end_pc, indices + [iteration])
                pc = end_pc + 1
                continue
            self._step(instr, indices)
            pc += 1

    def _step(self, instr: Instruction, indices: List[int]) -> None:
        self.stats.dynamic_instructions += 1
        op = instr.opcode

        if op in (Opcode.SYNC_START, Opcode.SYNC_END, Opcode.HALT,
                  Opcode.ENDLOOP):
            return

        if op == Opcode.SSET:
            self.scalar_regs[instr.dst] = instr.imm
            return

        if op == Opcode.LD:
            buffer = self.memory.read(instr.addr.buffer)
            offset = self._resolve(instr.addr, indices)
            if offset + instr.count > len(buffer):
                raise ProgramError(
                    f"LD out of bounds: {instr.addr.buffer}[{offset}:"
                    f"{offset + instr.count}] of {len(buffer)}"
                )
            self.banks[instr.dst] = buffer[offset : offset + instr.count].copy()
            self.stats.bytes_loaded += int(self.banks[instr.dst].nbytes)
            self._check_scratchpad()
            return

        if op == Opcode.ST:
            buffer = self.memory.read(instr.addr.buffer)
            offset = self._resolve(instr.addr, indices)
            tile = self._bank(instr.src)
            if instr.bank_addr is not None:
                bank_offset = instr.bank_addr.resolve(indices)
                if bank_offset + instr.count > len(tile):
                    raise ProgramError(
                        f"ST bank slice [{bank_offset}:{bank_offset + instr.count}]"
                        f" exceeds tile length {len(tile)}"
                    )
                tile = tile[bank_offset : bank_offset + instr.count]
            elif instr.count != len(tile):
                raise ProgramError(
                    f"ST count {instr.count} != tile length {len(tile)}"
                )
            if offset + instr.count > len(buffer):
                raise ProgramError(
                    f"ST out of bounds: {instr.addr.buffer}[{offset}:"
                    f"{offset + instr.count}] of {len(buffer)}"
                )
            buffer[offset : offset + instr.count] = tile.astype(buffer.dtype)
            self.stats.bytes_stored += int(tile.nbytes)
            return

        if op in BINARY_OPCODES:
            a = self._bank(instr.src)
            if op == Opcode.VMAC:
                acc = self._bank(instr.dst)
                b = self._bank(instr.src2)
                if not (len(a) == len(b) == len(acc)):
                    raise ProgramError("VMAC tile length mismatch")
                self.banks[instr.dst] = acc + a * b
            else:
                b = self._bank(instr.src2)
                if len(a) != len(b):
                    raise ProgramError(f"{op.value} tile length mismatch")
                self.banks[instr.dst] = _BINARY_FUNCS[op](a, b)
            self.stats.vector_ops += len(a)
            self._check_scratchpad()
            return

        if op == Opcode.VSET:
            # Fill a tile with an immediate. Explicit count when given;
            # otherwise the destination's current tile length (or 1).
            if instr.count is not None:
                length = instr.count
            else:
                current = self.banks[instr.dst]
                length = len(current) if current is not None else 1
            self.banks[instr.dst] = np.full(length, instr.imm, dtype=np.float32)
            self.stats.vector_ops += length
            self._check_scratchpad()
            return

        if op == Opcode.VBCAST:
            source = self._bank(instr.src)
            self.banks[instr.dst] = np.full(
                instr.count, source[0], dtype=source.dtype
            )
            self.stats.vector_ops += instr.count
            self._check_scratchpad()
            return

        if op in IMMEDIATE_OPCODES:
            a = self._bank(instr.src)
            self.banks[instr.dst] = _IMMEDIATE_FUNCS[op](a, instr.imm)
            self.stats.vector_ops += len(a)
            return

        if op in UNARY_OPCODES:
            a = self._bank(instr.src)
            self.banks[instr.dst] = _UNARY_FUNCS[op](a)
            self.stats.vector_ops += len(a)
            return

        if op == Opcode.VCVT:
            a = self._bank(instr.src)
            self.banks[instr.dst] = a.astype(np.dtype(instr.dtype))
            self.stats.vector_ops += len(a)
            self._check_scratchpad()
            return

        if op == Opcode.VRED:
            a = self._bank(instr.src)
            func = {"sum": np.sum, "max": np.max, "min": np.min}[instr.reduce_op]
            self.banks[instr.dst] = np.asarray([func(a)], dtype=a.dtype)
            self.stats.vector_ops += len(a)
            return

        if op == Opcode.TRANS:
            a = self._bank(instr.src)
            if len(a) != instr.rows * instr.cols:
                raise ProgramError(
                    f"TRANS tile length {len(a)} != {instr.rows}x{instr.cols}"
                )
            self.banks[instr.dst] = np.ascontiguousarray(
                a.reshape(instr.rows, instr.cols).T
            ).reshape(-1)
            self.stats.transpose_elements += len(a)
            return

        raise ProgramError(f"unhandled opcode {op!r}")  # pragma: no cover
