"""DRX assembler: text ↔ :class:`~repro.drx.isa.Program`.

A human-readable assembly syntax (what Fig. 8's "sample of the DRX
kernel" looks like in this reproduction):

.. code-block:: text

    ; mel-scale inner tile
    SYNC.START
    LOOP 16
      LD    v0, in[0,+512], 512
      VMULI v1, v0, 0.5
      ST    out[0,+512], v1, 512
    ENDLOOP
    SYNC.END

Addresses are ``buffer[base,+stride0,+stride1,...]`` with one stride per
enclosing loop (outermost first). Comments start with ``;``. Bank
operands are ``v<N>``; scalar registers ``s<N>``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .isa import (
    BINARY_OPCODES,
    IMMEDIATE_OPCODES,
    UNARY_OPCODES,
    AddressExpr,
    Instruction,
    Opcode,
    Program,
    ProgramError,
)

__all__ = ["assemble", "disassemble"]


def _parse_bank(token: str) -> int:
    token = token.strip().rstrip(",")
    if not token.startswith("v"):
        raise ProgramError(f"expected bank operand, got {token!r}")
    try:
        return int(token[1:])
    except ValueError:
        raise ProgramError(f"bad bank operand {token!r}")


def _parse_address(token: str) -> AddressExpr:
    token = token.strip().rstrip(",")
    if "[" not in token or not token.endswith("]"):
        raise ProgramError(f"bad address {token!r}")
    buffer, inner = token[:-1].split("[", 1)
    parts = inner.split(",")
    try:
        base = int(parts[0])
        strides = tuple(int(p) for p in parts[1:])
    except ValueError:
        raise ProgramError(f"bad address arithmetic in {token!r}")
    return AddressExpr(buffer=buffer, base=base, strides=strides)


def _split_operands(rest: str) -> List[str]:
    # Commas inside [...] belong to the address expression.
    out: List[str] = []
    depth = 0
    current = ""
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            out.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        out.append(current.strip())
    return out


def assemble(text: str, name: str = "drx-kernel") -> Program:
    """Parse assembly text into a validated :class:`Program`."""
    instructions: List[Instruction] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.upper()
        operands = _split_operands(rest) if rest.strip() else []
        try:
            instructions.append(_assemble_one(mnemonic, operands))
        except ProgramError as exc:
            raise ProgramError(f"line {line_no}: {exc}") from None
    program = Program(instructions=instructions, name=name)
    program.validate()
    return program


def _assemble_one(mnemonic: str, operands: List[str]) -> Instruction:
    try:
        opcode = Opcode(mnemonic)
    except ValueError:
        raise ProgramError(f"unknown mnemonic {mnemonic!r}")

    if opcode == Opcode.LOOP:
        if len(operands) != 1:
            raise ProgramError("LOOP takes one count operand")
        return Instruction(opcode, count=int(operands[0]))
    if opcode in (Opcode.ENDLOOP, Opcode.SYNC_START, Opcode.SYNC_END,
                  Opcode.HALT):
        if operands:
            raise ProgramError(f"{mnemonic} takes no operands")
        return Instruction(opcode)
    if opcode == Opcode.LD:
        if len(operands) != 3:
            raise ProgramError("LD takes: dst_bank, address, count")
        return Instruction(
            opcode,
            dst=_parse_bank(operands[0]),
            addr=_parse_address(operands[1]),
            count=int(operands[2]),
        )
    if opcode == Opcode.ST:
        if len(operands) != 3:
            raise ProgramError("ST takes: address, src_bank[slice], count")
        src_token = operands[1]
        bank_addr = None
        if "[" in src_token:
            bank_index = _parse_bank(src_token.split("[", 1)[0])
            slice_expr = _parse_address("bank" + src_token[src_token.index("[") :])
            bank_addr = slice_expr
        else:
            bank_index = _parse_bank(src_token)
        return Instruction(
            opcode,
            addr=_parse_address(operands[0]),
            src=bank_index,
            bank_addr=bank_addr,
            count=int(operands[2]),
        )
    if opcode in BINARY_OPCODES:
        if len(operands) != 3:
            raise ProgramError(f"{mnemonic} takes: dst, srcA, srcB")
        return Instruction(
            opcode,
            dst=_parse_bank(operands[0]),
            src=_parse_bank(operands[1]),
            src2=_parse_bank(operands[2]),
        )
    if opcode == Opcode.VSET:
        if len(operands) not in (2, 3):
            raise ProgramError("VSET takes: dst, imm [, count]")
        count = int(operands[2]) if len(operands) == 3 else None
        return Instruction(opcode, dst=_parse_bank(operands[0]),
                           imm=float(operands[1]), count=count)
    if opcode == Opcode.VBCAST:
        if len(operands) != 3:
            raise ProgramError("VBCAST takes: dst, src, count")
        return Instruction(
            opcode,
            dst=_parse_bank(operands[0]),
            src=_parse_bank(operands[1]),
            count=int(operands[2]),
        )
    if opcode in IMMEDIATE_OPCODES:
        if len(operands) != 3:
            raise ProgramError(f"{mnemonic} takes: dst, src, imm")
        return Instruction(
            opcode,
            dst=_parse_bank(operands[0]),
            src=_parse_bank(operands[1]),
            imm=float(operands[2]),
        )
    if opcode in UNARY_OPCODES:
        if len(operands) != 2:
            raise ProgramError(f"{mnemonic} takes: dst, src")
        return Instruction(opcode, dst=_parse_bank(operands[0]),
                           src=_parse_bank(operands[1]))
    if opcode == Opcode.VCVT:
        if len(operands) != 3:
            raise ProgramError("VCVT takes: dst, src, dtype")
        return Instruction(
            opcode,
            dst=_parse_bank(operands[0]),
            src=_parse_bank(operands[1]),
            dtype=operands[2],
        )
    if opcode == Opcode.VRED:
        if len(operands) != 3:
            raise ProgramError("VRED takes: dst, src, op")
        return Instruction(
            opcode,
            dst=_parse_bank(operands[0]),
            src=_parse_bank(operands[1]),
            reduce_op=operands[2],
        )
    if opcode == Opcode.TRANS:
        if len(operands) != 4:
            raise ProgramError("TRANS takes: dst, src, rows, cols")
        return Instruction(
            opcode,
            dst=_parse_bank(operands[0]),
            src=_parse_bank(operands[1]),
            rows=int(operands[2]),
            cols=int(operands[3]),
        )
    if opcode == Opcode.SSET:
        if len(operands) != 2:
            raise ProgramError("SSET takes: sreg, imm")
        reg = operands[0]
        if not reg.startswith("s"):
            raise ProgramError(f"expected scalar register, got {reg!r}")
        return Instruction(opcode, dst=int(reg[1:]), imm=float(operands[1]))
    raise ProgramError(f"unhandled mnemonic {mnemonic!r}")  # pragma: no cover


def disassemble(program: Program) -> str:
    """Format a program back to assembly text (round-trips with assemble)."""
    lines: List[str] = []
    indent = 0
    for instr in program.instructions:
        op = instr.opcode
        if op == Opcode.ENDLOOP:
            indent -= 1
        pad = "  " * max(0, indent)
        if op == Opcode.LOOP:
            lines.append(f"{pad}LOOP {instr.count}")
            indent += 1
        elif op in (Opcode.ENDLOOP, Opcode.SYNC_START, Opcode.SYNC_END,
                    Opcode.HALT):
            lines.append(f"{pad}{op.value}")
        elif op == Opcode.LD:
            lines.append(
                f"{pad}LD v{instr.dst}, {instr.addr.format()}, {instr.count}"
            )
        elif op == Opcode.ST:
            src = f"v{instr.src}"
            if instr.bank_addr is not None:
                slice_expr = instr.bank_addr.format()
                src += slice_expr[slice_expr.index("[") :]
            lines.append(f"{pad}ST {instr.addr.format()}, {src}, {instr.count}")
        elif op in BINARY_OPCODES:
            lines.append(
                f"{pad}{op.value} v{instr.dst}, v{instr.src}, v{instr.src2}"
            )
        elif op == Opcode.VSET:
            suffix = f", {instr.count}" if instr.count is not None else ""
            lines.append(f"{pad}VSET v{instr.dst}, {instr.imm}{suffix}")
        elif op == Opcode.VBCAST:
            lines.append(
                f"{pad}VBCAST v{instr.dst}, v{instr.src}, {instr.count}"
            )
        elif op in IMMEDIATE_OPCODES:
            lines.append(
                f"{pad}{op.value} v{instr.dst}, v{instr.src}, {instr.imm}"
            )
        elif op in UNARY_OPCODES:
            lines.append(f"{pad}{op.value} v{instr.dst}, v{instr.src}")
        elif op == Opcode.VCVT:
            lines.append(
                f"{pad}VCVT v{instr.dst}, v{instr.src}, {instr.dtype}"
            )
        elif op == Opcode.VRED:
            lines.append(
                f"{pad}VRED v{instr.dst}, v{instr.src}, {instr.reduce_op}"
            )
        elif op == Opcode.TRANS:
            lines.append(
                f"{pad}TRANS v{instr.dst}, v{instr.src}, {instr.rows}, "
                f"{instr.cols}"
            )
        elif op == Opcode.SSET:
            lines.append(f"{pad}SSET s{instr.dst}, {instr.imm}")
    return "\n".join(lines)
