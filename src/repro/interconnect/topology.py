"""PCIe fabric topology: root complex, switches, endpoint devices.

The fabric is a tree (standard PCIe): the root complex (CPU socket) at the
top, switches below it, endpoints (accelerators, DRXs, standalone DRX
cards) at the leaves. Every edge is a :class:`~repro.interconnect.pcie.PCIeLink`.

Routing is the unique tree path. A transfer crosses each link on the path
in sequence (store-and-forward) and pays the switch port-to-port latency
(110 ns per the PEX switch datasheet figure the paper cites) at every
switch it traverses. Peer-to-peer transfers between two endpoints under
the same switch therefore never touch the shared upstream link — the
mechanism behind Bump-in-the-Wire DRX's scaling advantage.

Bump-in-the-wire DRXs additionally sit on an *internal multiplexer* with
their host accelerator: accelerator↔local-DRX traffic uses a dedicated
:class:`PCIeLink` that bypasses the switch entirely (Fig. 10 step 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..sim import Simulator
from .pcie import LinkConfig, PCIeLink

__all__ = ["Node", "Fabric", "SWITCH_PORT_LATENCY_S"]

# Port-to-port latency tax through a PCIe switch (Sec. VII-B cites 110 ns).
SWITCH_PORT_LATENCY_S = 110e-9


@dataclass
class Node:
    """A vertex in the PCIe tree."""

    name: str
    kind: str  # "root" | "switch" | "endpoint"
    parent: Optional["Node"] = None
    uplink: Optional[PCIeLink] = None  # link to parent
    children: List["Node"] = field(default_factory=list)
    mux_peers: Dict[str, PCIeLink] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.name)

    def ancestors(self) -> List["Node"]:
        out = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out


class Fabric:
    """Builds and routes over a PCIe tree.

    Example
    -------
    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> fabric = Fabric(sim)
    >>> sw = fabric.add_switch("sw0")
    >>> a = fabric.add_endpoint("accel0", sw)
    >>> b = fabric.add_endpoint("accel1", sw)
    >>> [l.name for l in fabric.path("accel0", "accel1")[0]]
    ['accel0.up', 'accel1.up']
    """

    def __init__(
        self,
        sim: Simulator,
        link_config: Optional[LinkConfig] = None,
        upstream_config: Optional[LinkConfig] = None,
        switch_latency_s: float = SWITCH_PORT_LATENCY_S,
    ):
        self.sim = sim
        self.link_config = link_config or LinkConfig()
        # The upstream port of a switch uses a single x8 link (Sec. VII-B).
        self.upstream_config = upstream_config or self.link_config
        self.switch_latency_s = switch_latency_s
        self.root = Node("root", "root")
        self.nodes: Dict[str, Node] = {"root": self.root}
        self.links: List[PCIeLink] = []
        # Optional fault hook: when set (a repro.faults.FaultInjector),
        # every transfer consults the "fabric" site before acquiring links.
        self.injector = None

    # -- construction --------------------------------------------------------

    def _add_node(
        self, name: str, kind: str, parent: Node, config: LinkConfig
    ) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name!r}")
        link = PCIeLink(self.sim, config, name=f"{name}.up")
        node = Node(name, kind, parent=parent, uplink=link)
        parent.children.append(node)
        self.nodes[name] = node
        self.links.append(link)
        return node

    def add_switch(self, name: str, parent: Optional[Node] = None) -> Node:
        """Attach a switch under ``parent`` (root by default)."""
        return self._add_node(name, "switch", parent or self.root, self.upstream_config)

    def add_endpoint(
        self,
        name: str,
        parent: Node,
        config: Optional[LinkConfig] = None,
    ) -> Node:
        """Attach an endpoint device under a switch (or the root)."""
        if parent.kind == "endpoint":
            raise ValueError(f"cannot attach under endpoint {parent.name!r}")
        return self._add_node(name, "endpoint", parent, config or self.link_config)

    def add_inline(
        self,
        name: str,
        host: str,
        mux_config: Optional[LinkConfig] = None,
    ) -> Node:
        """Attach a bump-in-the-wire device in front of endpoint ``host``.

        The inline device sits *on* the host's uplink wire: traffic
        between it and the rest of the fabric shares the host's physical
        link, while device↔host traffic uses a private internal
        multiplexer that never reaches the switch (Fig. 10 step 10).
        """
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name!r}")
        host_node = self.nodes[host]
        if host_node.kind != "endpoint":
            raise ValueError(f"inline device must front an endpoint, not "
                             f"{host_node.kind}")
        node = Node(name, "endpoint", parent=host_node.parent,
                    uplink=host_node.uplink)
        host_node.parent.children.append(node)
        self.nodes[name] = node
        self.add_mux_pair(name, host, mux_config)
        return node

    def add_mux_pair(
        self,
        a: str,
        b: str,
        config: Optional[LinkConfig] = None,
    ) -> PCIeLink:
        """Create a bump-in-the-wire internal multiplexer between two endpoints.

        Transfers between the pair use this private link and skip the
        switch path entirely.
        """
        node_a, node_b = self.nodes[a], self.nodes[b]
        link = PCIeLink(self.sim, config or self.link_config, name=f"{a}<->{b}.mux")
        node_a.mux_peers[b] = link
        node_b.mux_peers[a] = link
        self.links.append(link)
        return link

    def endpoints(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind == "endpoint"]

    # -- routing -------------------------------------------------------------

    def path(self, src: str, dst: str) -> Tuple[List[PCIeLink], int]:
        """Links crossed and switches traversed from ``src`` to ``dst``.

        Returns ``(links, switch_hops)``. Uses the private mux link when one
        exists between the pair.
        """
        if src == dst:
            return [], 0
        a, b = self.nodes[src], self.nodes[dst]
        if b.name in a.mux_peers:
            return [a.mux_peers[b.name]], 0

        # Unique tree path: climb both to the lowest common ancestor.
        a_chain = [a] + a.ancestors()
        b_chain = [b] + b.ancestors()
        b_set = {n.name for n in b_chain}
        lca = next(n for n in a_chain if n.name in b_set)

        links: List[PCIeLink] = []
        switch_hops = 0
        node = a
        while node is not lca:
            links.append(node.uplink)
            node = node.parent
            if node.kind == "switch" and node is not lca:
                switch_hops += 1
        down: List[PCIeLink] = []
        node = b
        while node is not lca:
            down.append(node.uplink)
            node = node.parent
            if node.kind == "switch" and node is not lca:
                switch_hops += 1
        # The LCA itself is traversed (port in, port out) when it is a
        # switch; the root complex is an endpoint of the transfer, not a hop.
        if lca.kind == "switch":
            switch_hops += 1
        links.extend(reversed(down))
        return links, switch_hops

    def _cut_through_duration(self, links, switch_hops: int, nbytes: int) -> float:
        """PCIe transfers are cut-through: TLPs stream across every link on
        the path simultaneously, so the serialization time is paid once (at
        the narrowest link), plus per-link propagation and per-switch
        port-to-port latency."""
        bottleneck = max(nbytes / link.bandwidth for link in links)
        propagation = sum(link.config.propagation_latency_s for link in links)
        return bottleneck + propagation + switch_hops * self.switch_latency_s

    def transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Process: move ``nbytes`` from ``src`` to ``dst`` over the fabric.

        Occupies every link on the path for the cut-through duration
        (links are acquired in a canonical global order, so concurrent
        transfers over overlapping paths queue without deadlock). Returns
        the total elapsed time.

        Interruption-safe: a watchdog interrupting the transfer mid-flight
        releases every held link and withdraws the in-flight acquisition,
        so a timed-out transfer never wedges the fabric.
        """
        start = self.sim.now
        if self.injector is not None:
            yield from self.injector.interpose(
                "fabric", actor=f"{src}->{dst}"
            )
        links, switch_hops = self.path(src, dst)
        if not links:
            return 0.0
        # Deduplicate (an inline device shares its host's physical link)
        # and sort for deadlock-free acquisition.
        unique = {id(link): link for link in links}
        duration = self._cut_through_duration(
            list(unique.values()), switch_hops, nbytes
        )
        held = []
        pending = None
        try:
            for link in sorted(unique.values(), key=lambda l: l.name):
                request = link.acquire()
                pending = (link, request)
                yield request
                pending = None
                held.append((link, request))
            yield self.sim.timeout(duration)
        except BaseException:
            if pending is not None:
                pending[0].relinquish(pending[1])
            for link, request in held:
                link.release(request)
            raise
        for link, request in held:
            link.release(request)
            link.account(nbytes, duration)
        return self.sim.now - start

    def unloaded_latency(self, src: str, dst: str, nbytes: int) -> float:
        """Contention-free transfer latency, for analytical estimates."""
        links, switch_hops = self.path(src, dst)
        if not links:
            return 0.0
        unique = {id(link): link for link in links}
        return self._cut_through_duration(
            list(unique.values()), switch_hops, nbytes
        )

    def total_bytes_moved(self) -> int:
        """Total bytes crossing any link — the data-movement metric."""
        return sum(link.bytes_moved for link in self.links)
