"""PCIe link model.

Models a point-to-point PCIe link as a serialized transfer server with
generation- and lane-dependent bandwidth. Bandwidth numbers follow the
standard signaling rates:

=====  ==========  ==============  ======================
Gen    GT/s/lane   Encoding        Effective GB/s per lane
=====  ==========  ==============  ======================
Gen3   8           128b/130b       ~0.985
Gen4   16          128b/130b       ~1.969
Gen5   32          128b/130b (1b flit in practice) ~3.938
=====  ==========  ==============  ======================

On top of raw signaling, TLP/DLLP protocol overhead reduces achievable
payload throughput; we use a configurable ``protocol_efficiency`` (default
0.85, a typical measured large-transfer efficiency for DMA reads/writes).

The paper's system uses x8 links per accelerator downstream and an x8
upstream link per switch (Sec. VII-B), defaulting to Gen 3 with a Gen 4/5
sensitivity study (Fig. 19).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator

from ..sim import Server, Simulator

__all__ = ["PCIeGen", "LinkConfig", "PCIeLink", "GB", "MB", "KB"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class PCIeGen(enum.Enum):
    """PCIe generation; value is the per-lane signaling rate in GT/s."""

    GEN3 = 8
    GEN4 = 16
    GEN5 = 32

    @property
    def raw_gbps_per_lane(self) -> float:
        """Post-encoding raw bandwidth per lane, in GB/s."""
        # 128b/130b encoding: 1 byte per GT with ~1.5% framing loss.
        return self.value * (128.0 / 130.0) / 8.0


@dataclass(frozen=True)
class LinkConfig:
    """Static parameters of one PCIe link."""

    gen: PCIeGen = PCIeGen.GEN3
    lanes: int = 8
    protocol_efficiency: float = 0.85
    propagation_latency_s: float = 250e-9

    def __post_init__(self) -> None:
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid PCIe lane count: {self.lanes}")
        if not 0.0 < self.protocol_efficiency <= 1.0:
            raise ValueError(
                f"protocol_efficiency must be in (0, 1], got {self.protocol_efficiency}"
            )
        if self.propagation_latency_s < 0:
            raise ValueError("negative propagation latency")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Effective payload bandwidth of the full link in bytes/second."""
        per_lane = self.gen.raw_gbps_per_lane * 1e9
        return per_lane * self.lanes * self.protocol_efficiency


class PCIeLink:
    """A contended, serialized PCIe link.

    Transfers queue FCFS; each occupies the link for
    ``bytes / bandwidth + propagation latency``. This store-and-forward
    approximation reproduces the oversubscription effects the paper relies
    on (shared upstream links saturating as concurrency grows).
    """

    def __init__(self, sim: Simulator, config: LinkConfig, name: str = "pcie"):
        self.sim = sim
        self.config = config
        self.name = name
        self._server = Server(sim, capacity=1, name=name)
        self.bytes_moved = 0

    @property
    def bandwidth(self) -> float:
        """Effective bandwidth in bytes/second."""
        return self.config.bandwidth_bytes_per_s

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded time to move ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return nbytes / self.bandwidth + self.config.propagation_latency_s

    def transfer(self, nbytes: int) -> Generator:
        """Process helper: move ``nbytes``, queueing behind other traffic."""
        duration = self.transfer_time(nbytes)
        yield from self._server.transfer(duration)
        self.bytes_moved += nbytes

    def acquire(self):
        """Request exclusive occupancy (multi-link cut-through transfers)."""
        return self._server._resource.request()

    def release(self, request) -> None:
        """Release occupancy taken with :meth:`acquire`."""
        self._server._resource.release(request)

    def relinquish(self, request) -> None:
        """Release a granted occupancy or withdraw a still-queued one.

        Cleanup path for interrupted transfers, which cannot know whether
        their acquisition was granted before the interrupt landed.
        """
        self._server._resource.relinquish(request)

    def account(self, nbytes: int, duration: float) -> None:
        """Record traffic moved under an externally-managed occupancy."""
        self.bytes_moved += nbytes
        self._server.total_service_time += duration
        self._server.jobs_served += 1

    def utilization(self) -> float:
        """Busy fraction of the link so far."""
        return self._server.utilization()

    @property
    def queue_length(self) -> int:
        return self._server.queue_length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PCIeLink({self.name}, {self.config.gen.name} x{self.config.lanes}, "
            f"{self.bandwidth / 1e9:.2f} GB/s)"
        )
