"""DMA engine model and point-to-point DMA setup costs.

Two pieces of software overhead matter to the paper's story:

* Every DMA the *CPU* orchestrates costs driver work (ioctl into the GEM
  driver, descriptor setup) plus an interrupt (or polled completion) on
  the way back. In the baseline this happens twice per hop
  (accelerator → host memory, host memory → next accelerator).
* With DMX, the CPU still fields the kernel-completion interrupt and
  configures the point-to-point DMA (Fig. 10 steps 2–4, 8–9), but the
  payload itself never crosses the host bridge.

:class:`DMAEngine` wraps a fabric transfer with those costs. Interrupt
delivery/coalescing lives in :mod:`repro.runtime.driver`; here we charge
only the fixed per-transfer software path lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..faults.injector import FaultInjector
from ..faults.recovery import RetryPolicy, retry
from ..sim import Simulator
from .topology import Fabric

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import SpanContext

__all__ = ["DMACosts", "DMAEngine"]


@dataclass(frozen=True)
class DMACosts:
    """Fixed software costs around one DMA transfer (seconds).

    Defaults are representative Linux numbers: a few microseconds for the
    ioctl + descriptor writes, and an interrupt service path of ~2 us.
    ``setup_s`` covers the ioctl into the driver, the first descriptor
    write, and the doorbell ring; ``chained_descriptor_s`` is the
    marginal cost of appending one more descriptor to an already-open
    ring submission (no extra ioctl, no extra doorbell) — the
    amortization batched submissions buy (cf. the per-descriptor
    submission overheads measured for Intel DSA).
    """

    setup_s: float = 3e-6
    completion_interrupt_s: float = 2e-6
    descriptor_bytes: int = 64
    chained_descriptor_s: float = 0.3e-6

    def __post_init__(self) -> None:
        if self.setup_s < 0 or self.completion_interrupt_s < 0:
            raise ValueError("DMA cost components must be non-negative")
        if self.chained_descriptor_s < 0:
            raise ValueError("DMA cost components must be non-negative")


class DMAEngine:
    """Moves data between fabric endpoints with driver overheads.

    Parameters
    ----------
    sim, fabric:
        Simulation context and the PCIe fabric to move data over.
    costs:
        Software overhead parameters.
    name:
        Label for tracing.
    injector:
        Optional :class:`~repro.faults.FaultInjector`; each attempt is
        guarded at the "dma" site (delay/hang/fail).
    timeout_s, retry_policy:
        When either is set, every transfer runs under a watchdog deadline
        with bounded-exponential-backoff re-attempts: a hung or failed
        DMA is interrupted (releasing its fabric links) and re-issued.
        Left at None, the transfer path is byte-identical to the
        fault-free engine.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        costs: Optional[DMACosts] = None,
        name: str = "dma",
        injector: Optional[FaultInjector] = None,
        timeout_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.costs = costs or DMACosts()
        self.name = name
        self.injector = injector
        self.timeout_s = timeout_s
        self.retry_policy = retry_policy
        self.transfers_completed = 0
        self.bytes_transferred = 0
        self.descriptors_submitted = 0
        self.retries = 0
        self.failed_transfers = 0

    @property
    def _recovering(self) -> bool:
        return (
            self.injector is not None
            or self.timeout_s is not None
            or self.retry_policy is not None
        )

    def _attempt(
        self,
        src: str,
        dst: str,
        nbytes: int,
        charge_setup: bool,
        charge_completion: bool,
        descriptors: int = 1,
    ) -> Generator:
        """One DMA issue: driver setup, fabric crossing, completion IRQ.

        ``descriptors > 1`` models a chained submission: one ioctl +
        doorbell, with each extra descriptor appended at the (much
        cheaper) in-ring rate.
        """
        if charge_setup:
            yield self.sim.timeout(
                self.costs.setup_s
                + (descriptors - 1) * self.costs.chained_descriptor_s
            )
        op = self.fabric.transfer(src, dst, nbytes)
        if self.injector is not None:
            yield from self.injector.guard(
                "dma", op, actor=self.name, request_id=-1
            )
        else:
            yield from op
        if charge_completion:
            yield self.sim.timeout(self.costs.completion_interrupt_s)

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        charge_setup: bool = True,
        charge_completion: bool = True,
        on_retry: Optional[Callable[[int, BaseException, bool], None]] = None,
        ctx: Optional["SpanContext"] = None,
    ) -> Generator:
        """Process: one DMA from ``src`` to ``dst``.

        ``charge_setup`` / ``charge_completion`` let callers batch multiple
        back-to-back DMAs under a single driver invocation (used by the
        one-to-many collectives, where descriptors are chained).
        ``on_retry`` (recovery mode only) observes each failed attempt.
        ``ctx`` attaches a "dma" telemetry span (covering every retry of
        this transfer) under the caller's span tree.
        Returns the elapsed time; raises
        :class:`~repro.faults.RetryExhausted` when recovery gives up.
        """
        if nbytes < 0:
            raise ValueError(f"negative DMA size: {nbytes}")
        span = (
            ctx.begin(f"{src}->{dst}", "dma", actor=self.name, bytes=nbytes)
            if ctx is not None
            else None
        )
        try:
            elapsed = yield from self._transfer(
                src, dst, nbytes, charge_setup, charge_completion, on_retry
            )
        except BaseException as exc:
            if span is not None:
                ctx.end(span, abandoned=True, error=type(exc).__name__)
            raise
        if span is not None:
            ctx.end(span)
        return elapsed

    def transfer_chained(
        self,
        src: str,
        dst: str,
        sizes: "list[int]",
        on_retry: Optional[Callable[[int, BaseException, bool], None]] = None,
        ctx: Optional["SpanContext"] = None,
    ) -> Generator:
        """Process: one descriptor-ring submission moving ``len(sizes)``
        member payloads from ``src`` to ``dst``.

        The whole chain pays one driver invocation (ioctl + doorbell, in
        ``setup_s``) plus ``chained_descriptor_s`` per extra descriptor,
        one fabric crossing of the summed bytes, and one completion
        interrupt — the coalesced-job cost model. Under the recovery
        plane the chain retries *as a unit*: a failed batch DMA re-issues
        every member descriptor, so no member payload is lost.
        """
        if not sizes:
            raise ValueError("chained transfer needs at least one segment")
        if any(size < 0 for size in sizes):
            raise ValueError(f"negative DMA segment in {sizes}")
        nbytes = sum(sizes)
        span = (
            ctx.begin(
                f"{src}->{dst}", "dma", actor=self.name, bytes=nbytes,
                descriptors=len(sizes),
            )
            if ctx is not None
            else None
        )
        try:
            elapsed = yield from self._transfer(
                src, dst, nbytes, True, True, on_retry,
                descriptors=len(sizes),
            )
        except BaseException as exc:
            if span is not None:
                ctx.end(span, abandoned=True, error=type(exc).__name__)
            raise
        if span is not None:
            ctx.end(span)
        return elapsed

    def _transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        charge_setup: bool,
        charge_completion: bool,
        on_retry: Optional[Callable[[int, BaseException, bool], None]],
        descriptors: int = 1,
    ) -> Generator:
        start = self.sim.now
        if not self._recovering:
            yield from self._attempt(
                src, dst, nbytes, charge_setup, charge_completion,
                descriptors=descriptors,
            )
        else:
            def failed(attempt: int, exc: BaseException, will_retry: bool):
                if will_retry:
                    self.retries += 1
                if on_retry is not None:
                    on_retry(attempt, exc, will_retry)

            try:
                yield from retry(
                    self.sim,
                    lambda: self._attempt(
                        src, dst, nbytes, charge_setup, charge_completion,
                        descriptors=descriptors,
                    ),
                    self.retry_policy or RetryPolicy(),
                    timeout_s=self.timeout_s,
                    on_attempt_failed=failed,
                    what=f"{self.name}:{src}->{dst}",
                )
            except Exception:
                self.failed_transfers += 1
                raise
        self.transfers_completed += 1
        self.bytes_transferred += nbytes
        self.descriptors_submitted += descriptors
        return self.sim.now - start

    def unloaded_latency(self, src: str, dst: str, nbytes: int) -> float:
        """Contention-free estimate including software costs."""
        return (
            self.costs.setup_s
            + self.fabric.unloaded_latency(src, dst, nbytes)
            + self.costs.completion_interrupt_s
        )
