"""DMA engine model and point-to-point DMA setup costs.

Two pieces of software overhead matter to the paper's story:

* Every DMA the *CPU* orchestrates costs driver work (ioctl into the GEM
  driver, descriptor setup) plus an interrupt (or polled completion) on
  the way back. In the baseline this happens twice per hop
  (accelerator → host memory, host memory → next accelerator).
* With DMX, the CPU still fields the kernel-completion interrupt and
  configures the point-to-point DMA (Fig. 10 steps 2–4, 8–9), but the
  payload itself never crosses the host bridge.

:class:`DMAEngine` wraps a fabric transfer with those costs. Interrupt
delivery/coalescing lives in :mod:`repro.runtime.driver`; here we charge
only the fixed per-transfer software path lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..sim import Simulator
from .topology import Fabric

__all__ = ["DMACosts", "DMAEngine"]


@dataclass(frozen=True)
class DMACosts:
    """Fixed software costs around one DMA transfer (seconds).

    Defaults are representative Linux numbers: a few microseconds for the
    ioctl + descriptor writes, and an interrupt service path of ~2 us.
    """

    setup_s: float = 3e-6
    completion_interrupt_s: float = 2e-6
    descriptor_bytes: int = 64

    def __post_init__(self) -> None:
        if self.setup_s < 0 or self.completion_interrupt_s < 0:
            raise ValueError("DMA cost components must be non-negative")


class DMAEngine:
    """Moves data between fabric endpoints with driver overheads.

    Parameters
    ----------
    sim, fabric:
        Simulation context and the PCIe fabric to move data over.
    costs:
        Software overhead parameters.
    name:
        Label for tracing.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        costs: Optional[DMACosts] = None,
        name: str = "dma",
    ):
        self.sim = sim
        self.fabric = fabric
        self.costs = costs or DMACosts()
        self.name = name
        self.transfers_completed = 0
        self.bytes_transferred = 0

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        charge_setup: bool = True,
        charge_completion: bool = True,
    ) -> Generator:
        """Process: one DMA from ``src`` to ``dst``.

        ``charge_setup`` / ``charge_completion`` let callers batch multiple
        back-to-back DMAs under a single driver invocation (used by the
        one-to-many collectives, where descriptors are chained).
        Returns the elapsed time.
        """
        if nbytes < 0:
            raise ValueError(f"negative DMA size: {nbytes}")
        start = self.sim.now
        if charge_setup:
            yield self.sim.timeout(self.costs.setup_s)
        yield from self.fabric.transfer(src, dst, nbytes)
        if charge_completion:
            yield self.sim.timeout(self.costs.completion_interrupt_s)
        self.transfers_completed += 1
        self.bytes_transferred += nbytes
        return self.sim.now - start

    def unloaded_latency(self, src: str, dst: str, nbytes: int) -> float:
        """Contention-free estimate including software costs."""
        return (
            self.costs.setup_s
            + self.fabric.unloaded_latency(src, dst, nbytes)
            + self.costs.completion_interrupt_s
        )
