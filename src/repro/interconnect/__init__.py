"""PCIe interconnect substrate: links, fabric topology, DMA engines."""

from .dma import DMACosts, DMAEngine
from .pcie import GB, KB, MB, LinkConfig, PCIeGen, PCIeLink
from .topology import SWITCH_PORT_LATENCY_S, Fabric, Node

__all__ = [
    "DMACosts",
    "DMAEngine",
    "GB",
    "KB",
    "MB",
    "LinkConfig",
    "PCIeGen",
    "PCIeLink",
    "SWITCH_PORT_LATENCY_S",
    "Fabric",
    "Node",
]
