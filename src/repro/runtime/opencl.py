"""OpenCL-style host programming model (Sec. V).

DMX keeps the control plane on the CPU behind a familiar host API: the
host program creates an execution **context** naming the devices,
kernels, and per-device **command queues**; commands (kernel launches,
buffer copies) are enqueued blocking or non-blocking with explicit
**event** dependencies; in-order queues execute commands in enqueue
order.

This module implements that API *functionally*: enqueued kernels really
run (on the functional accelerator/DRX implementations) the moment
their dependencies resolve, and the dependency graph is checked for
cycles and cross-context use. The DES timing path lives in
:mod:`repro.core`; examples and correctness tests drive this layer.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["CLError", "DeviceHandle", "CLBuffer", "CLEvent", "CommandQueue",
           "Context"]


class CLError(RuntimeError):
    """Raised for host-API misuse."""


class DeviceHandle:
    """A device visible to the context: accelerator, DRX, or the host CPU."""

    _ids = itertools.count()

    def __init__(self, name: str, kind: str, executor: Any = None):
        if kind not in ("accelerator", "drx", "cpu"):
            raise CLError(f"unknown device kind {kind!r}")
        self.name = name
        self.kind = kind
        self.executor = executor  # functional object (Accelerator, ...)
        self.device_id = next(self._ids)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DeviceHandle({self.name!r}, {self.kind})"


class CLBuffer:
    """A named host-visible buffer object."""

    def __init__(self, context: "Context", name: str, data: Any = None):
        self.context = context
        self.name = name
        self.data = data
        self.version = 0

    def write(self, data: Any) -> None:
        """Host-side buffer update."""
        self.data = data
        self.version += 1

    def read(self) -> Any:
        if self.data is None:
            raise CLError(f"buffer {self.name!r} read before any write")
        return self.data


class CLEvent:
    """Completion token for one enqueued command."""

    _ids = itertools.count()

    def __init__(self, command: str):
        self.command = command
        self.event_id = next(self._ids)
        self.complete = False
        self.result: Any = None

    def wait(self) -> Any:
        if not self.complete:
            raise CLError(
                f"event {self.event_id} ({self.command}) awaited before "
                "completion — missing queue.finish()?"
            )
        return self.result


class CommandQueue:
    """An in-order command queue bound to one device.

    Commands execute in enqueue order. Non-blocking enqueues defer
    execution until :meth:`finish` (or a blocking enqueue) drains the
    queue; dependencies across queues are expressed with ``wait_for``
    event lists, exactly as in OpenCL.
    """

    def __init__(self, context: "Context", device: DeviceHandle):
        self.context = context
        self.device = device
        self._pending: List[tuple] = []
        self.commands_executed = 0

    def enqueue_kernel(
        self,
        fn: Callable[..., Any],
        inputs: Sequence[CLBuffer],
        output: CLBuffer,
        wait_for: Optional[Sequence[CLEvent]] = None,
        blocking: bool = False,
    ) -> CLEvent:
        """Enqueue ``output.data = fn(*[b.data for b in inputs])``."""
        for buffer in list(inputs) + [output]:
            if buffer.context is not self.context:
                raise CLError("buffer belongs to a different context")
        event = CLEvent(f"kernel:{getattr(fn, '__name__', 'fn')}@{self.device.name}")
        self._pending.append(("kernel", fn, list(inputs), output,
                              list(wait_for or []), event))
        if blocking:
            self.finish()
        return event

    def enqueue_copy(
        self,
        src: CLBuffer,
        dst: CLBuffer,
        wait_for: Optional[Sequence[CLEvent]] = None,
        blocking: bool = False,
    ) -> CLEvent:
        """Enqueue a buffer-to-buffer transfer."""
        event = CLEvent(f"copy:{src.name}->{dst.name}")
        self._pending.append(("copy", None, [src], dst,
                              list(wait_for or []), event))
        if blocking:
            self.finish()
        return event

    def finish(self) -> None:
        """Drain the queue in order, honoring cross-queue dependencies.

        A dependency on an incomplete cross-queue event raises without
        consuming the command, so finishing the producer queue and
        retrying succeeds.
        """
        while self._pending:
            kind, fn, inputs, output, waits, event = self._pending[0]
            for dep in waits:
                if not dep.complete:
                    raise CLError(
                        f"command {event.command!r} depends on incomplete "
                        f"event {dep.command!r}; finish that queue first"
                    )
            self._pending.pop(0)
            if kind == "kernel":
                args = [b.read() for b in inputs]
                result = fn(*args)
                output.write(result)
                event.result = result
            else:  # copy
                output.write(inputs[0].read())
                event.result = output.data
            event.complete = True
            self.commands_executed += 1


class Context:
    """Execution context: devices, buffers, and command queues.

    Mirrors the paper's description: one context per application
    instance, holding (1) the hardware involved, (2) the kernels, and
    (3) a per-device command queue.
    """

    def __init__(self, devices: Sequence[DeviceHandle]):
        if not devices:
            raise CLError("context requires at least one device")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise CLError("duplicate device names in context")
        self.devices: Dict[str, DeviceHandle] = {d.name: d for d in devices}
        self.buffers: Dict[str, CLBuffer] = {}
        self.queues: Dict[str, CommandQueue] = {}

    def device(self, name: str) -> DeviceHandle:
        if name not in self.devices:
            raise CLError(f"no device {name!r} in context")
        return self.devices[name]

    def create_buffer(self, name: str, data: Any = None) -> CLBuffer:
        if name in self.buffers:
            raise CLError(f"buffer {name!r} already exists")
        buffer = CLBuffer(self, name, data)
        self.buffers[name] = buffer
        return buffer

    def create_queue(self, device_name: str) -> CommandQueue:
        """One in-order queue per device (per the paper's model)."""
        if device_name in self.queues:
            raise CLError(f"device {device_name!r} already has a queue")
        queue = CommandQueue(self, self.device(device_name))
        self.queues[device_name] = queue
        return queue

    def finish_all(self) -> None:
        """Drain every queue (a global barrier)."""
        for queue in self.queues.values():
            queue.finish()
