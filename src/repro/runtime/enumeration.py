"""PCIe enumeration: device discovery and DRX queue provisioning.

Sec. V: "The number of accelerators is determined at PCIe enumeration
time when it discovers connected accelerators that need data
restructuring." Enumeration walks the fabric tree, assigns
bus/device/function-style addresses, classifies endpoints by naming
convention, and carves each DRX's RX/TX queue partition for all peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..drx.queues import MAX_ACCELERATORS, QueuePartition
from ..interconnect import Fabric, Node

__all__ = ["EnumeratedDevice", "SystemInventory", "enumerate_fabric"]


@dataclass(frozen=True)
class EnumeratedDevice:
    """One discovered PCIe function."""

    name: str
    kind: str  # "accelerator" | "drx"
    bus: int
    device: int

    @property
    def bdf(self) -> str:
        return f"{self.bus:02x}:{self.device:02x}.0"


@dataclass
class SystemInventory:
    """Result of enumeration: devices plus per-DRX queue partitions."""

    devices: List[EnumeratedDevice]
    partitions: Dict[str, QueuePartition]

    @property
    def accelerators(self) -> List[EnumeratedDevice]:
        return [d for d in self.devices if d.kind == "accelerator"]

    @property
    def drxs(self) -> List[EnumeratedDevice]:
        return [d for d in self.devices if d.kind == "drx"]

    def find(self, name: str) -> EnumeratedDevice:
        for dev in self.devices:
            if dev.name == name:
                return dev
        raise KeyError(f"no enumerated device named {name!r}")


def _classify(name: str) -> str:
    return "drx" if "drx" in name.lower() else "accelerator"


def enumerate_fabric(fabric: Fabric) -> SystemInventory:
    """Walk the fabric tree and provision DRX data queues.

    Bus numbers follow switches (depth-first), device numbers follow
    port order — close enough to real enumeration for the model's needs.
    """
    devices: List[EnumeratedDevice] = []
    bus_counter = [0]

    def walk(node: Node, bus: int) -> None:
        device_counter = 0
        for child in node.children:
            if child.kind == "switch":
                bus_counter[0] += 1
                walk(child, bus_counter[0])
            else:
                devices.append(
                    EnumeratedDevice(
                        name=child.name,
                        kind=_classify(child.name),
                        bus=bus,
                        device=device_counter,
                    )
                )
                device_counter += 1

    walk(fabric.root, 0)

    accel_names = [d.name for d in devices if d.kind == "accelerator"]
    drx_names = [d.name for d in devices if d.kind == "drx"]
    if len(accel_names) > MAX_ACCELERATORS:
        raise MemoryError(
            f"{len(accel_names)} accelerators exceed the {MAX_ACCELERATORS}-"
            "accelerator queue provisioning limit"
        )
    partitions = {
        drx: QueuePartition(
            drx,
            accelerator_peers=accel_names,
            drx_peers=[d for d in drx_names if d != drx],
        )
        for drx in drx_names
    }
    return SystemInventory(devices=devices, partitions=partitions)
