"""Driver model: interrupts, coalescing, and the NAPI-style polling switch.

Sec. V: "By default, we operate accelerators and DRXs in interrupt mode
for sending notifications to the CPU. The interrupt handling of the
drivers utilizes interrupt coalescing for the bursty arrival of
interrupts. If the arrival rate of interrupts exceeds a certain
threshold, the drivers switch to polling. This design is similar to
Linux NAPI."

:class:`NotificationModel` tracks a recent-arrival-rate estimate per
device and prices each completion notification accordingly:

* interrupt mode — full ISR cost on a CPU core, minus coalescing
  savings when several completions land inside one coalescing window;
* polling mode — a cheaper amortized per-completion cost (no context
  switch), entered when the rate crosses ``polling_threshold_hz`` and
  left when it falls below half of it (hysteresis).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, Generator, Optional

from ..cpu import HostCPU
from ..faults.injector import FaultInjector
from ..faults.recovery import RetryPolicy, retry
from ..sim import Simulator, WaitTimeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import SpanContext

__all__ = ["NotificationCosts", "NotificationModel", "DriverStats"]


@dataclass(frozen=True)
class NotificationCosts:
    """Software path lengths for completion notifications (seconds)."""

    interrupt_s: float = 2.0e-6  # ISR + context switch + driver bottom half
    coalesced_s: float = 0.4e-6  # extra completion inside one ISR window
    poll_s: float = 0.5e-6  # amortized polled-completion handling
    coalesce_window_s: float = 20e-6
    polling_threshold_hz: float = 50_000.0

    def __post_init__(self) -> None:
        if min(self.interrupt_s, self.coalesced_s, self.poll_s) < 0:
            raise ValueError("notification costs must be non-negative")
        if self.coalesce_window_s <= 0 or self.polling_threshold_hz <= 0:
            raise ValueError("window and threshold must be positive")


@dataclass
class DriverStats:
    """Counters for reporting."""

    interrupts: int = 0
    coalesced: int = 0
    polled: int = 0
    # Recovery plane: notifications whose delivery missed the watchdog
    # deadline, and the re-deliveries the driver issued for them.
    timeouts: int = 0
    retries: int = 0

    @property
    def total(self) -> int:
        return self.interrupts + self.coalesced + self.polled


class NotificationModel:
    """Prices device-completion notifications on the host CPU."""

    _RATE_WINDOW = 32  # arrivals kept for rate estimation

    def __init__(
        self,
        sim: Simulator,
        cpu: HostCPU,
        costs: NotificationCosts = NotificationCosts(),
        injector: Optional[FaultInjector] = None,
        timeout_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.sim = sim
        self.cpu = cpu
        self.costs = costs
        self.stats = DriverStats()
        # Recovery plane: when a timeout (or injector) is configured, each
        # delivery runs under a watchdog — a lost/hung notification is
        # re-delivered with bounded backoff, like a driver re-polling a
        # completion ring whose interrupt never arrived.
        self.injector = injector
        self.timeout_s = timeout_s
        self.retry_policy = retry_policy
        self._arrivals: Dict[str, Deque[float]] = {}
        self._polling: Dict[str, bool] = {}
        self._last_isr: Dict[str, float] = {}

    def _arrival_rate(self, device: str) -> float:
        history = self._arrivals.get(device)
        if not history or len(history) < 2:
            return 0.0
        span = history[-1] - history[0]
        if span <= 0:
            return float("inf")
        return (len(history) - 1) / span

    def is_polling(self, device: str) -> bool:
        return self._polling.get(device, False)

    _MIN_HISTORY = 8  # sustained arrivals required before mode switches

    def _update_mode(self, device: str) -> None:
        history = self._arrivals.get(device, ())
        if len(history) < self._MIN_HISTORY:
            return  # NAPI-style: only a *sustained* rate flips the mode
        rate = self._arrival_rate(device)
        threshold = self.costs.polling_threshold_hz
        if self._polling.get(device, False):
            if rate < threshold / 2:  # hysteresis
                self._polling[device] = False
        elif rate > threshold:
            self._polling[device] = True

    def _charge(self, cost: float) -> Generator:
        """Occupy the handler path for ``cost`` and bill the host CPU."""
        yield self.sim.timeout(cost)
        self.cpu.busy_seconds += cost

    def _deliver(self, device: str, cost: float) -> Generator:
        """One delivery attempt: charge the handler cost on the host."""
        op = self._charge(cost)
        if self.injector is not None:
            yield from self.injector.guard("notify", op, actor=device)
        else:
            yield from op

    def notify(
        self,
        device: str,
        on_retry: Optional[Callable[[int, BaseException, bool], None]] = None,
        ctx: Optional["SpanContext"] = None,
    ) -> Generator:
        """Process: deliver one completion notification to the host.

        Returns the CPU cost charged per delivery. With a recovery
        configuration, a lost or hung delivery is retried under the
        watchdog (``on_retry`` observes each failed attempt); exhaustion
        raises :class:`~repro.faults.RetryExhausted`. ``ctx`` attaches a
        "notify" span recording the delivery mode and billed cost.
        """
        now = self.sim.now
        history = self._arrivals.setdefault(
            device, deque(maxlen=self._RATE_WINDOW)
        )
        history.append(now)
        self._update_mode(device)

        if self._polling.get(device, False):
            cost = self.costs.poll_s
            mode = "poll"
            self.stats.polled += 1
        else:
            last = self._last_isr.get(device)
            if last is not None and now - last < self.costs.coalesce_window_s:
                cost = self.costs.coalesced_s
                mode = "coalesced"
                self.stats.coalesced += 1
            else:
                cost = self.costs.interrupt_s
                mode = "interrupt"
                self.stats.interrupts += 1
            self._last_isr[device] = now
        span = (
            ctx.begin("notify", "notify", actor=device, mode=mode, cost_s=cost)
            if ctx is not None
            else None
        )
        try:
            yield from self._notify_timed(device, cost, on_retry)
        except BaseException as exc:
            if span is not None:
                ctx.end(span, abandoned=True, error=type(exc).__name__)
            raise
        if span is not None:
            ctx.end(span)
        return cost

    def notify_batch(
        self,
        device: str,
        count: int,
        on_retry: Optional[Callable[[int, BaseException, bool], None]] = None,
        ctx: Optional["SpanContext"] = None,
    ) -> Generator:
        """Process: deliver ONE coalesced completion for ``count`` members.

        A batched submission raises a single interrupt when the whole
        descriptor chain completes; the remaining ``count - 1`` member
        completions are reaped inside that same ISR at the (much cheaper)
        coalesced rate — the driver walks the completion ring once. In
        polling mode every member still pays the amortized poll cost.
        The delivery (and any watchdog retry of it) happens as a unit:
        a lost batch notification is re-delivered whole.
        """
        if count < 1:
            raise ValueError(f"batch notification needs count >= 1: {count}")
        if count == 1:
            cost = yield from self.notify(device, on_retry=on_retry, ctx=ctx)
            return cost
        now = self.sim.now
        history = self._arrivals.setdefault(
            device, deque(maxlen=self._RATE_WINDOW)
        )
        # The rate estimator sees every member completion land at once —
        # exactly what the completion ring records.
        for _ in range(min(count, self._RATE_WINDOW)):
            history.append(now)
        self._update_mode(device)

        if self._polling.get(device, False):
            cost = count * self.costs.poll_s
            mode = "poll"
            self.stats.polled += count
        else:
            last = self._last_isr.get(device)
            if last is not None and now - last < self.costs.coalesce_window_s:
                base = self.costs.coalesced_s
                mode = "coalesced"
                self.stats.coalesced += count
            else:
                base = self.costs.interrupt_s
                mode = "interrupt"
                self.stats.interrupts += 1
                self.stats.coalesced += count - 1
            cost = base + (count - 1) * self.costs.coalesced_s
            self._last_isr[device] = now
        span = (
            ctx.begin(
                "notify", "notify", actor=device, mode=mode, cost_s=cost,
                batch=count,
            )
            if ctx is not None
            else None
        )
        try:
            yield from self._notify_timed(device, cost, on_retry)
        except BaseException as exc:
            if span is not None:
                ctx.end(span, abandoned=True, error=type(exc).__name__)
            raise
        if span is not None:
            ctx.end(span)
        return cost

    def _notify_timed(
        self,
        device: str,
        cost: float,
        on_retry: Optional[Callable[[int, BaseException, bool], None]],
    ) -> Generator:
        # ISRs preempt whatever the cores are doing, so the notification
        # costs wall time and CPU energy but does not queue behind bulk
        # restructuring chunks.
        if self.injector is None and self.timeout_s is None:
            yield self.sim.timeout(cost)
            self.cpu.busy_seconds += cost
            return

        def failed(attempt: int, exc: BaseException, will_retry: bool):
            if isinstance(exc, WaitTimeout):
                self.stats.timeouts += 1
            if will_retry:
                self.stats.retries += 1
            if on_retry is not None:
                on_retry(attempt, exc, will_retry)

        yield from retry(
            self.sim,
            lambda: self._deliver(device, cost),
            self.retry_policy or RetryPolicy(),
            timeout_s=self.timeout_s,
            on_attempt_failed=failed,
            what=f"notify:{device}",
        )
