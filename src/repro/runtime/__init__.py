"""System integration: host API, drivers, enumeration (Sec. V)."""

from .driver import DriverStats, NotificationCosts, NotificationModel
from .enumeration import EnumeratedDevice, SystemInventory, enumerate_fabric
from .opencl import (
    CLBuffer,
    CLError,
    CLEvent,
    CommandQueue,
    Context,
    DeviceHandle,
)

__all__ = [
    "DriverStats",
    "NotificationCosts",
    "NotificationModel",
    "EnumeratedDevice",
    "SystemInventory",
    "enumerate_fabric",
    "CLBuffer",
    "CLError",
    "CLEvent",
    "CommandQueue",
    "Context",
    "DeviceHandle",
]
