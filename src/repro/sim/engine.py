"""Discrete-event simulation engine.

A small, dependency-free process-based DES core in the style of SimPy.
Processes are Python generators that ``yield`` :class:`Event` objects; the
:class:`Simulator` advances virtual time, fires events, and resumes the
processes waiting on them.

The engine is deliberately minimal but complete enough for the DMX system
model: timeouts, process joining, event composition (:class:`AllOf` /
:class:`AnyOf`), and interruption.

Hot-path design (see DESIGN.md §12): every class on the event path uses
``__slots__``; the common single-waiter case stores its callback in a
dedicated slot (``_cb0``) so no per-event list is allocated; the
:meth:`Simulator.run` loop is inlined with the heap and ``heappop``
hoisted to locals; and losers of timeout races are :meth:`Timeout.cancel`-ed
— the loop skips them without advancing the clock, so final ``sim.now``
is the last *useful* event, not the most generous unfired deadline.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(5.0)
...     log.append(sim.now)
>>> _ = sim.spawn(proc(sim))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

import copy
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "WaitTimeout",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double-trigger, bad yields)."""


class WaitTimeout(Exception):
    """A timeout-raced wait exceeded its deadline.

    Raised by the timeout-race helpers (:meth:`~repro.sim.resources.Store.get_or_timeout`,
    :func:`repro.faults.with_timeout`) so callers can distinguish a missed
    deadline from a failed operation.
    """


def _waiter_copy(exc: BaseException) -> BaseException:
    """A per-waiter copy of ``exc`` with a fresh traceback.

    A failed event may have many waiters; re-raising the *same* exception
    instance into each one makes tracebacks accrete frames across waiters
    and lets one waiter's handling mutate what the others observe. Each
    waiter gets a shallow copy instead (falling back to the shared
    instance only for exceptions that cannot be reconstructed).
    """
    try:
        clone = copy.copy(exc)
    except Exception:
        return exc
    if type(clone) is not type(exc):
        return exc
    clone.__cause__ = exc.__cause__
    clone.__context__ = exc.__context__
    clone.__suppress_context__ = exc.__suppress_context__
    clone.__traceback__ = None
    return clone


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    Events start *pending*, become *triggered* when given a value (or an
    exception), and are *processed* once the simulator has run their
    callbacks. Processes wait on events by yielding them.

    Callback storage is two-tier: the first callback lands in the
    ``_cb0`` slot (almost every event has exactly one waiter — the
    process that yielded it), and only a second registration allocates
    the overflow list ``_cbs``.
    """

    __slots__ = (
        "sim",
        "_value",
        "_exception",
        "_triggered",
        "_processed",
        "_defunct",
        "_cb0",
        "_cbs",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self._defunct = False
        self._cb0: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[List[Callable[["Event"], None]]] = None

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the simulator has fired this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event triggered with.

        Raises :class:`SimulationError` when the event is still pending.
        """
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise _waiter_copy(self._exception)
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        heappush(sim._heap, (sim.now, sim._next_seq(), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have the exception thrown into them.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        sim = self.sim
        heappush(sim._heap, (sim.now, sim._next_seq(), self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately.
        """
        if self._processed:
            callback(self)
        elif self._cb0 is None:
            self._cb0 = callback
        elif self._cbs is None:
            self._cbs = [callback]
        else:
            self._cbs.append(callback)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    A timeout that lost a race (the operation it guarded completed
    first) should be :meth:`cancel`-ed: the event loop then discards it
    without advancing the clock or firing callbacks, so an unfired
    deadline never defines the end of a simulation.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ — timeouts are the hottest allocation
        # in the engine and the extra super() call is measurable.
        self.sim = sim
        self._value = value
        self._exception = None
        self._triggered = True
        self._processed = False
        self._defunct = False
        self._cb0 = None
        self._cbs = None
        heappush(sim._heap, (sim.now + delay, sim._next_seq(), self))

    def cancel(self) -> bool:
        """Discard a scheduled timeout that nothing waits on anymore.

        The heap entry is abandoned in place (O(1)); :meth:`Simulator.run`
        skips defunct entries without touching ``sim.now``. Returns True
        when the timeout was still live; canceling an already-processed
        or already-canceled timeout is a no-op returning False. Only
        safe when no live waiter still depends on the event — its
        callbacks will never fire.
        """
        if self._processed or self._defunct:
            return False
        self._defunct = True
        return True


class Process(Event):
    """A running generator; also an event that triggers when it returns.

    The process event's value is the generator's return value; if the
    generator raises, waiting processes observe the exception.
    """

    __slots__ = ("name", "_generator", "_send", "_throw", "_waiting_on",
                 "_on_wake")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        # Bound methods are cached once: attribute access would
        # otherwise allocate a fresh bound-method object on every yield.
        self._send = generator.send
        self._throw = generator.throw
        self._on_wake: Callable[[Event], None] = self._resume
        # Bootstrap: resume the process at the current time. Tracked as
        # ``_waiting_on`` so a wakeup delivered for anything *else* (a
        # stale event, an earlier interrupt) is ignored by identity.
        bootstrap = Event(sim)
        bootstrap._triggered = True
        bootstrap._cb0 = self._on_wake
        self._waiting_on: Optional[Event] = bootstrap
        heappush(sim._heap, (sim.now, sim._next_seq(), bootstrap))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Detaching from the currently-awaited event is O(1) and explicit:
        ``_waiting_on`` is simply cleared, and :meth:`_resume` discards
        any wakeup whose event is not the current wait target (the old
        event's callback later fires into a stale reference and is
        ignored by identity — no list scan, no silent miss). Interrupt
        wakeups are a dedicated event type that bypasses the identity
        check, so several interrupts queued back to back all deliver,
        in order.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        sim = self.sim
        wakeup = _InterruptWakeup(sim)
        wakeup._triggered = True
        wakeup._exception = Interrupt(cause)
        wakeup._cb0 = self._on_wake
        self._waiting_on = None
        heappush(sim._heap, (sim.now, sim._next_seq(), wakeup))

    def _release_generator(self) -> None:
        # ``_on_wake`` is a bound method, so a finished process would
        # otherwise sit in a self-referential cycle (and pin its whole
        # generator frame) until the gc's next pass. Dropping the cached
        # references on death restores prompt refcount collection; any
        # stale callback still holding the old bound method fires into
        # the staleness check below and is ignored.
        self._generator = None
        self._send = None
        self._throw = None
        self._on_wake = None

    def _resume(self, event: Event) -> None:
        if event is not self._waiting_on and (
            type(event) is not _InterruptWakeup or self._triggered
        ):
            return  # stale wakeup: detached by an interrupt, or finished
        self._waiting_on = None
        sim = self.sim
        try:
            if event._exception is not None:
                target = self._throw(_waiter_copy(event._exception))
            else:
                target = self._send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            self._release_generator()
            return
        except Interrupt as exc:
            # An unhandled interrupt kills the process but is not an error
            # of the simulation itself.
            self.fail(exc)
            self._release_generator()
            return
        except BaseException as exc:
            if sim.strict:
                raise
            self.fail(exc)
            self._release_generator()
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.sim is not sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._waiting_on = target
        if target._processed:
            self._resume(target)
        elif target._cb0 is None:
            target._cb0 = self._on_wake
        elif target._cb0 is self._on_wake:
            pass  # stale registration from a pre-interrupt wait; reuse it
        elif target._cbs is None:
            target._cbs = [self._on_wake]
        else:
            target._cbs.append(self._on_wake)


class _InterruptWakeup(Event):
    """Out-of-band wakeup queued by :meth:`Process.interrupt`.

    Delivered to the process even while it waits on something else, so
    queued interrupts are never lost; the normal staleness check ignores
    every other event that is not the current wait target.
    """

    __slots__ = ()


class _Condition(Event):
    """Base for AllOf / AnyOf composition events.

    All pending components are counted *before* any callback is
    registered: an already-processed component fires ``_check``
    synchronously during registration, and counting one event at a time
    let ``AllOf([processed, still_pending])`` succeed before the
    remaining components were even seen.
    """

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._pending = len(self.events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("cannot combine events across simulators")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self.events if ev._processed and ev.ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every component event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as any component event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: a priority queue of (time, tiebreak, event).

    Parameters
    ----------
    strict:
        When True (default) exceptions escaping a process propagate out of
        :meth:`run`; when False they fail the process event instead so
        joiners can observe them.
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._heap: List = []
        self._seq = 0
        #: Events processed since construction (canceled entries that
        #: were skipped do not count) — the engine-speed benchmark's
        #: deterministic work measure.
        self.events_processed = 0

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        return Process(self, generator, name=name)

    # Alias mirroring SimPy naming, some callers read better with it.
    process = spawn

    # -- scheduling core ----------------------------------------------------

    def _queue_event(self, event: Event, delay: float = 0.0) -> None:
        heappush(self._heap, (self.now + delay, self._next_seq(), event))

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` after ``delay``; returns the underlying event."""
        event = Timeout(self, delay)
        event.add_callback(lambda _ev: callback())
        return event

    def peek(self) -> float:
        """Time of the next *live* scheduled event, or ``inf`` when idle."""
        heap = self._heap
        while heap:
            if heap[0][2]._defunct:
                heappop(heap)
            else:
                return heap[0][0]
        return float("inf")

    def _fire(self, event: Event) -> None:
        """Mark ``event`` processed and run its callbacks in order."""
        event._processed = True
        self.events_processed += 1
        cb0 = event._cb0
        if cb0 is not None:
            event._cb0 = None
            cb0(event)
            cbs = event._cbs
            if cbs is not None:
                event._cbs = None
                for callback in cbs:
                    callback(event)

    def step(self) -> None:
        """Process exactly one live event (skipping canceled entries)."""
        heap = self._heap
        while True:
            if not heap:
                raise SimulationError("step() on an empty event queue")
            when, _tie, event = heappop(heap)
            if not event._defunct:
                break
        if when < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = when
        self._fire(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``.

        Canceled (defunct) entries are discarded without advancing the
        clock, so a drained queue leaves ``now`` at the last event that
        actually fired callbacks.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        heap = self._heap
        pop = heappop
        if until is None:
            # The hot loop: locals only, callbacks fired inline, the
            # processed-event counter flushed once at the end.
            processed = 0
            try:
                while heap:
                    when, _tie, event = pop(heap)
                    if event._defunct:
                        continue
                    self.now = when
                    event._processed = True
                    processed += 1
                    cb0 = event._cb0
                    if cb0 is not None:
                        event._cb0 = None
                        cb0(event)
                        cbs = event._cbs
                        if cbs is not None:
                            event._cbs = None
                            for callback in cbs:
                                callback(event)
            finally:
                self.events_processed += processed
            return
        while heap:
            head = heap[0]
            if head[2]._defunct:
                pop(heap)
                continue
            if head[0] > until:
                break
            when, _tie, event = pop(heap)
            self.now = when
            self._fire(event)
        self.now = until
