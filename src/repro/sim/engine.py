"""Discrete-event simulation engine.

A small, dependency-free process-based DES core in the style of SimPy.
Processes are Python generators that ``yield`` :class:`Event` objects; the
:class:`Simulator` advances virtual time, fires events, and resumes the
processes waiting on them.

The engine is deliberately minimal but complete enough for the DMX system
model: timeouts, process joining, event composition (:class:`AllOf` /
:class:`AnyOf`), and interruption.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(5.0)
...     log.append(sim.now)
>>> _ = sim.spawn(proc(sim))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

import copy
import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "WaitTimeout",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double-trigger, bad yields)."""


class WaitTimeout(Exception):
    """A timeout-raced wait exceeded its deadline.

    Raised by the timeout-race helpers (:meth:`~repro.sim.resources.Store.get_or_timeout`,
    :func:`repro.faults.with_timeout`) so callers can distinguish a missed
    deadline from a failed operation.
    """


def _waiter_copy(exc: BaseException) -> BaseException:
    """A per-waiter copy of ``exc`` with a fresh traceback.

    A failed event may have many waiters; re-raising the *same* exception
    instance into each one makes tracebacks accrete frames across waiters
    and lets one waiter's handling mutate what the others observe. Each
    waiter gets a shallow copy instead (falling back to the shared
    instance only for exceptions that cannot be reconstructed).
    """
    try:
        clone = copy.copy(exc)
    except Exception:
        return exc
    if type(clone) is not type(exc):
        return exc
    clone.__cause__ = exc.__cause__
    clone.__context__ = exc.__context__
    clone.__suppress_context__ = exc.__suppress_context__
    clone.__traceback__ = None
    return clone


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    Events start *pending*, become *triggered* when given a value (or an
    exception), and are *processed* once the simulator has run their
    callbacks. Processes wait on events by yielding them.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the simulator has fired this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event triggered with.

        Raises :class:`SimulationError` when the event is still pending.
        """
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise _waiter_copy(self._exception)
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have the exception thrown into them.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._queue_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._queue_event(self, delay=delay)


class Process(Event):
    """A running generator; also an event that triggers when it returns.

    The process event's value is the generator's return value; if the
    generator raises, waiting processes observe the exception.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the process at the current time. Tracked as
        # ``_waiting_on`` so an interrupt delivered before the first resume
        # detaches it cleanly instead of double-resuming the process.
        bootstrap = Event(sim)
        bootstrap._triggered = True
        bootstrap.add_callback(self._resume)
        self._waiting_on = bootstrap
        sim._queue_event(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._waiting_on is not None:
            target = self._waiting_on
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup._triggered = True
        wakeup._exception = Interrupt(cause)
        wakeup.add_callback(self._resume)
        self.sim._queue_event(wakeup)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # stale wakeup for a process that already finished
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event._exception is not None:
                target = self._generator.throw(_waiter_copy(event._exception))
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt kills the process but is not an error
            # of the simulation itself.
            self.sim._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if self.sim.strict:
                raise
            self.fail(exc)
            return
        self.sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composition events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._pending = 0
        for event in self.events:
            if event.sim is not self.sim:
                raise SimulationError("cannot combine events across simulators")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            self._pending += 1
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self.events if ev.processed and ev.ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every component event has triggered."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as any component event triggers."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: a priority queue of (time, tiebreak, event).

    Parameters
    ----------
    strict:
        When True (default) exceptions escaping a process propagate out of
        :meth:`run`; when False they fail the process event instead so
        joiners can observe them.
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._heap: List = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        return Process(self, generator, name=name)

    # Alias mirroring SimPy naming, some callers read better with it.
    process = spawn

    # -- scheduling core ----------------------------------------------------

    def _queue_event(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), event))

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` after ``delay``; returns the underlying event."""
        event = Timeout(self, delay)
        event.add_callback(lambda _ev: callback())
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _tie, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``."""
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._heap:
            if until is not None and self.peek() > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until
