"""Lightweight tracing/metrics for simulation runs.

The DMX experiments need three aggregates per run: per-request latency
broken into phases (kernel / restructuring / movement), per-resource busy
time, and per-device energy integrals. :class:`Trace` collects interval
records; :class:`PhaseAccumulator` sums phase durations; both are cheap
enough to leave always-on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Interval",
    "FaultRecord",
    "Trace",
    "PhaseAccumulator",
    "exact_percentile",
    "summarize_latencies",
]


@dataclass(frozen=True)
class Interval:
    """One traced span of simulated time."""

    start: float
    end: float
    actor: str
    phase: str
    request_id: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FaultRecord:
    """One fault-related occurrence on the recovery plane.

    ``kind`` is an open vocabulary; the fault layer emits
    ``inject:fail`` / ``inject:hang`` / ``inject:delay`` for injected
    faults, ``timeout`` for missed deadlines, ``retry`` for re-attempts,
    ``fallback`` for DRX→CPU degradations, and ``giveup`` when recovery
    is exhausted.
    """

    time: float
    actor: str
    kind: str
    site: str = ""
    request_id: int = -1
    detail: str = ""


class Trace:
    """Append-only list of :class:`Interval` with simple queries.

    Besides timing intervals, a trace carries a parallel stream of
    :class:`FaultRecord` point events so injected faults, retries, and
    fallbacks show up alongside the spans they perturbed.
    """

    def __init__(
        self,
        note_listener: Optional[Callable[[FaultRecord], None]] = None,
    ) -> None:
        self.intervals: List[Interval] = []
        self.events: List[FaultRecord] = []
        # Request-id indexes: the report CLI asks for one request's
        # intervals/faults at a time, which would otherwise be an O(n)
        # scan per request (O(n^2) across a large serving run).
        self._intervals_by_request: Dict[int, List[Interval]] = {}
        self._events_by_request: Dict[int, List[FaultRecord]] = {}
        # Optional mirror: every fault note is forwarded (the telemetry
        # layer subscribes to surface fault events as instants).
        self._note_listener = note_listener

    def record(
        self,
        start: float,
        end: float,
        actor: str,
        phase: str,
        request_id: int = -1,
    ) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        interval = Interval(start, end, actor, phase, request_id)
        self.intervals.append(interval)
        self._intervals_by_request.setdefault(request_id, []).append(interval)

    def total(self, phase: Optional[str] = None, actor: Optional[str] = None) -> float:
        """Summed duration of intervals matching the filters."""
        return sum(
            iv.duration
            for iv in self.intervals
            if (phase is None or iv.phase == phase)
            and (actor is None or iv.actor == actor)
        )

    def phases(self) -> Dict[str, float]:
        """Total duration keyed by phase name."""
        out: Dict[str, float] = {}
        for iv in self.intervals:
            out[iv.phase] = out.get(iv.phase, 0.0) + iv.duration
        return out

    def for_request(self, request_id: int) -> List[Interval]:
        """Intervals recorded against one request (indexed lookup)."""
        return list(self._intervals_by_request.get(request_id, ()))

    # -- fault/recovery event stream ----------------------------------------

    def note(
        self,
        time: float,
        actor: str,
        kind: str,
        site: str = "",
        request_id: int = -1,
        detail: str = "",
    ) -> None:
        """Record one fault-plane point event."""
        event = FaultRecord(time, actor, kind, site, request_id, detail)
        self.events.append(event)
        self._events_by_request.setdefault(request_id, []).append(event)
        if self._note_listener is not None:
            self._note_listener(event)

    def faults(
        self,
        kind: Optional[str] = None,
        site: Optional[str] = None,
        request_id: Optional[int] = None,
    ) -> List[FaultRecord]:
        """Fault events matching the filters (all by default).

        A ``request_id`` filter uses the per-request index instead of
        scanning the full event stream.
        """
        events: Iterable[FaultRecord] = (
            self.events
            if request_id is None
            else self._events_by_request.get(request_id, ())
        )
        return [
            ev
            for ev in events
            if (kind is None or ev.kind == kind)
            and (site is None or ev.site == site)
        ]

    def fault_counts(self) -> Dict[str, int]:
        """Number of fault events keyed by kind."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out


class PhaseAccumulator:
    """Sums time per phase; the unit the breakdown figures are built from."""

    def __init__(self, phases: Iterable[str] = ()) -> None:
        self.totals: Dict[str, float] = {p: 0.0 for p in phases}

    def add(self, phase: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative phase duration: {duration}")
        self.totals[phase] = self.totals.get(phase, 0.0) + duration

    def merge(self, other: "PhaseAccumulator") -> "PhaseAccumulator":
        merged = PhaseAccumulator(self.totals)
        for phase, duration in self.totals.items():
            merged.totals[phase] = duration
        for phase, duration in other.totals.items():
            merged.totals[phase] = merged.totals.get(phase, 0.0) + duration
        return merged

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def fractions(self) -> Dict[str, float]:
        """Phase shares of the total (empty dict when total is zero)."""
        total = self.total
        if total <= 0:
            return {}
        return {phase: duration / total for phase, duration in self.totals.items()}


def exact_percentile(ordered: List[float], q: float) -> float:
    """Linear-interpolated percentile of a pre-sorted sample.

    The single quantile implementation shared by the batch summaries
    here and the serving-side :class:`~repro.serve.slo.LatencyTracker`,
    so both report identical values for identical samples.
    """
    n = len(ordered)
    if n == 0:
        raise ValueError("percentile of an empty sample")
    if n == 1:
        return ordered[0]
    rank = q * (n - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def summarize_latencies(latencies: List[float]) -> Dict[str, float]:
    """Mean / p50 / p95 / p99 / min / max summary of a latency sample."""
    if not latencies:
        raise ValueError("no latencies to summarize")
    ordered = sorted(latencies)
    n = len(ordered)
    return {
        "mean": sum(ordered) / n,
        "p50": exact_percentile(ordered, 0.50),
        "p95": exact_percentile(ordered, 0.95),
        "p99": exact_percentile(ordered, 0.99),
        "min": ordered[0],
        "max": ordered[-1],
        "count": float(n),
    }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports geomeans across benchmarks."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


__all__.append("geometric_mean")
