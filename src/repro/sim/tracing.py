"""Lightweight tracing/metrics for simulation runs.

The DMX experiments need three aggregates per run: per-request latency
broken into phases (kernel / restructuring / movement), per-resource busy
time, and per-device energy integrals. :class:`Trace` collects interval
records; :class:`PhaseAccumulator` sums phase durations; both are cheap
enough to leave always-on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Interval",
    "FaultRecord",
    "Trace",
    "PhaseAccumulator",
    "summarize_latencies",
]


@dataclass(frozen=True)
class Interval:
    """One traced span of simulated time."""

    start: float
    end: float
    actor: str
    phase: str
    request_id: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FaultRecord:
    """One fault-related occurrence on the recovery plane.

    ``kind`` is an open vocabulary; the fault layer emits
    ``inject:fail`` / ``inject:hang`` / ``inject:delay`` for injected
    faults, ``timeout`` for missed deadlines, ``retry`` for re-attempts,
    ``fallback`` for DRX→CPU degradations, and ``giveup`` when recovery
    is exhausted.
    """

    time: float
    actor: str
    kind: str
    site: str = ""
    request_id: int = -1
    detail: str = ""


class Trace:
    """Append-only list of :class:`Interval` with simple queries.

    Besides timing intervals, a trace carries a parallel stream of
    :class:`FaultRecord` point events so injected faults, retries, and
    fallbacks show up alongside the spans they perturbed.
    """

    def __init__(self) -> None:
        self.intervals: List[Interval] = []
        self.events: List[FaultRecord] = []

    def record(
        self,
        start: float,
        end: float,
        actor: str,
        phase: str,
        request_id: int = -1,
    ) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        self.intervals.append(Interval(start, end, actor, phase, request_id))

    def total(self, phase: Optional[str] = None, actor: Optional[str] = None) -> float:
        """Summed duration of intervals matching the filters."""
        return sum(
            iv.duration
            for iv in self.intervals
            if (phase is None or iv.phase == phase)
            and (actor is None or iv.actor == actor)
        )

    def phases(self) -> Dict[str, float]:
        """Total duration keyed by phase name."""
        out: Dict[str, float] = {}
        for iv in self.intervals:
            out[iv.phase] = out.get(iv.phase, 0.0) + iv.duration
        return out

    def for_request(self, request_id: int) -> List[Interval]:
        return [iv for iv in self.intervals if iv.request_id == request_id]

    # -- fault/recovery event stream ----------------------------------------

    def note(
        self,
        time: float,
        actor: str,
        kind: str,
        site: str = "",
        request_id: int = -1,
        detail: str = "",
    ) -> None:
        """Record one fault-plane point event."""
        self.events.append(
            FaultRecord(time, actor, kind, site, request_id, detail)
        )

    def faults(
        self,
        kind: Optional[str] = None,
        site: Optional[str] = None,
        request_id: Optional[int] = None,
    ) -> List[FaultRecord]:
        """Fault events matching the filters (all by default)."""
        return [
            ev
            for ev in self.events
            if (kind is None or ev.kind == kind)
            and (site is None or ev.site == site)
            and (request_id is None or ev.request_id == request_id)
        ]

    def fault_counts(self) -> Dict[str, int]:
        """Number of fault events keyed by kind."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out


class PhaseAccumulator:
    """Sums time per phase; the unit the breakdown figures are built from."""

    def __init__(self, phases: Iterable[str] = ()) -> None:
        self.totals: Dict[str, float] = {p: 0.0 for p in phases}

    def add(self, phase: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative phase duration: {duration}")
        self.totals[phase] = self.totals.get(phase, 0.0) + duration

    def merge(self, other: "PhaseAccumulator") -> "PhaseAccumulator":
        merged = PhaseAccumulator(self.totals)
        for phase, duration in self.totals.items():
            merged.totals[phase] = duration
        for phase, duration in other.totals.items():
            merged.totals[phase] = merged.totals.get(phase, 0.0) + duration
        return merged

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def fractions(self) -> Dict[str, float]:
        """Phase shares of the total (empty dict when total is zero)."""
        total = self.total
        if total <= 0:
            return {}
        return {phase: duration / total for phase, duration in self.totals.items()}


def summarize_latencies(latencies: List[float]) -> Dict[str, float]:
    """Mean / p50 / p99 / min / max summary of a latency sample."""
    if not latencies:
        raise ValueError("no latencies to summarize")
    ordered = sorted(latencies)
    n = len(ordered)

    def percentile(p: float) -> float:
        if n == 1:
            return ordered[0]
        rank = p * (n - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    return {
        "mean": sum(ordered) / n,
        "p50": percentile(0.50),
        "p99": percentile(0.99),
        "min": ordered[0],
        "max": ordered[-1],
        "count": float(n),
    }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports geomeans across benchmarks."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


__all__.append("geometric_mean")
