"""Shared resources for the DES engine.

Three resource flavours cover everything the DMX model needs:

* :class:`Resource` — a counted resource with a FIFO wait queue (CPU cores,
  DRX units, DMA engines).
* :class:`Server` — a capacity-1 (or N) resource where each job occupies it
  for a caller-computed service time; used for PCIe links, memory channels,
  and anything whose contention is "one transfer at a time".
* :class:`Store` — an unbounded FIFO of items with blocking ``get`` (command
  queues, interrupt queues).

All acquisitions are events, so processes compose them with timeouts and
conditions freely.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import AnyOf, Event, SimulationError, Simulator, Timeout, WaitTimeout

__all__ = ["Request", "Resource", "Server", "Store", "PriorityResource"]


class Request(Event):
    """The event returned by :meth:`Resource.request`.

    Triggers when the slot is granted. Use as a context token: pass it back
    to :meth:`Resource.release` when done.
    """

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """A counted resource with FIFO (or priority) granting.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of slots that may be held simultaneously.
    name:
        Optional label used in error messages and tracing.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        # Statistics for utilization reporting. ``total_wait_time`` covers
        # granted requests only; canceled requests are tracked separately
        # so cancellations don't skew the wait-per-grant figures.
        self.total_wait_time = 0.0
        self.granted_count = 0
        self.canceled_count = 0
        self.canceled_wait_time = 0.0
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def busy_time(self) -> float:
        """Integrated (slots-held x time), for utilization accounting."""
        return self._busy_time + self.in_use * (self.sim.now - self._last_change)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        req = Request(self, priority)
        req._requested_at = self.sim.now
        if self.in_use < self.capacity and not self._queue:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request not in self._users:
            raise SimulationError(
                f"release of a request not holding {self.name or 'resource'}"
            )
        self._account()
        self._users.remove(request)
        self._grant_waiters()

    def cancel(self, request: Request) -> None:
        """Withdraw a request that has not been granted yet."""
        try:
            self._queue.remove(request)
        except ValueError:
            raise SimulationError(
                f"cancel of a request that is not queued on "
                f"{self.name or 'resource'}"
            ) from None
        self.canceled_count += 1
        if getattr(request, "_requested_at", None) is not None:
            self.canceled_wait_time += self.sim.now - request._requested_at
            request._requested_at = None

    def relinquish(self, request: Request) -> None:
        """Release a granted request, or cancel a still-queued one.

        The cleanup primitive for interrupted processes, which cannot know
        whether their request was granted before the interrupt landed.
        """
        if request in self._users:
            self.release(request)
        else:
            self.cancel(request)

    def _grant(self, request: Request) -> None:
        self._account()
        self._users.append(request)
        self.granted_count += 1
        self.total_wait_time += self.sim.now - request._requested_at
        request.succeed(request)

    def _select_next(self) -> Request:
        return self._queue.popleft()

    def _grant_waiters(self) -> None:
        while self._queue and self.in_use < self.capacity:
            self._grant(self._select_next())

    def acquire(self) -> Generator:
        """Process helper: ``req = yield from res.acquire()``."""
        req = self.request()
        yield req
        return req

    def use(self, duration: float) -> Generator:
        """Process helper: hold one slot for ``duration`` time units.

        Interruption-safe: a process interrupted while still *queued*
        withdraws its request (it never held the slot, so releasing
        would corrupt the user list); once granted, the slot is always
        released.
        """
        req = self.request()
        try:
            yield req
            yield self.sim.timeout(duration)
        finally:
            self.relinquish(req)


class PriorityResource(Resource):
    """A :class:`Resource` that grants the lowest-priority-number first.

    Ties break FIFO. Useful for modeling interrupt handling preempting
    batch restructuring work on CPU cores.
    """

    def _select_next(self) -> Request:
        best_index = 0
        best = self._queue[0]
        for index, req in enumerate(self._queue):
            if req.priority < best.priority:
                best, best_index = req, index
        del self._queue[best_index]
        return best


class Server:
    """A resource where each job's occupancy time is known on entry.

    ``transfer(duration)`` is a process helper that waits for a free slot,
    occupies it for ``duration``, then releases — exactly the store-and-
    forward contention model used for PCIe links and DRAM channels.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        self.sim = sim
        self.name = name
        self._resource = Resource(sim, capacity=capacity, name=name)
        self.total_service_time = 0.0
        self.jobs_served = 0

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    @property
    def in_use(self) -> int:
        return self._resource.in_use

    def busy_time(self) -> float:
        return self._resource.busy_time()

    def utilization(self) -> float:
        """Fraction of elapsed time the server was busy (capacity-1 view)."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_time() / (self.sim.now * self._resource.capacity)

    def transfer(self, duration: float) -> Generator:
        """Occupy one slot for ``duration``; yields until complete.

        Interruption-safe: an interrupt delivered while the job is still
        queued withdraws the request instead of releasing an unheld slot.
        """
        if duration < 0:
            raise ValueError(f"negative service time: {duration}")
        req = self._resource.request()
        try:
            yield req
            yield self.sim.timeout(duration)
            self.total_service_time += duration
            self.jobs_served += 1
        finally:
            self._resource.relinquish(req)


class Store:
    """Unbounded FIFO with blocking ``get`` for producer/consumer processes."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.put_count = 0
        self.canceled_getters = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest waiting getter, if any."""
        self.put_count += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event triggering with the next item (immediately if available)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: Event) -> bool:
        """Withdraw a waiting getter (e.g. the loser of an ``AnyOf`` race).

        An abandoned getter left in the queue silently swallows the next
        :meth:`put`, starving whichever consumer actually needed the item —
        every timeout race over :meth:`get` must cancel the losing event.
        Returns True when the getter was still waiting.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        self.canceled_getters += 1
        return True

    def get_or_timeout(self, timeout_s: float) -> Generator:
        """Process helper: next item, or :class:`WaitTimeout` after ``timeout_s``.

        The losing getter is canceled on timeout so it cannot swallow an
        item a later consumer needed.
        """
        get = self.get()
        yield AnyOf(self.sim, [get, Timeout(self.sim, timeout_s)])
        if get.triggered:
            return get.value
        self.cancel(get)
        raise WaitTimeout(
            f"get on {self.name or 'store'} exceeded {timeout_s} s"
        )

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (does not consume)."""
        return list(self._items)
