"""Shared resources for the DES engine.

Three resource flavours cover everything the DMX model needs:

* :class:`Resource` — a counted resource with a FIFO wait queue (CPU cores,
  DRX units, DMA engines).
* :class:`Server` — a capacity-1 (or N) resource where each job occupies it
  for a caller-computed service time; used for PCIe links, memory channels,
  and anything whose contention is "one transfer at a time".
* :class:`Store` — an unbounded FIFO of items with blocking ``get`` (command
  queues, interrupt queues).

All acquisitions are events, so processes compose them with timeouts and
conditions freely.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "Server", "Store", "PriorityResource"]


class Request(Event):
    """The event returned by :meth:`Resource.request`.

    Triggers when the slot is granted. Use as a context token: pass it back
    to :meth:`Resource.release` when done.
    """

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """A counted resource with FIFO (or priority) granting.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of slots that may be held simultaneously.
    name:
        Optional label used in error messages and tracing.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        # Statistics for utilization reporting.
        self.total_wait_time = 0.0
        self.granted_count = 0
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def busy_time(self) -> float:
        """Integrated (slots-held x time), for utilization accounting."""
        return self._busy_time + self.in_use * (self.sim.now - self._last_change)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        req = Request(self, priority)
        req._requested_at = self.sim.now
        if self.in_use < self.capacity and not self._queue:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request not in self._users:
            raise SimulationError(
                f"release of a request not holding {self.name or 'resource'}"
            )
        self._account()
        self._users.remove(request)
        self._grant_waiters()

    def cancel(self, request: Request) -> None:
        """Withdraw a request that has not been granted yet."""
        try:
            self._queue.remove(request)
        except ValueError:
            raise SimulationError("cancel of a request that is not queued")

    def _grant(self, request: Request) -> None:
        self._account()
        self._users.append(request)
        self.granted_count += 1
        self.total_wait_time += self.sim.now - request._requested_at
        request.succeed(request)

    def _select_next(self) -> Request:
        return self._queue.popleft()

    def _grant_waiters(self) -> None:
        while self._queue and self.in_use < self.capacity:
            self._grant(self._select_next())

    def acquire(self) -> Generator:
        """Process helper: ``req = yield from res.acquire()``."""
        req = self.request()
        yield req
        return req

    def use(self, duration: float) -> Generator:
        """Process helper: hold one slot for ``duration`` time units."""
        req = self.request()
        yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(req)


class PriorityResource(Resource):
    """A :class:`Resource` that grants the lowest-priority-number first.

    Ties break FIFO. Useful for modeling interrupt handling preempting
    batch restructuring work on CPU cores.
    """

    def _select_next(self) -> Request:
        best_index = 0
        best = self._queue[0]
        for index, req in enumerate(self._queue):
            if req.priority < best.priority:
                best, best_index = req, index
        del self._queue[best_index]
        return best


class Server:
    """A resource where each job's occupancy time is known on entry.

    ``transfer(duration)`` is a process helper that waits for a free slot,
    occupies it for ``duration``, then releases — exactly the store-and-
    forward contention model used for PCIe links and DRAM channels.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        self.sim = sim
        self.name = name
        self._resource = Resource(sim, capacity=capacity, name=name)
        self.total_service_time = 0.0
        self.jobs_served = 0

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    @property
    def in_use(self) -> int:
        return self._resource.in_use

    def busy_time(self) -> float:
        return self._resource.busy_time()

    def utilization(self) -> float:
        """Fraction of elapsed time the server was busy (capacity-1 view)."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_time() / (self.sim.now * self._resource.capacity)

    def transfer(self, duration: float) -> Generator:
        """Occupy one slot for ``duration``; yields until complete."""
        if duration < 0:
            raise ValueError(f"negative service time: {duration}")
        req = self._resource.request()
        yield req
        try:
            yield self.sim.timeout(duration)
            self.total_service_time += duration
            self.jobs_served += 1
        finally:
            self._resource.release(req)


class Store:
    """Unbounded FIFO with blocking ``get`` for producer/consumer processes."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.put_count = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest waiting getter, if any."""
        self.put_count += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event triggering with the next item (immediately if available)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (does not consume)."""
        return list(self._items)
