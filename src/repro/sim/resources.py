"""Shared resources for the DES engine.

Three resource flavours cover everything the DMX model needs:

* :class:`Resource` — a counted resource with a FIFO wait queue (CPU cores,
  DRX units, DMA engines).
* :class:`Server` — a capacity-1 (or N) resource where each job occupies it
  for a caller-computed service time; used for PCIe links, memory channels,
  and anything whose contention is "one transfer at a time".
* :class:`Store` — an unbounded FIFO of items with blocking ``get`` (command
  queues, interrupt queues).

All acquisitions are events, so processes compose them with timeouts and
conditions freely.

Hot-path notes (DESIGN.md §12): held slots live in an insertion-ordered
dict so membership/release are O(1) (the old list made every ``release``
an O(n) scan); :class:`PriorityResource` selects its next grantee from a
lazily-pruned heap instead of scanning the whole queue; and
:meth:`Store.get_or_timeout` cancels the losing :class:`Timeout` so a
generous unfired deadline never drags out final ``sim.now``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, Generator, List, Optional

from .engine import AnyOf, Event, SimulationError, Simulator, Timeout, WaitTimeout

__all__ = ["Request", "Resource", "Server", "Store", "PriorityResource"]


class Request(Event):
    """The event returned by :meth:`Resource.request`.

    Triggers when the slot is granted. Use as a context token: pass it back
    to :meth:`Resource.release` when done.
    """

    __slots__ = ("resource", "priority", "_requested_at", "_queued")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self._requested_at: Optional[float] = None
        self._queued = False


class Resource:
    """A counted resource with FIFO (or priority) granting.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of slots that may be held simultaneously.
    name:
        Optional label used in error messages and tracing.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        # Insertion-ordered; used as an O(1)-membership set.
        self._users: Dict[Request, None] = {}
        self._queue: Deque[Request] = deque()
        # Statistics for utilization reporting. ``total_wait_time`` covers
        # granted requests only; canceled requests are tracked separately
        # so cancellations don't skew the wait-per-grant figures.
        self.total_wait_time = 0.0
        self.granted_count = 0
        self.canceled_count = 0
        self.canceled_wait_time = 0.0
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def busy_time(self) -> float:
        """Integrated (slots-held x time), for utilization accounting."""
        return self._busy_time + self.in_use * (self.sim.now - self._last_change)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += len(self._users) * (now - self._last_change)
        self._last_change = now

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        req = Request(self, priority)
        sim = self.sim
        now = sim.now
        req._requested_at = now
        users = self._users
        if len(users) < self.capacity and self.queue_length == 0:
            # Uncontended fast path: grant inline (zero wait, the event
            # is fresh so the triggered check of ``succeed`` is moot).
            self._busy_time += len(users) * (now - self._last_change)
            self._last_change = now
            users[req] = None
            self.granted_count += 1
            req._triggered = True
            req._value = req
            heappush(sim._heap, (now, sim._next_seq(), req))
        else:
            self._enqueue(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        users = self._users
        if request not in users:
            raise SimulationError(
                f"release of a request not holding {self.name or 'resource'}"
            )
        now = self.sim.now
        self._busy_time += len(users) * (now - self._last_change)
        self._last_change = now
        del users[request]
        self._grant_waiters()

    def cancel(self, request: Request) -> None:
        """Withdraw a request that has not been granted yet."""
        if not request._queued:
            # ``from None`` keeps the contract of the pre-rework
            # implementation (which suppressed an internal ValueError).
            raise SimulationError(
                f"cancel of a request that is not queued on "
                f"{self.name or 'resource'}"
            ) from None
        self._remove_queued(request)
        self.canceled_count += 1
        if request._requested_at is not None:
            self.canceled_wait_time += self.sim.now - request._requested_at
            request._requested_at = None

    def relinquish(self, request: Request) -> None:
        """Release a granted request, or cancel a still-queued one.

        The cleanup primitive for interrupted processes, which cannot know
        whether their request was granted before the interrupt landed.
        """
        if request in self._users:
            self.release(request)
        else:
            self.cancel(request)

    def _grant(self, request: Request) -> None:
        sim = self.sim
        now = sim.now
        self._busy_time += len(self._users) * (now - self._last_change)
        self._last_change = now
        self._users[request] = None
        self.granted_count += 1
        self.total_wait_time += now - request._requested_at
        request._triggered = True
        request._value = request
        heappush(sim._heap, (now, sim._next_seq(), request))

    # -- wait-queue strategy (overridden by PriorityResource) ----------------

    def _enqueue(self, request: Request) -> None:
        request._queued = True
        self._queue.append(request)

    def _select_next(self) -> Request:
        request = self._queue.popleft()
        request._queued = False
        return request

    def _remove_queued(self, request: Request) -> None:
        self._queue.remove(request)
        request._queued = False

    def _grant_waiters(self) -> None:
        queue = self._queue
        users = self._users
        capacity = self.capacity
        while queue and len(users) < capacity:
            request = queue.popleft()
            request._queued = False
            self._grant(request)

    def acquire(self) -> Generator:
        """Process helper: ``req = yield from res.acquire()``."""
        req = self.request()
        yield req
        return req

    def use(self, duration: float) -> Generator:
        """Process helper: hold one slot for ``duration`` time units.

        Interruption-safe: a process interrupted while still *queued*
        withdraws its request (it never held the slot, so releasing
        would corrupt the user list); once granted, the slot is always
        released.
        """
        req = self.request()
        try:
            yield req
            yield self.sim.timeout(duration)
        finally:
            self.relinquish(req)


class PriorityResource(Resource):
    """A :class:`Resource` that grants the lowest-priority-number first.

    Ties break FIFO. Useful for modeling interrupt handling preempting
    batch restructuring work on CPU cores.

    The wait queue is a ``(priority, seq, request)`` heap with lazy
    pruning: cancellation just clears the request's queued flag, and
    :meth:`_select_next` discards dead entries as they surface — O(log n)
    per grant instead of the old O(n) scan of the whole queue.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        super().__init__(sim, capacity=capacity, name=name)
        self._pheap: List = []
        self._pseq = 0
        self._plive = 0

    @property
    def queue_length(self) -> int:
        return self._plive

    def _enqueue(self, request: Request) -> None:
        request._queued = True
        heappush(self._pheap, (request.priority, self._pseq, request))
        self._pseq += 1
        self._plive += 1

    def _select_next(self) -> Request:
        heap = self._pheap
        while True:
            request = heappop(heap)[2]
            if request._queued:
                request._queued = False
                self._plive -= 1
                return request

    def _remove_queued(self, request: Request) -> None:
        # Lazy deletion: the heap entry stays until it surfaces.
        request._queued = False
        self._plive -= 1

    def _grant_waiters(self) -> None:
        while self._plive and len(self._users) < self.capacity:
            self._grant(self._select_next())


class Server:
    """A resource where each job's occupancy time is known on entry.

    ``transfer(duration)`` is a process helper that waits for a free slot,
    occupies it for ``duration``, then releases — exactly the store-and-
    forward contention model used for PCIe links and DRAM channels.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        self.sim = sim
        self.name = name
        self._resource = Resource(sim, capacity=capacity, name=name)
        self.total_service_time = 0.0
        self.jobs_served = 0

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    @property
    def in_use(self) -> int:
        return self._resource.in_use

    def busy_time(self) -> float:
        return self._resource.busy_time()

    def utilization(self) -> float:
        """Fraction of elapsed time the server was busy (capacity-1 view)."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_time() / (self.sim.now * self._resource.capacity)

    def transfer(self, duration: float) -> Generator:
        """Occupy one slot for ``duration``; yields until complete.

        Interruption-safe: an interrupt delivered while the job is still
        queued withdraws the request instead of releasing an unheld slot.
        """
        if duration < 0:
            raise ValueError(f"negative service time: {duration}")
        req = self._resource.request()
        try:
            yield req
            yield self.sim.timeout(duration)
            self.total_service_time += duration
            self.jobs_served += 1
        finally:
            self._resource.relinquish(req)


class Store:
    """Unbounded FIFO with blocking ``get`` for producer/consumer processes."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.put_count = 0
        self.canceled_getters = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest waiting getter, if any."""
        self.put_count += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event triggering with the next item (immediately if available)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: Event) -> bool:
        """Withdraw a waiting getter (e.g. the loser of an ``AnyOf`` race).

        An abandoned getter left in the queue silently swallows the next
        :meth:`put`, starving whichever consumer actually needed the item —
        every timeout race over :meth:`get` must cancel the losing event.
        Returns True when the getter was still waiting.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        self.canceled_getters += 1
        return True

    def get_or_timeout(self, timeout_s: float) -> Generator:
        """Process helper: next item, or :class:`WaitTimeout` after ``timeout_s``.

        Whichever side loses the race is canceled: a timed-out getter
        cannot swallow an item a later consumer needed, and a beaten
        :class:`Timeout` cannot drag the end of the simulation (and every
        utilization denominator) out to its unfired deadline.
        """
        get = self.get()
        deadline = Timeout(self.sim, timeout_s)
        yield AnyOf(self.sim, [get, deadline])
        if get.triggered:
            deadline.cancel()
            return get.value
        self.cancel(get)
        raise WaitTimeout(
            f"get on {self.name or 'store'} exceeded {timeout_s} s"
        )

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (does not consume)."""
        return list(self._items)
