"""Discrete-event simulation engine used by all timing models."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    WaitTimeout,
)
from .resources import PriorityResource, Request, Resource, Server, Store
from .tracing import (
    FaultRecord,
    Interval,
    PhaseAccumulator,
    Trace,
    exact_percentile,
    geometric_mean,
    summarize_latencies,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "WaitTimeout",
    "FaultRecord",
    "PriorityResource",
    "Request",
    "Resource",
    "Server",
    "Store",
    "Interval",
    "PhaseAccumulator",
    "Trace",
    "exact_percentile",
    "geometric_mean",
    "summarize_latencies",
]
