"""System energy accounting (RAPL-style CPU + card + PCIe models)."""

from .models import EnergyBreakdown, EnergyModel, EnergyParams

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyParams"]
