"""System energy model (Sec. VI "Energy evaluation").

The paper measures CPU energy with RAPL, accelerator energy as
post-synthesis power x kernel time, and adds PCIe switch and transfer
energy. This model mirrors that accounting:

* **CPU** — package idle power for the whole run plus per-core-second
  active energy (a RAPL-like decomposition);
* **accelerators** — card power x busy time, plus a small idle floor;
* **DRX units** — unit power x busy time, plus *per-unit static glue
  power* for the whole run. The static term is what makes
  Bump-in-the-Wire (one DRX per accelerator, each with its own PCIe
  multiplexer and glue logic) lose to Standalone (fewer, shared cards)
  at high concurrency in Fig. 15 — replicated glue is paid whether or
  not the unit is busy;
* **PCIe** — energy per transferred byte plus per-switch static power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["EnergyParams", "EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyParams:
    """Power/energy coefficients (representative datasheet values)."""

    cpu_idle_w: float = 55.0  # package + DRAM idle
    cpu_core_active_w: float = 10.5  # per busy core
    accelerator_active_w: float = 30.0  # VU9P-class card under load
    accelerator_idle_w: float = 4.0
    drx_active_w: float = 12.0
    drx_static_w: float = 10.0  # glue logic + dual-port PCIe mux per unit
    pcie_pj_per_byte: float = 60.0  # ~7.5 pJ/bit end-to-end
    switch_static_w: float = 7.0  # PEX-class switch package

    def __post_init__(self) -> None:
        for name in ("cpu_idle_w", "cpu_core_active_w", "accelerator_active_w",
                     "drx_active_w", "pcie_pj_per_byte", "switch_static_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per component for one run."""

    cpu_j: float
    accelerators_j: float
    drx_j: float
    pcie_transfer_j: float
    switches_j: float

    @property
    def total_j(self) -> float:
        return (
            self.cpu_j
            + self.accelerators_j
            + self.drx_j
            + self.pcie_transfer_j
            + self.switches_j
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "cpu": self.cpu_j,
            "accelerators": self.accelerators_j,
            "drx": self.drx_j,
            "pcie_transfer": self.pcie_transfer_j,
            "switches": self.switches_j,
            "total": self.total_j,
        }


class EnergyModel:
    """Integrates component powers over one simulated run."""

    def __init__(self, params: EnergyParams = EnergyParams()):
        self.params = params

    def evaluate(
        self,
        elapsed_s: float,
        cpu_busy_core_seconds: float,
        accelerator_busy_seconds: float,
        n_accelerators: int,
        drx_busy_seconds: float,
        n_drx_units: int,
        bytes_moved: int,
        n_switches: int,
        drx_active_w: float = None,
    ) -> EnergyBreakdown:
        """Energy for a run described by its utilization aggregates."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        p = self.params
        cpu = p.cpu_idle_w * elapsed_s + p.cpu_core_active_w * cpu_busy_core_seconds
        accel = (
            p.accelerator_active_w * accelerator_busy_seconds
            + p.accelerator_idle_w * n_accelerators * elapsed_s
        )
        # Bigger DRX units (standalone cards) carry proportionally more
        # glue/static power than a bump-in-the-wire unit.
        active_w = drx_active_w or p.drx_active_w
        static_scale = active_w / p.drx_active_w if p.drx_active_w else 1.0
        drx = (
            active_w * drx_busy_seconds
            + p.drx_static_w * static_scale * n_drx_units * elapsed_s
        )
        pcie = p.pcie_pj_per_byte * 1e-12 * bytes_moved
        switches = p.switch_static_w * n_switches * elapsed_s
        return EnergyBreakdown(
            cpu_j=cpu,
            accelerators_j=accel,
            drx_j=drx,
            pcie_transfer_j=pcie,
            switches_j=switches,
        )

    def evaluate_system(self, system, elapsed_s: float = None) -> EnergyBreakdown:
        """Convenience wrapper over a finished :class:`DMXSystem` run."""
        elapsed = elapsed_s if elapsed_s is not None else system.sim.now
        return self.evaluate(
            elapsed_s=elapsed,
            cpu_busy_core_seconds=system.cpu.busy_seconds,
            accelerator_busy_seconds=system.accelerator_busy_seconds(),
            n_accelerators=len(system.accel_devices),
            drx_busy_seconds=system.drx_busy_seconds(),
            n_drx_units=len(system.drx_devices),
            bytes_moved=system.bytes_moved(),
            n_switches=system.n_switches,
            drx_active_w=system.drx_devices and next(
                iter(system.drx_devices.values())
            ).config.power_w or None,
        )
