"""Restructuring backends + the cost-based per-leg planner.

See DESIGN.md §13. The package models four ways to execute a motion
stage's restructuring leg — DRX, host CPU, an Intel-DSA-style streaming
engine, and XDMA-style transformation fused into the DMA descriptor —
behind one :class:`RestructureBackend` interface, and a
:class:`LegPlanner` that prices each eligible backend under live
contention and picks the cheapest.
"""

from .base import (
    BACKEND_CPU,
    BACKEND_DRX,
    BACKEND_DSA,
    BACKEND_KINDS,
    BACKEND_XDMA,
    CostEstimate,
    CPUBackend,
    DRXBackend,
    LegSpec,
    RestructureBackend,
)
from .dsa import DSABackend, DSAConfig, DSADevice
from .planner import LegPlanner, PlanDecision, PlannerConfig
from .xdma import XDMABackend, XDMAConfig, XDMADevice

__all__ = [
    "BACKEND_CPU",
    "BACKEND_DRX",
    "BACKEND_DSA",
    "BACKEND_KINDS",
    "BACKEND_XDMA",
    "CostEstimate",
    "CPUBackend",
    "DRXBackend",
    "DSABackend",
    "DSAConfig",
    "DSADevice",
    "LegPlanner",
    "LegSpec",
    "PlanDecision",
    "PlannerConfig",
    "RestructureBackend",
    "XDMABackend",
    "XDMAConfig",
    "XDMADevice",
]
