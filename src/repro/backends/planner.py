"""Cost-based per-leg backend selection.

The :class:`LegPlanner` sits at ``DMXSystem`` motion time and turns the
static "DRX with CPU fallback" routing into a live scheduling decision:
every restructuring leg is priced on every *eligible* candidate backend
(chain shape, payload size, transform kind, and current queue depths all
feed the estimates), the bids are ranked, and the cheapest backend whose
resilience breaker admits traffic wins. Open breakers remove a backend
from the candidate set **before** any deadline is burned — the planner
consults :meth:`ControlPlane.admit` on the ranked order, so a tripped
DRX card costs one dictionary lookup, not a 100 ms timeout.

Determinism: estimates are pure functions of the leg and current DES
state, candidates are evaluated in the fixed :data:`BACKEND_KINDS`
order, and ties break on declaration order — two equal-seed runs make
byte-identical decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .base import (
    BACKEND_CPU,
    BACKEND_DRX,
    BACKEND_DSA,
    BACKEND_KINDS,
    BACKEND_XDMA,
    CostEstimate,
    CPUBackend,
    DRXBackend,
    LegSpec,
    RestructureBackend,
)
from .dsa import DSABackend, DSAConfig
from .xdma import XDMABackend, XDMAConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.system import DMXSystem

__all__ = ["PlannerConfig", "PlanDecision", "LegPlanner"]


def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e6:.2f}us"


@dataclass(frozen=True)
class PlannerConfig:
    """Arms the per-leg planner on a :class:`DMXSystem`.

    ``candidates`` is the backend pool the planner may pick from; the
    CPU backend is always constructed as the unconditional fallback even
    when it is not a candidate. Restricting candidates to
    ``("drx", "cpu")`` reproduces the pre-planner engine byte-for-byte
    (the golden-identity property the benchmark suite pins).
    """

    candidates: Tuple[str, ...] = BACKEND_KINDS
    dsa: DSAConfig = field(default_factory=DSAConfig)
    xdma: XDMAConfig = field(default_factory=XDMAConfig)
    #: Scales how strongly live queue depth repels the planner.
    queue_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError("candidates must not be empty")
        for kind in self.candidates:
            if kind not in BACKEND_KINDS:
                raise ValueError(
                    f"unknown backend kind {kind!r}; "
                    f"expected one of {BACKEND_KINDS}"
                )
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError("candidates must be unique")
        if self.queue_weight < 0:
            raise ValueError("queue_weight must be non-negative")


@dataclass
class PlanDecision:
    """One leg's routing outcome, recorded onto the request record."""

    kind: str
    backend: RestructureBackend
    reason: str
    probe: bool = False
    estimate: Optional[CostEstimate] = None
    #: Backends that ranked cheaper but were breaker-denied: the
    #: reroutes the resilience plane gets notified about.
    skipped: List[Tuple[str, str]] = field(default_factory=list)
    #: True when the candidate set was restricted by the brownout CPU
    #: cost ceiling (the planner-aware FORCE_CPU tier).
    constrained: bool = False


class LegPlanner:
    """Scores every eligible backend for a leg; picks the cheapest."""

    def __init__(self, system: "DMXSystem", config: PlannerConfig):
        self.system = system
        self.config = config
        self.backends: Dict[str, RestructureBackend] = {}
        for kind in BACKEND_KINDS:
            if kind in config.candidates:
                self.backends[kind] = self._build(kind)
        # The CPU path is the unconditional fallback: always present.
        if BACKEND_CPU not in self.backends:
            self.backends[BACKEND_CPU] = CPUBackend(
                system, config.queue_weight
            )

    def _build(self, kind: str) -> RestructureBackend:
        w = self.config.queue_weight
        if kind == BACKEND_DRX:
            return DRXBackend(self.system, w)
        if kind == BACKEND_CPU:
            return CPUBackend(self.system, w)
        if kind == BACKEND_DSA:
            return DSABackend(self.system, self.config.dsa, w)
        if kind == BACKEND_XDMA:
            return XDMABackend(self.system, self.config.xdma, w)
        raise ValueError(f"unknown backend kind {kind!r}")

    def kinds(self) -> Tuple[str, ...]:
        """Constructed backend kinds, in evaluation order."""
        return tuple(k for k in BACKEND_KINDS if k in self.backends)

    def backend(self, kind: str) -> RestructureBackend:
        return self.backends[kind]

    def forced_cpu(self, reason: str = "brownout") -> PlanDecision:
        """A decision the brownout/force-cpu control path dictates."""
        return PlanDecision(
            kind=BACKEND_CPU,
            backend=self.backends[BACKEND_CPU],
            reason=f"forced-cpu({reason})",
        )

    def plan(self, leg: LegSpec, cpu_ceiling: bool = False) -> PlanDecision:
        """Price ``leg`` on every candidate; return the cheapest admitted.

        Pure with respect to simulated time: estimates read live queue
        depths but never advance the clock or touch RNG state.

        A backend whose dispatch target sits on a *decommissioned*
        failure domain (crashed and detected, breaker DEAD) is removed
        from the candidate set before it is even priced — decommission
        means no new legs are planned onto the domain, full stop.

        ``cpu_ceiling=True`` is the planner-aware brownout FORCE_CPU
        tier: candidates pricier than the CPU estimate are dropped, so
        the tier means "cheapest *surviving* backend no worse than CPU"
        instead of blindly pessimizing legs whose accelerator path is
        cheaper than host restructuring.
        """
        domains = getattr(self.system, "domains", None)
        ceiling = (
            self.backends[BACKEND_CPU].estimate(leg).total_s
            if cpu_ceiling
            else None
        )
        scored: List[Tuple[float, int, str, RestructureBackend,
                           CostEstimate]] = []
        notes: List[str] = []
        for index, kind in enumerate(BACKEND_KINDS):
            if kind not in self.config.candidates:
                continue
            backend = self.backends[kind]
            if not backend.eligible(leg):
                notes.append(f"{kind}:ineligible")
                continue
            if domains is not None:
                target = backend.target(leg)
                if target and domains.is_down(target):
                    notes.append(f"{kind}:decommissioned")
                    continue
            est = backend.estimate(leg)
            if ceiling is not None and est.total_s > ceiling:
                notes.append(f"{kind}:over-cpu-ceiling")
                continue
            scored.append((est.total_s, index, kind, backend, est))
        scored.sort(key=lambda entry: (entry[0], entry[1]))
        ranking = " < ".join(
            f"{kind}:{_fmt_s(total)}" for total, _, kind, _b, _e in scored
        )
        if ceiling is not None:
            notes.append(f"cpu-ceiling:{_fmt_s(ceiling)}")
        control = self.system.control
        skipped: List[Tuple[str, str]] = []
        for total, _index, kind, backend, est in scored:
            target = backend.target(leg)
            probe = False
            if target and control is not None:
                decision = control.admit(target)
                if not decision.allow:
                    skipped.append((kind, target))
                    notes.append(f"{kind}:breaker-open")
                    continue
                probe = decision.probe
            reason = ranking
            if notes:
                reason += " [" + ",".join(notes) + "]"
            return PlanDecision(
                kind=kind, backend=backend, reason=reason, probe=probe,
                estimate=est, skipped=skipped, constrained=cpu_ceiling,
            )
        # Every candidate ineligible, decommissioned, over the ceiling,
        # or breaker-denied: CPU catches it.
        reason = "no-eligible-backend"
        if notes:
            reason += " [" + ",".join(notes) + "]"
        return PlanDecision(
            kind=BACKEND_CPU,
            backend=self.backends[BACKEND_CPU],
            reason=reason,
            skipped=skipped,
            constrained=cpu_ceiling,
        )
