"""The restructuring-backend interface the per-leg planner scores.

A *backend* is one way to execute the restructuring half of a motion
stage — the existing DRX units and host-CPU path, plus the two engines
modeled from the related work: an Intel-DSA-style on-chip streaming
engine (shared work queue, descriptor batching, on-core completion
polling) and XDMA-style layout transformation fused into the DMA
descriptor itself (restructuring in-flight, no separate accelerator
hop).

Every backend answers the same three questions about one
:class:`LegSpec` (a motion stage bound to concrete endpoints):

* **can it run this leg at all?** — :meth:`RestructureBackend.eligible`
  (XDMA only expresses affine layout transforms; everything else is
  universal);
* **what would it cost right now?** — :meth:`RestructureBackend.estimate`
  returns a :class:`CostEstimate` splitting contention-free service time
  from the expected queueing behind the backend's *current* occupancy
  (the live signal the planner keys on);
* **run it** — :meth:`RestructureBackend.execute` delegates to the
  owning :class:`~repro.core.system.DMXSystem`'s motion helpers so
  span/phase accounting stays identical to the non-planned paths.

Estimates are pure functions of the leg and the current DES state: no
randomness, no clock advancement — a planner consultation costs zero
simulated time and two equal-seed runs score identically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from ..core.chain import MotionStage
from ..core.placement import Mode
from ..profiles import WorkProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.system import DMXSystem, PhaseAccumulator, _RequestState
    from ..drx.microarch import DRXDevice
    from ..telemetry import SpanContext

__all__ = [
    "BACKEND_DRX", "BACKEND_CPU", "BACKEND_DSA", "BACKEND_XDMA",
    "BACKEND_KINDS", "LegSpec", "CostEstimate", "RestructureBackend",
    "DRXBackend", "CPUBackend",
]

BACKEND_DRX = "drx"
BACKEND_CPU = "cpu"
BACKEND_DSA = "dsa"
BACKEND_XDMA = "xdma"

#: Every backend kind, in the planner's deterministic evaluation order.
BACKEND_KINDS = (BACKEND_XDMA, BACKEND_DSA, BACKEND_DRX, BACKEND_CPU)


@dataclass(frozen=True)
class LegSpec:
    """One motion stage's restructuring leg, bound to endpoints.

    ``fused`` is the profile the DRX/DSA engines would execute (with
    scratchpad fusion applied); eligibility checks read the *unfused*
    ``stage.profile`` character, which describes the transform itself.
    ``count`` > 1 marks a coalesced batch leg: all members execute on
    the one backend the planner picks (batch members always agree on a
    backend by construction — the decision is per coalesced leg).
    ``drx`` is the home DRX unit the placement mode assigns this leg.
    """

    mode: Mode
    src: str
    dst: str
    staging: str
    stage: MotionStage
    fused: WorkProfile
    threads: int
    count: int = 1
    drx: Optional["DRXDevice"] = None


@dataclass(frozen=True)
class CostEstimate:
    """One backend's priced bid for a leg (seconds).

    ``service_s`` is the contention-free end-to-end leg estimate
    (movement + restructuring + control overheads); ``queue_s`` the
    expected wait behind the backend's current queue depth. The planner
    ranks on ``total_s``.
    """

    service_s: float
    queue_s: float
    depth: int
    #: Estimated energy for the leg (engine + host control time); carried
    #: for attribution/figures — the planner ranks on time, not energy.
    energy_j: float = 0.0

    @property
    def total_s(self) -> float:
        return self.service_s + self.queue_s


class RestructureBackend(abc.ABC):
    """One way to run a motion stage's restructuring leg."""

    kind: str = ""

    def __init__(self, system: "DMXSystem", queue_weight: float = 1.0):
        self.system = system
        self.queue_weight = queue_weight

    def eligible(self, leg: LegSpec) -> bool:
        """Can this backend execute ``leg`` at all?"""
        return True

    def target(self, leg: LegSpec) -> str:
        """Health/breaker target name for this leg (empty: ungated)."""
        return self.kind

    @abc.abstractmethod
    def queue_depth(self, leg: LegSpec) -> int:
        """Jobs currently occupying + waiting on the backend's resource."""

    @abc.abstractmethod
    def estimate(self, leg: LegSpec) -> CostEstimate:
        """Price ``leg`` under current contention (pure, zero sim time)."""

    @abc.abstractmethod
    def execute(
        self,
        leg: LegSpec,
        phases: "PhaseAccumulator",
        state: Optional["_RequestState"],
        ctx: "SpanContext",
    ) -> Generator:
        """Process: run the leg end to end (movement + restructuring)."""


class DRXBackend(RestructureBackend):
    """The existing DRX path behind the backend interface.

    Estimation and execution both use the leg's *home* unit (the one the
    placement mode assigns), so a planner restricted to ``{drx, cpu}``
    reproduces the pre-planner engine exactly.
    """

    kind = BACKEND_DRX

    def eligible(self, leg: LegSpec) -> bool:
        return leg.drx is not None

    def target(self, leg: LegSpec) -> str:
        return leg.drx.name

    def queue_depth(self, leg: LegSpec) -> int:
        server = leg.drx._server
        return server.queue_length + server.in_use

    def estimate(self, leg: LegSpec) -> CostEstimate:
        s = self.system
        n = leg.count
        timing = leg.drx.timing
        if n > 1:
            restructure = timing.time_for_profile_batch([leg.fused] * n)
        else:
            restructure = timing.time_for_profile(leg.fused)
        chain_extra = (n - 1) * s.dma.costs.chained_descriptor_s
        notify = s.notifier.costs.interrupt_s
        out_est = s.transfer_estimate(
            leg.staging, leg.dst, n * leg.stage.output_bytes
        ) + chain_extra
        if leg.mode is Mode.PCIE_INTEGRATED:
            # Line-rate processing: ingest overlaps the restructuring.
            ingest = s.fabric.unloaded_latency(
                leg.src, leg.staging, n * leg.stage.input_bytes
            )
            service = max(ingest, restructure) + notify + out_est
        else:
            in_est = s.transfer_estimate(
                leg.src, leg.staging, n * leg.stage.input_bytes
            ) + chain_extra
            service = in_est + restructure + notify + out_est
        depth = self.queue_depth(leg)
        queue = depth * timing.time_for_profile(leg.fused) * self.queue_weight
        energy = restructure * leg.drx.config.power_w
        return CostEstimate(
            service_s=service, queue_s=queue, depth=depth, energy_j=energy
        )

    def execute(self, leg, phases, state, ctx) -> Generator:
        s = self.system
        if leg.count == 1:
            yield from s._drx_motion(
                leg.mode, leg.src, leg.dst, leg.staging, leg.drx, leg.stage,
                leg.fused, phases, state, ctx,
            )
        else:
            yield from s._batched_drx_motion(
                leg.mode, leg.src, leg.dst, leg.staging, leg.drx, leg.stage,
                leg.fused, leg.count, phases, state, ctx,
            )


class CPUBackend(RestructureBackend):
    """Host-CPU restructuring via host memory (the Multi-Axl path).

    Always eligible and never breaker-gated: the CPU is the system's
    unconditional fallback, exactly as in the pre-planner recovery plane.
    """

    kind = BACKEND_CPU

    def target(self, leg: LegSpec) -> str:
        return ""

    def queue_depth(self, leg: LegSpec) -> int:
        return self.system.cpu.cores.queue_length

    def estimate(self, leg: LegSpec) -> CostEstimate:
        s = self.system
        cpu = s.cpu
        n = leg.count
        threads = max(1, min(leg.threads, cpu.max_threads))
        if threads > 1:
            per_job = cpu.parallel_time(leg.stage.profile, threads)
        else:
            per_job = cpu.serial_time(leg.stage.profile)
        in_est = s.transfer_estimate(
            leg.src, "root", n * leg.stage.input_bytes
        )
        out_est = s.transfer_estimate(
            "root", leg.dst, n * leg.stage.output_bytes
        )
        service = in_est + n * per_job + out_est
        depth = self.queue_depth(leg)
        queue = (
            depth / cpu.spec.cores * per_job * self.queue_weight
        )
        energy = n * per_job * threads * 10.5  # cpu_core_active_w
        return CostEstimate(
            service_s=service, queue_s=queue, depth=depth, energy_j=energy
        )

    def execute(self, leg, phases, state, ctx) -> Generator:
        s = self.system
        if leg.count == 1:
            yield from s._multi_axl_motion(
                leg.src, leg.dst, leg.stage, leg.threads, phases, state, ctx
            )
        else:
            yield from s._batched_multi_axl_motion(
                leg.src, leg.dst, leg.stage, leg.threads, leg.count, phases,
                state, ctx,
            )
