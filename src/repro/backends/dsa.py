"""Intel-DSA-style streaming-engine backend.

Models the on-chip Data Streaming Accelerator characterized in *A
Quantitative Analysis of Data Streaming Accelerator* (PAPERS.md): a
small pool of engines fed through a **shared work queue**. Submission is
an ENQCMD portal write from the issuing core (no ioctl, no doorbell
ring), extra jobs ride in a **batch descriptor** at a much cheaper
per-member rate, and completion is discovered by **polling the
completion record on-core** — no interrupt, no ISR. That control path is
roughly 4x cheaper than the DRX's kernel-launch + completion-interrupt
pair, which is exactly why DSA wins small payloads: the fixed overheads
dominate there and DSA's are the smallest of any offload.

The engine itself is modest — it streams through host memory at a fixed
move rate with a scalar-ish transform rate (no 128-lane restructuring
array, no scratchpad fusion), so on large or compute-heavy transforms
the DRX's lanes win back everything the cheap control path saved. Data
also stages through host DRAM on both sides (the DSA sits beside the
memory controller, not on the PCIe fabric), so its movement cost equals
the Multi-Axl staging path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from ..profiles import WorkProfile
from ..sim import Server, Simulator
from .base import BACKEND_DSA, CostEstimate, LegSpec, RestructureBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import SpanContext

__all__ = ["DSAConfig", "DSADevice", "DSABackend"]

#: Per-busy-core active power (mirrors EnergyParams.cpu_core_active_w) —
#: prices the submission/poll core time in the energy estimate.
_CPU_CORE_ACTIVE_W = 10.5


@dataclass(frozen=True)
class DSAConfig:
    """Timing parameters for the DSA-style engine (seconds / B/s).

    Defaults follow the published characterization's shape: sub-µs
    ENQCMD submission, ~25x cheaper descriptors inside a batch, ~20 GB/s
    streaming per engine, and completion-record polling costing well
    under one ISR.
    """

    engines: int = 2
    portal_submit_s: float = 0.25e-6  # ENQCMD non-posted write round-trip
    descriptor_s: float = 0.1e-6  # descriptor prep in host memory
    batch_descriptor_s: float = 0.04e-6  # per extra member in a batch desc.
    completion_poll_s: float = 0.6e-6  # spin on the completion record
    poll_reap_s: float = 0.15e-6  # each extra record reaped in the spin
    move_bandwidth: float = 20e9  # streamed B/s through one engine
    transform_ops_per_s: float = 16e9  # transform ALU rate
    power_w: float = 4.0  # engine power while streaming

    def __post_init__(self) -> None:
        if self.engines <= 0:
            raise ValueError("engines must be positive")
        if self.move_bandwidth <= 0 or self.transform_ops_per_s <= 0:
            raise ValueError("DSA rates must be positive")
        for name in ("portal_submit_s", "descriptor_s", "batch_descriptor_s",
                     "completion_poll_s", "poll_reap_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def job_time(self, profile: WorkProfile) -> float:
        """One member's engine occupancy: stream-vs-transform roofline."""
        move = profile.total_bytes / self.move_bandwidth
        transform = profile.total_ops / self.transform_ops_per_s
        return max(move, transform)

    def submit_time(self, count: int) -> float:
        """Portal write + descriptors for a ``count``-member submission."""
        return (
            self.portal_submit_s
            + self.descriptor_s
            + (count - 1) * self.batch_descriptor_s
        )

    def poll_time(self, count: int) -> float:
        """On-core completion-record polling for ``count`` members."""
        return self.completion_poll_s + (count - 1) * self.poll_reap_s


class DSADevice:
    """DES occupancy model of the shared-work-queue engine pool.

    ``capacity=engines``: submissions from concurrent chains share the
    queue and grab whichever engine frees first — the shared-WQ
    contention the characterization paper measures.
    """

    def __init__(
        self,
        sim: Simulator,
        config: DSAConfig = DSAConfig(),
        name: str = "dsa",
    ):
        self.sim = sim
        self.config = config
        self.name = name
        self._server = Server(sim, capacity=config.engines, name=name)
        self.jobs_completed = 0
        self.busy_seconds = 0.0

    @property
    def queue_depth(self) -> int:
        return self._server.queue_length + self._server.in_use

    def process(
        self,
        profile: WorkProfile,
        count: int = 1,
        ctx: Optional["SpanContext"] = None,
    ) -> Generator:
        """Process: one (possibly batched) submission's engine occupancy."""
        duration = count * self.config.job_time(profile)
        start = self.sim.now
        span = (
            ctx.begin(
                self.name, "dsa", actor=self.name, service_s=duration,
                **({"batch": count} if count > 1 else {}),
            )
            if ctx is not None
            else None
        )
        try:
            yield from self._server.transfer(duration)
        except BaseException as exc:
            if span is not None:
                ctx.end(span, abandoned=True, error=type(exc).__name__)
            raise
        self.jobs_completed += count
        self.busy_seconds += duration
        elapsed = self.sim.now - start
        if span is not None:
            ctx.end(span, queued_s=elapsed - duration)
        return elapsed

    def utilization(self) -> float:
        return self._server.utilization()


class DSABackend(RestructureBackend):
    """Stage through host memory, restructure on the DSA engine pool."""

    kind = BACKEND_DSA

    def __init__(self, system, config: DSAConfig, queue_weight: float = 1.0):
        super().__init__(system, queue_weight)
        self.config = config
        self.device = DSADevice(system.sim, config, name="dsa")

    def queue_depth(self, leg: LegSpec) -> int:
        return self.device.queue_depth

    def estimate(self, leg: LegSpec) -> CostEstimate:
        s = self.system
        cfg = self.config
        n = leg.count
        work = n * cfg.job_time(leg.fused)
        host = cfg.submit_time(n) + cfg.poll_time(n)
        in_est = s.transfer_estimate(
            leg.src, "root", n * leg.stage.input_bytes
        )
        out_est = s.transfer_estimate(
            "root", leg.dst, n * leg.stage.output_bytes
        )
        service = in_est + host + work + out_est
        depth = self.queue_depth(leg)
        queue = (
            depth / cfg.engines * cfg.job_time(leg.fused) * self.queue_weight
        )
        energy = work * cfg.power_w + host * _CPU_CORE_ACTIVE_W
        return CostEstimate(
            service_s=service, queue_s=queue, depth=depth, energy_j=energy
        )

    def _host_work(self, cost: float) -> Generator:
        """Submission/poll core time: wall time + host CPU energy, no
        core-pool queueing (like an ISR, the issuing core runs it inline)."""
        yield self.system.sim.timeout(cost)
        self.system.cpu.busy_seconds += cost

    def _guarded_process(self, leg: LegSpec, state, ctx) -> Generator:
        s = self.system
        op = self.device.process(leg.fused, count=leg.count, ctx=ctx)
        if s.injector is None:
            return op
        return s.injector.guard(
            "dsa", op, actor=self.device.name,
            request_id=state.request_id if state is not None else -1,
        )

    def execute(self, leg, phases, state, ctx) -> Generator:
        from ..core import system as _sys

        s = self.system
        n = leg.count
        batch_attrs = {"batch": n} if n > 1 else {}
        span, cctx = s._phase_span(
            ctx, "movement-in", _sys.PHASE_MOVEMENT, **batch_attrs
        )
        in_transfer = (
            s._staged_transfer(
                leg.src, "root", leg.stage.input_bytes, state, cctx
            )
            if n == 1
            else s._batched_staged_transfer(
                leg.src, "root", [leg.stage.input_bytes] * n, state, cctx
            )
        )
        yield from s._timed(phases, _sys.PHASE_MOVEMENT, in_transfer, span=span)
        # ENQCMD portal submission from the issuing core.
        span, _ = s._phase_span(
            ctx, "dsa-submit", _sys.PHASE_CONTROL, actor=self.device.name,
            **batch_attrs,
        )
        yield from s._timed(
            phases, _sys.PHASE_CONTROL,
            self._host_work(self.config.submit_time(n)), span=span,
        )
        span, cctx = s._phase_span(
            ctx, "restructure", _sys.PHASE_RESTRUCTURE,
            actor=self.device.name, **batch_attrs,
        )
        yield from s._timed(
            phases, _sys.PHASE_RESTRUCTURE,
            self._guarded_process(leg, state, cctx), span=span,
        )
        # Completion-record polling on-core — the no-interrupt path.
        span, _ = s._phase_span(
            ctx, "dsa-poll", _sys.PHASE_CONTROL, actor=self.device.name,
            **batch_attrs,
        )
        yield from s._timed(
            phases, _sys.PHASE_CONTROL,
            self._host_work(self.config.poll_time(n)), span=span,
        )
        span, cctx = s._phase_span(
            ctx, "movement-out", _sys.PHASE_MOVEMENT, **batch_attrs
        )
        out_transfer = (
            s._staged_transfer(
                "root", leg.dst, leg.stage.output_bytes, state, cctx
            )
            if n == 1
            else s._batched_staged_transfer(
                "root", leg.dst, [leg.stage.output_bytes] * n, state, cctx
            )
        )
        yield from s._timed(
            phases, _sys.PHASE_MOVEMENT, out_transfer, span=span
        )
