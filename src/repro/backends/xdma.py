"""XDMA-style backend: layout transform fused into the DMA descriptor.

Models the XDMA design (PAPERS.md): the DMA descriptor itself carries an
affine layout-transformation spec, and a small transform unit in the DMA
datapath restructures the stream **in flight** on the direct src → dst
crossing. There is no separate accelerator hop, no staging buffer, and
no completion interrupt beyond the DMA's own — data moves once and
arrives restructured. The whole movement+restructure leg is therefore
the *overlap* of the wire crossing and the transform-unit throughput,
plus a per-descriptor programming cost on the host (encoding the
transform into the descriptor is real work, and — unlike the DRX's
amortized program load — it is paid again for every batch member).

The price of zero-hop is expressibility: the descriptor encodes strided/
affine reshapes only. Gather-heavy, branchy, or compute-rich transforms
don't fit, and the descriptor's address fields bound the payload one
descriptor can cover — :meth:`XDMAConfig.descriptor_expressible` is the
planner's eligibility gate, and what pushes large or irregular legs back
onto the DRX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from ..core.chain import MotionStage
from ..sim import AllOf, Server, Simulator
from .base import BACKEND_XDMA, CostEstimate, LegSpec, RestructureBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import SpanContext

__all__ = ["XDMAConfig", "XDMADevice", "XDMABackend"]

_CPU_CORE_ACTIVE_W = 10.5  # mirrors EnergyParams.cpu_core_active_w


@dataclass(frozen=True)
class XDMAConfig:
    """Timing + expressibility parameters for in-flight transformation."""

    channels: int = 2  # concurrent transforming DMA channels
    program_s: float = 1.2e-6  # encode transform into the descriptor
    member_program_s: float = 0.9e-6  # each extra member's descriptor
    transform_bandwidth: float = 8e9  # B/s through the transform unit
    power_w: float = 3.0  # transform unit while streaming
    # Descriptor expressibility bounds: affine/strided reshapes only.
    max_gather_fraction: float = 0.15
    max_branch_fraction: float = 0.06
    max_ops_per_element: float = 8.0
    max_payload_bytes: int = 16 * 1024 * 1024  # descriptor address reach

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError("channels must be positive")
        if self.transform_bandwidth <= 0:
            raise ValueError("transform_bandwidth must be positive")
        if self.program_s < 0 or self.member_program_s < 0:
            raise ValueError("programming costs must be non-negative")
        if self.max_payload_bytes <= 0:
            raise ValueError("max_payload_bytes must be positive")

    def descriptor_expressible(self, stage: MotionStage) -> bool:
        """Can one descriptor encode this stage's transform?

        Judged on the *unfused* stage profile — the transform's own
        character — and the per-member payload size.
        """
        p = stage.profile
        return (
            p.gather_fraction <= self.max_gather_fraction
            and p.branch_fraction <= self.max_branch_fraction
            and p.ops_per_element <= self.max_ops_per_element
            and stage.input_bytes <= self.max_payload_bytes
        )

    def program_time(self, count: int) -> float:
        """Host descriptor-programming cost for ``count`` members. No
        amortization: every member carries its own transform spec."""
        return self.program_s + (count - 1) * self.member_program_s

    def transform_time(self, nbytes: int) -> float:
        return nbytes / self.transform_bandwidth


class XDMADevice:
    """DES occupancy model of the transforming-DMA channel pool."""

    def __init__(
        self,
        sim: Simulator,
        config: XDMAConfig = XDMAConfig(),
        name: str = "xdma",
    ):
        self.sim = sim
        self.config = config
        self.name = name
        self._server = Server(sim, capacity=config.channels, name=name)
        self.jobs_completed = 0
        self.busy_seconds = 0.0

    @property
    def queue_depth(self) -> int:
        return self._server.queue_length + self._server.in_use

    def transform(
        self,
        nbytes: int,
        count: int = 1,
        ctx: Optional["SpanContext"] = None,
    ) -> Generator:
        """Process: hold one channel while ``nbytes`` stream through the
        transform unit."""
        duration = self.config.transform_time(nbytes)
        start = self.sim.now
        span = (
            ctx.begin(
                self.name, "xdma", actor=self.name, service_s=duration,
                bytes=nbytes, **({"batch": count} if count > 1 else {}),
            )
            if ctx is not None
            else None
        )
        try:
            yield from self._server.transfer(duration)
        except BaseException as exc:
            if span is not None:
                ctx.end(span, abandoned=True, error=type(exc).__name__)
            raise
        self.jobs_completed += count
        self.busy_seconds += duration
        elapsed = self.sim.now - start
        if span is not None:
            ctx.end(span, queued_s=elapsed - duration)
        return elapsed

    def utilization(self) -> float:
        return self._server.utilization()


class XDMABackend(RestructureBackend):
    """Direct src → dst DMA with the transform fused in-flight."""

    kind = BACKEND_XDMA

    def __init__(self, system, config: XDMAConfig, queue_weight: float = 1.0):
        super().__init__(system, queue_weight)
        self.config = config
        self.device = XDMADevice(system.sim, config, name="xdma")

    def eligible(self, leg: LegSpec) -> bool:
        return self.config.descriptor_expressible(leg.stage)

    def queue_depth(self, leg: LegSpec) -> int:
        return self.device.queue_depth

    def _wire_bytes(self, leg: LegSpec) -> int:
        # One crossing carries the stream; the fatter side bounds it.
        return leg.count * max(leg.stage.input_bytes, leg.stage.output_bytes)

    def estimate(self, leg: LegSpec) -> CostEstimate:
        s = self.system
        cfg = self.config
        n = leg.count
        program = cfg.program_time(n)
        wire = s.dma.unloaded_latency(leg.src, leg.dst, self._wire_bytes(leg))
        wire += (n - 1) * s.dma.costs.chained_descriptor_s
        transform = cfg.transform_time(n * leg.stage.input_bytes)
        service = program + max(wire, transform)
        depth = self.queue_depth(leg)
        queue = (
            depth / cfg.channels
            * cfg.transform_time(leg.stage.input_bytes)
            * self.queue_weight
        )
        energy = transform * cfg.power_w + program * _CPU_CORE_ACTIVE_W
        return CostEstimate(
            service_s=service, queue_s=queue, depth=depth, energy_j=energy
        )

    def _host_work(self, cost: float) -> Generator:
        yield self.system.sim.timeout(cost)
        self.system.cpu.busy_seconds += cost

    def _guarded_transform(self, leg: LegSpec, state, ctx) -> Generator:
        s = self.system
        op = self.device.transform(
            leg.count * leg.stage.input_bytes, count=leg.count, ctx=ctx
        )
        if s.injector is None:
            return op
        return s.injector.guard(
            "xdma", op, actor=self.device.name,
            request_id=state.request_id if state is not None else -1,
        )

    def execute(self, leg, phases, state, ctx) -> Generator:
        from ..core import system as _sys
        from ..faults.recovery import shielded

        s = self.system
        n = leg.count
        batch_attrs = {"batch": n} if n > 1 else {}
        # Descriptor programming on the host (control plane).
        span, _ = s._phase_span(
            ctx, "xdma-program", _sys.PHASE_CONTROL, actor=self.device.name,
            **batch_attrs,
        )
        yield from s._timed(
            phases, _sys.PHASE_CONTROL,
            self._host_work(self.config.program_time(n)), span=span,
        )
        # The fused leg: the direct crossing and the in-flight transform
        # overlap — all of it books as restructuring, because there is no
        # separate movement hop to bill (the zero-hop story).
        pspan, pctx = s._phase_span(
            ctx, "restructure", _sys.PHASE_RESTRUCTURE,
            actor=self.device.name, overlapped=True, fused_dma=True,
            **batch_attrs,
        )
        wire_bytes = self._wire_bytes(leg)
        move_op = (
            s.dma.transfer(
                leg.src, leg.dst, wire_bytes,
                on_retry=s._retry_cb(state, "dma", f"{leg.src}->{leg.dst}"),
                ctx=pctx,
            )
            if n == 1
            else s.dma.transfer_chained(
                leg.src, leg.dst,
                [max(leg.stage.input_bytes, leg.stage.output_bytes)] * n,
                on_retry=s._retry_cb(state, "dma", f"{leg.src}->{leg.dst}"),
                ctx=pctx,
            )
        )
        work_op = self._guarded_transform(leg, state, pctx)
        if s._faults is not None:
            move_op, work_op = shielded(move_op), shielded(work_op)
        move = s.sim.spawn(move_op)
        work = s.sim.spawn(work_op)
        start = s.sim.now
        try:
            yield AllOf(s.sim, [move, work])
        except BaseException:
            s.telemetry.end(pspan, abandoned=True)
            raise
        phases.add(_sys.PHASE_RESTRUCTURE, s.sim.now - start)
        s.telemetry.end(pspan)
        if s._faults is not None:
            for proc in (move, work):
                ok, value = proc.value
                if not ok:
                    raise value
