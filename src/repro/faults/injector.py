"""Seeded fault injection for the DES model.

A :class:`FaultInjector` perturbs operations at named *sites* ("dma",
"drx", "kernel", "fabric", "notify") according to per-site
:class:`FaultPolicy` probabilities:

* **DELAY** — the operation runs, but only after an extra latency (a
  straggler: descriptor ring backpressure, a slow completion);
* **HANG** — the operation never starts and never completes (a wedged
  engine); only a watchdog timeout interrupting the waiting process can
  reclaim it;
* **FAIL** — the operation burns a small latency and then raises
  :class:`InjectedFault` (a reported DMA error, a faulted kernel).

All randomness comes from one ``random.Random(seed)``, and the DES event
order is deterministic, so a seeded run replays the exact same fault
sequence — the property the recovery tests and the acceptance scenario
rely on.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from ..sim import Event, Simulator
from ..sim.tracing import Trace

__all__ = ["FaultKind", "FaultPolicy", "InjectedFault", "FaultInjector"]


class FaultKind(enum.Enum):
    """The three perturbation flavours the injector can apply."""

    DELAY = "delay"
    HANG = "hang"
    FAIL = "fail"


class InjectedFault(Exception):
    """Raised inside an operation the injector chose to FAIL."""

    def __init__(self, message: str = "", site: str = "", actor: str = ""):
        super().__init__(message or f"injected fault at {site}:{actor}")
        self.site = site
        self.actor = actor


@dataclass(frozen=True)
class FaultPolicy:
    """Per-site fault probabilities and shapes (everything off by default).

    ``fail_p`` / ``hang_p`` / ``delay_p`` are per-operation probabilities;
    at most one fault is drawn per operation, in that precedence order.
    ``delay_s`` is the mean extra latency of a DELAY (the actual delay is
    drawn uniformly in [0.5x, 1.5x]); ``fail_latency_s`` is the time a
    FAIL burns before the error surfaces.
    """

    fail_p: float = 0.0
    hang_p: float = 0.0
    delay_p: float = 0.0
    delay_s: float = 100e-6
    fail_latency_s: float = 5e-6

    def __post_init__(self) -> None:
        for name in ("fail_p", "hang_p", "delay_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.fail_p + self.hang_p + self.delay_p > 1.0:
            raise ValueError("fault probabilities must sum to at most 1")
        if self.delay_s < 0 or self.fail_latency_s < 0:
            raise ValueError("fault latencies must be non-negative")

    @property
    def active(self) -> bool:
        return (self.fail_p + self.hang_p + self.delay_p) > 0.0


_NO_FAULTS = FaultPolicy()


class FaultInjector:
    """Applies seeded per-site fault policies to DES operations.

    Parameters
    ----------
    sim:
        Owning simulator.
    seed:
        Seed for the injector's private RNG; two runs with the same seed
        and workload inject the identical fault sequence.
    policies:
        Mapping of site name → :class:`FaultPolicy`. Sites without an
        entry are never perturbed.
    trace:
        Optional :class:`~repro.sim.tracing.Trace`; every injected fault
        is recorded as a ``FaultRecord`` with kind ``inject:<flavour>``.
    """

    def __init__(
        self,
        sim: Simulator,
        seed: int = 0,
        policies: Optional[Dict[str, FaultPolicy]] = None,
        trace: Optional[Trace] = None,
    ):
        self.sim = sim
        self.seed = seed
        self._rng = random.Random(seed)
        self.policies: Dict[str, FaultPolicy] = dict(policies or {})
        self.trace = trace
        self.injected: Dict[Tuple[str, FaultKind], int] = {}

    def policy_for(self, site: str) -> FaultPolicy:
        return self.policies.get(site, _NO_FAULTS)

    def injected_count(
        self,
        site: Optional[str] = None,
        kind: Optional[FaultKind] = None,
    ) -> int:
        """Number of faults injected so far, filtered by site and kind."""
        return sum(
            n
            for (s, k), n in self.injected.items()
            if (site is None or s == site) and (kind is None or k == kind)
        )

    def draw(self, site: str) -> Optional[Tuple[FaultKind, float]]:
        """Roll the dice for one operation at ``site``.

        Returns ``(kind, latency_param)`` or None. Consumes exactly one
        uniform draw when the site has any probability mass (plus one
        more for a DELAY magnitude), keeping replay deterministic.
        """
        policy = self.policy_for(site)
        if not policy.active:
            return None
        u = self._rng.random()
        if u < policy.fail_p:
            return (FaultKind.FAIL, policy.fail_latency_s)
        u -= policy.fail_p
        if u < policy.hang_p:
            return (FaultKind.HANG, 0.0)
        u -= policy.hang_p
        if u < policy.delay_p:
            magnitude = policy.delay_s * (0.5 + self._rng.random())
            return (FaultKind.DELAY, magnitude)
        return None

    def _record(
        self, site: str, kind: FaultKind, actor: str, request_id: int
    ) -> None:
        key = (site, kind)
        self.injected[key] = self.injected.get(key, 0) + 1
        if self.trace is not None:
            self.trace.note(
                self.sim.now,
                actor or site,
                f"inject:{kind.value}",
                site=site,
                request_id=request_id,
            )

    def interpose(
        self, site: str, actor: str = "", request_id: int = -1
    ) -> Generator:
        """Process helper: maybe delay, hang, or fail at ``site``.

        DELAY yields the extra latency and returns; HANG blocks on an
        event that never triggers (only an interrupt reclaims the
        process); FAIL raises :class:`InjectedFault` after its latency.
        """
        fault = self.draw(site)
        if fault is None:
            return False
        kind, param = fault
        self._record(site, kind, actor, request_id)
        if kind is FaultKind.DELAY:
            yield self.sim.timeout(param)
            return True
        if kind is FaultKind.HANG:
            yield Event(self.sim)  # pending forever; a watchdog must reap us
            raise AssertionError("unreachable: hang event triggered")
        if param > 0:
            yield self.sim.timeout(param)
        raise InjectedFault(site=site, actor=actor)

    def guard(
        self,
        site: str,
        op: Generator,
        actor: str = "",
        request_id: int = -1,
    ) -> Generator:
        """Process helper: run ``op`` under this site's fault policy.

        The fault (if any) lands *before* the operation: a failed or hung
        operation never acquires the resources ``op`` would have taken,
        so watchdog interrupts find nothing to unwind but the guard
        itself.
        """
        started = False
        try:
            yield from self.interpose(site, actor=actor, request_id=request_id)
            started = True
            return (yield from op)
        finally:
            if not started:
                op.close()
