"""Permanent-failure domains: crash plans and their typed exceptions.

Where :class:`~repro.faults.plan.FaultPlan` injects *transient* faults
(one operation delays, hangs, or fails and the per-request machinery
recovers), a :class:`CrashPlan` models *permanent* loss of a failure
domain: a DRX card, a DSA engine pool, an XDMA-capable fabric link, or a
whole backend dies at a sim instant — optionally coming back later.

A domain is addressed by its dispatch-target name, the same string the
resilience plane keys its breakers on:

* a DRX unit — ``"drx.s0"`` (standalone card), ``"drx.sw0"``
  (switch-integrated), ``"a0k0.drx"`` (bump-in-the-wire), ``"drx.root"``;
* a backend pool — ``"dsa"`` or ``"xdma"`` (the whole engine class goes
  dark, e.g. a shared work queue is disabled or the fabric link drops).

The plan itself is pure data; the mechanics — detection, decommission,
drain via the engine's interrupt machinery, exactly-once rescue, and
half-open re-admission on revival — live in
:class:`repro.resilience.recovery.DomainManager`. An empty plan (no
crashes) arms nothing: the system schedules no events and draws no
randomness, so armed crash-free runs stay byte-identical to unarmed
ones (the property ``benchmarks/test_recovery.py`` pins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["DomainCrash", "CrashPlan", "DomainCrashed", "RescueAbandoned"]


@dataclass(frozen=True)
class DomainCrash:
    """One failure domain dying at ``at_s`` (revived at ``revive_at_s``,
    if ever)."""

    target: str
    at_s: float
    revive_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.target:
            raise ValueError("crash target must be a non-empty name")
        if self.at_s < 0:
            raise ValueError("crash instant must be >= 0")
        if self.revive_at_s is not None and self.revive_at_s <= self.at_s:
            raise ValueError("revival must come strictly after the crash")


@dataclass(frozen=True)
class CrashPlan:
    """Everything the system needs to arm the permanent-failure layer.

    ``detect_after_failures`` is the consecutive-failure escalation
    threshold: that many observed crash failures on a target promote its
    breaker to DEAD (decommission). The default of 1 models a device
    driver surfacing a surprise link-down immediately; raise it to model
    detection purely by repeated dispatch failures.

    ``rescue_deadline_s`` bounds how much latency a drained in-flight
    leg may already have burned and still be worth rescuing; past it the
    request fails with a typed :class:`RescueAbandoned` instead of being
    resubmitted. ``None`` rescues unconditionally.

    ``seed`` keeps the plan self-describing alongside the other seeded
    plans (the crash schedule itself is deterministic data; the seed is
    mixed into artifact metadata for provenance).
    """

    seed: int = 0
    crashes: Tuple[DomainCrash, ...] = ()
    detect_after_failures: int = 1
    rescue_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.detect_after_failures < 1:
            raise ValueError("detect_after_failures must be >= 1")
        if self.rescue_deadline_s is not None and self.rescue_deadline_s < 0:
            raise ValueError("rescue_deadline_s must be >= 0")
        targets = [crash.target for crash in self.crashes]
        if len(set(targets)) != len(targets):
            raise ValueError(
                "at most one crash per target (domains die once per run)"
            )


class DomainCrashed(Exception):
    """An in-flight (or just-dispatched) leg's failure domain is dead.

    Raised by the leg race when the domain's crash event fires (the
    in-flight drain) or has already fired (fail-fast at dispatch). The
    recovery layer catches it to rescue the leg onto a surviving
    backend; it is deliberately *not* in the transient
    ``_RECOVERABLE`` set — a crash is not a timeout.
    """

    def __init__(self, target: str, crashed_at: float):
        super().__init__(f"failure domain {target!r} crashed at {crashed_at}")
        self.target = target
        self.crashed_at = crashed_at


class RescueAbandoned(Exception):
    """A drained leg was past the rescue deadline: the request fails
    with this typed reason instead of being resubmitted."""

    def __init__(self, target: str, burned_s: float):
        super().__init__(
            f"leg drained from {target!r} had already burned "
            f"{burned_s * 1e3:.2f} ms — past the rescue deadline"
        )
        self.target = target
        self.burned_s = burned_s
