"""Fault injection & recovery for the DMX discrete-event model.

The paper's control-plane story assumes DMAs, DRX units, and
accelerators run autonomously while the CPU stays out of the data path —
which only holds in production if hangs, stragglers, and failed
transfers are recovered without the CPU babysitting every operation.
This package supplies that layer:

* :class:`FaultInjector` — seeded, per-site delay/hang/fail injection;
* :func:`with_timeout` / :func:`retry` — deadline races over ``AnyOf``
  with process interruption, and bounded exponential backoff;
* :class:`FaultPlan` — the system-level configuration
  :class:`~repro.core.system.DMXSystem` consumes;
* :class:`CrashPlan` — *permanent* failure domains (a card, an engine
  pool, a fabric link dies at a sim instant, optionally revived later),
  executed by :class:`repro.resilience.recovery.DomainManager`.
"""

from .domains import CrashPlan, DomainCrash, DomainCrashed, RescueAbandoned
from .injector import FaultInjector, FaultKind, FaultPolicy, InjectedFault
from .plan import FaultPlan
from .recovery import RetryExhausted, RetryPolicy, retry, with_timeout

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPolicy",
    "InjectedFault",
    "FaultPlan",
    "CrashPlan",
    "DomainCrash",
    "DomainCrashed",
    "RescueAbandoned",
    "RetryExhausted",
    "RetryPolicy",
    "retry",
    "with_timeout",
]
