"""Recovery combinators: deadline races, interruption, bounded backoff.

Two process helpers implement the recovery discipline the DMX runtime
threads through the stack:

* :func:`with_timeout` races an operation (run as a child process)
  against a deadline with ``AnyOf(op, timeout)``; on deadline it
  *interrupts* the child — whose ``finally`` blocks release held slots
  and cancel queued requests — and raises
  :class:`~repro.sim.WaitTimeout`.
* :func:`retry` wraps ``with_timeout`` in a bounded
  exponential-backoff loop, re-running an operation factory until it
  succeeds, the attempts are exhausted (:class:`RetryExhausted`), or a
  non-retryable exception escapes.

Both are ordinary generators: ``value = yield from with_timeout(...)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple

from ..sim import AnyOf, Interrupt, Simulator, WaitTimeout
from .injector import InjectedFault

__all__ = ["RetryPolicy", "RetryExhausted", "shielded", "with_timeout", "retry"]

#: Exceptions the retry loop treats as transient by default.
DEFAULT_RETRYABLE = (InjectedFault, WaitTimeout)


class RetryExhausted(Exception):
    """All retry attempts failed; ``last`` carries the final cause."""

    def __init__(
        self,
        message: str = "",
        attempts: int = 0,
        last: Optional[BaseException] = None,
    ):
        super().__init__(
            message or f"operation failed after {attempts} attempts: {last!r}"
        )
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base * multiplier**n``, capped.

    ``max_attempts`` counts the first try; ``max_attempts=3`` means up to
    two retries. Backoff is fully deterministic (no jitter) so seeded
    fault-injection runs replay exactly.
    """

    max_attempts: int = 3
    backoff_base_s: float = 10e-6
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff(self, failures: int) -> float:
        """Delay before the attempt following the ``failures``-th failure."""
        return min(
            self.backoff_base_s * self.backoff_multiplier ** failures,
            self.backoff_cap_s,
        )


def shielded(op: Generator) -> Generator:
    """Run ``op``, converting its exceptions into a ``(ok, value)`` result.

    Keeps a failing child process from tripping the simulator's strict
    mode; :func:`with_timeout` re-raises on the waiting side instead.
    Interrupts pass through — the engine treats an interrupt-killed
    process as cancellation, not an error.
    """
    try:
        value = yield from op
    except Interrupt:
        raise
    except Exception as exc:
        return (False, exc)
    return (True, value)


def with_timeout(
    sim: Simulator,
    op: Generator,
    timeout_s: Optional[float],
    what: str = "",
) -> Generator:
    """Process helper: run ``op`` as a child process under a deadline.

    On deadline the child is interrupted — its ``finally`` blocks
    release/cancel whatever it holds — and :class:`WaitTimeout` is
    raised here. If ``op`` itself raises, that exception re-raises here.
    A ``timeout_s`` of None (or +inf) runs ``op`` inline with no race.
    """
    if timeout_s is None or math.isinf(timeout_s):
        return (yield from op)
    if timeout_s < 0:
        raise ValueError(f"negative timeout: {timeout_s}")
    proc = sim.spawn(shielded(op), name=f"deadline:{what or 'op'}")
    deadline = sim.timeout(timeout_s)
    yield AnyOf(sim, [proc, deadline])
    if proc.triggered:
        # The op won: cancel the deadline so the unfired timeout does
        # not drag final ``sim.now`` (and every utilization denominator)
        # out to a deadline nothing is waiting on anymore.
        deadline.cancel()
        ok, value = proc.value
        if not ok:
            raise value
        return value
    if proc.is_alive:
        proc.interrupt(f"deadline {timeout_s} s exceeded")
    raise WaitTimeout(
        f"{what or 'operation'} exceeded its {timeout_s} s deadline"
    )


def retry(
    sim: Simulator,
    make_op: Callable[[], Generator],
    policy: RetryPolicy,
    timeout_s: Optional[float] = None,
    retryable: Tuple[type, ...] = DEFAULT_RETRYABLE,
    on_attempt_failed: Optional[
        Callable[[int, BaseException, bool], None]
    ] = None,
    what: str = "",
) -> Generator:
    """Process helper: deadline + bounded-backoff retry around ``make_op``.

    ``make_op`` is called once per attempt and must return a *fresh*
    operation generator. Returns ``(value, retries_used)`` on success.
    After each failed attempt, ``on_attempt_failed(attempt, exc,
    will_retry)`` is invoked (for stats/tracing). Exhaustion raises
    :class:`RetryExhausted`; non-retryable exceptions propagate as-is.
    """
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        if attempt:
            yield sim.timeout(policy.backoff(attempt - 1))
        try:
            value = yield from with_timeout(
                sim, make_op(), timeout_s, what=what
            )
        except retryable as exc:
            last = exc
            if on_attempt_failed is not None:
                on_attempt_failed(
                    attempt, exc, attempt + 1 < policy.max_attempts
                )
            continue
        return (value, attempt)
    raise RetryExhausted(
        f"{what or 'operation'} failed after {policy.max_attempts} "
        f"attempts: {last!r}",
        attempts=policy.max_attempts,
        last=last,
    )
