"""System-level fault & recovery configuration.

:class:`FaultPlan` is the one knob callers hand to
:class:`~repro.core.system.DMXSystem`: which sites get faults (and how
often), plus the recovery budgets — per-operation watchdog timeouts,
retry policies, and the per-motion-stage DRX deadline after which a
request degrades to CPU restructuring (the Multi-Axl path).

Defaults are generous relative to the modeled operation latencies
(milliseconds of transfer and restructuring) so a plan with all
probabilities at zero never trips a spurious timeout under contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .injector import FaultPolicy
from .recovery import RetryPolicy

__all__ = ["FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Fault-injection sites and recovery budgets for one system run."""

    seed: int = 0
    # Per-site injection policies (all off by default).
    dma: FaultPolicy = FaultPolicy()
    drx: FaultPolicy = FaultPolicy()
    kernel: FaultPolicy = FaultPolicy()
    fabric: FaultPolicy = FaultPolicy()
    notify: FaultPolicy = FaultPolicy()
    # Planner-backend engines (active only when repro.backends is armed).
    dsa: FaultPolicy = FaultPolicy()
    xdma: FaultPolicy = FaultPolicy()
    # Watchdog timeouts + bounded-backoff retry per operation class.
    dma_timeout_s: float = 50e-3
    dma_retry: RetryPolicy = RetryPolicy()
    kernel_timeout_s: float = 50e-3
    kernel_retry: RetryPolicy = RetryPolicy()
    notify_timeout_s: float = 200e-6
    notify_retry: RetryPolicy = RetryPolicy()
    # Deadline budget for one motion stage's DRX path; past it the
    # request falls back to CPU restructuring (Multi-Axl path).
    drx_deadline_s: float = 100e-3

    def __post_init__(self) -> None:
        for name in ("dma_timeout_s", "kernel_timeout_s", "notify_timeout_s",
                     "drx_deadline_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def site_policies(self) -> Dict[str, FaultPolicy]:
        """The injector's site → policy mapping."""
        return {
            "dma": self.dma,
            "drx": self.drx,
            "kernel": self.kernel,
            "fabric": self.fabric,
            "notify": self.notify,
            "dsa": self.dsa,
            "xdma": self.xdma,
        }
