"""DMX core: chains, placements, the system model, collectives."""

from .chain import AppChain, KernelStage, MotionStage, merge_profiles
from .collectives import (
    CollectiveResult,
    CollectiveSystem,
    collective_profile,
    reduction_profile,
)
from .placement import Mode, SystemConfig, drx_config_for
from .system import (
    PHASE_CONTROL,
    PHASE_KERNEL,
    PHASE_MOVEMENT,
    PHASE_RESTRUCTURE,
    DMXSystem,
    RequestRecord,
    RunResult,
)

__all__ = [
    "AppChain",
    "KernelStage",
    "MotionStage",
    "merge_profiles",
    "CollectiveResult",
    "CollectiveSystem",
    "collective_profile",
    "reduction_profile",
    "Mode",
    "SystemConfig",
    "drx_config_for",
    "PHASE_CONTROL",
    "PHASE_KERNEL",
    "PHASE_MOVEMENT",
    "PHASE_RESTRUCTURE",
    "DMXSystem",
    "RequestRecord",
    "RunResult",
]
