"""One-to-many and many-to-one data movement (Sec. V + Fig. 17).

Models broadcast and all-reduce over 4–32 accelerators:

* **baseline (Multi-Axl)** — the source accelerator DMAs its output to
  host memory, the CPU restructures, and the driver then "copies the
  restructured data and initiates N DMA transfers sequentially to the
  destination accelerators" — a host-memory staging copy plus a DMA per
  destination. All-reduce = scatter-reduce + all-gather with the CPU
  restructuring and summing all N inputs.
* **DMX (Bump-in-the-Wire)** — DRXs form a two-level distribution tree:
  the source DRX sends once per switch group; a leader DRX under each
  switch relays to its local peers, all groups in parallel. Reductions
  run hierarchically on the DRX RE lanes (group leaders reduce their
  group, the root reduces the leaders). Descriptor-chained P2P DMAs pay
  the driver setup once.

The Fig. 17 dip at ≥16 accelerators emerges from the extra switch hops
once the fan-out spans multiple switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from ..cpu import HostCPU
from ..drx.microarch import DRXDevice
from ..interconnect import DMAEngine, Fabric, LinkConfig
from ..profiles import WorkProfile
from ..runtime.driver import NotificationModel
from ..sim import AllOf, Simulator
from .placement import Mode, SystemConfig, drx_config_for

__all__ = ["CollectiveSystem", "CollectiveResult", "collective_profile",
           "reduction_profile"]

# Host-memory staging copy rate for the baseline's driver copies.
HOST_COPY_BYTES_PER_S = 4e9


def collective_profile(nbytes: int, ops_per_element: float = 16.0) -> WorkProfile:
    """Restructuring work on a collective payload.

    Fan-out data motion restructures per destination format (layout
    shuffles, precision conversion, resharding) — gather-flavoured,
    moderately compute-heavy work.
    """
    return WorkProfile(
        name="collective-restructure",
        bytes_in=nbytes,
        bytes_out=nbytes,
        elements=max(1, nbytes // 4),
        ops_per_element=ops_per_element,
        element_size=4,
        gather_fraction=0.3,
    )


def reduction_profile(nbytes: int, n_sources: int) -> WorkProfile:
    """Summing ``n_sources`` buffers of ``nbytes`` into one."""
    return WorkProfile(
        name="collective-reduce",
        bytes_in=nbytes * n_sources,
        bytes_out=nbytes,
        elements=max(1, nbytes // 4),
        ops_per_element=2.0 * n_sources,
        element_size=4,
    )


@dataclass
class CollectiveResult:
    """Latency of one collective operation."""

    operation: str
    mode: Mode
    n_accelerators: int
    latency_s: float


class CollectiveSystem:
    """A fan-out of N accelerators for collective experiments."""

    def __init__(self, n_accelerators: int, config: SystemConfig):
        if n_accelerators < 2:
            raise ValueError("collectives need at least two accelerators")
        if config.mode not in (Mode.MULTI_AXL, Mode.BUMP_IN_WIRE):
            raise ValueError("collectives are modeled for Multi-Axl and BITW")
        self.config = config
        self.n = n_accelerators
        self.sim = Simulator()
        self.cpu = HostCPU(self.sim, max_threads=16, parallel_overhead=0.35)
        self.fabric = Fabric(
            self.sim, link_config=LinkConfig(gen=config.pcie_gen, lanes=8)
        )
        self.dma = DMAEngine(self.sim, self.fabric)
        self.notifier = NotificationModel(self.sim, self.cpu)
        self.accels: List[str] = []
        self.drxs: Dict[str, DRXDevice] = {}
        self.groups: List[List[str]] = []  # accelerator names per switch
        drx_config = drx_config_for(config)
        switch = None
        slots = 0
        for index in range(n_accelerators):
            if slots == 0:
                switch = self.fabric.add_switch(f"sw{len(self.groups)}")
                slots = config.accelerators_per_switch
                self.groups.append([])
            name = f"a{index}"
            self.fabric.add_endpoint(name, switch)
            self.groups[-1].append(name)
            slots -= 1
            self.accels.append(name)
            if config.mode == Mode.BUMP_IN_WIRE:
                self.fabric.add_inline(f"{name}.drx", name)
                self.drxs[name] = DRXDevice(
                    self.sim, drx_config, name=f"{name}.drx"
                )

    def _drx(self, accel: str) -> DRXDevice:
        return self.drxs[accel]

    def _host_copy(self, nbytes: int) -> Generator:
        """The driver's host-memory staging copy (baseline only)."""
        duration = nbytes / HOST_COPY_BYTES_PER_S
        yield self.sim.timeout(duration)
        self.cpu.busy_seconds += duration

    # -- broadcast ------------------------------------------------------------

    def _broadcast_baseline(self, nbytes: int) -> Generator:
        src = self.accels[0]
        yield from self.notifier.notify(src)
        yield from self.dma.transfer(src, "root", nbytes)
        yield from self.cpu.restructure(collective_profile(nbytes), threads=3)
        # Per destination: staging copy, then a sequential DMA (Sec. VII-C).
        for dst in self.accels[1:]:
            yield from self._host_copy(nbytes)
            yield from self.dma.transfer("root", dst, nbytes)

    def _broadcast_dmx(self, nbytes: int) -> Generator:
        src = self.accels[0]
        src_drx = self._drx(src)
        yield from self.notifier.notify(src)
        yield from self.dma.transfer(src, src_drx.name, nbytes)
        yield from src_drx.restructure(collective_profile(nbytes))

        def relay(group: List[str], is_source_group: bool) -> Generator:
            members = [a for a in group if a != src]
            if not members:
                return
            if is_source_group:
                relay_drx = src_drx
            else:
                leader = members[0]
                yield from self.dma.transfer(
                    src_drx.name, self._drx(leader).name, nbytes,
                    charge_setup=False, charge_completion=False,
                )
                relay_drx = self._drx(leader)
                members = members[1:]
            for dst in members:
                yield from self.dma.transfer(
                    relay_drx.name, dst, nbytes,
                    charge_setup=False, charge_completion=False,
                )

        relays = [
            self.sim.spawn(relay(group, index == 0))
            for index, group in enumerate(self.groups)
        ]
        yield AllOf(self.sim, relays)

    # -- all-reduce ------------------------------------------------------------

    def _allreduce_baseline(self, nbytes: int) -> Generator:
        # Scatter-reduce: every accelerator ships its buffer to the CPU,
        # which restructures and sums all N; all-gather: a staging copy
        # plus a sequential DMA per destination.
        for src in self.accels:
            yield from self.notifier.notify(src)
            yield from self.dma.transfer(src, "root", nbytes)
        yield from self.cpu.restructure(
            collective_profile(nbytes * self.n), threads=3
        )
        yield from self.cpu.restructure(
            reduction_profile(nbytes, self.n), threads=3
        )
        for dst in self.accels:
            yield from self._host_copy(nbytes)
            yield from self.dma.transfer("root", dst, nbytes)

    def _allreduce_dmx(self, nbytes: int) -> Generator:
        root = self.accels[0]
        root_drx = self._drx(root)

        def group_reduce(group: List[str]) -> Generator:
            """Members push to the group leader's DRX, which sums."""
            leader_drx = self._drx(group[0])
            for index, member in enumerate(group):
                yield from self.dma.transfer(
                    member, leader_drx.name, nbytes,
                    charge_setup=(index == 0), charge_completion=False,
                )
                yield from leader_drx.restructure(collective_profile(nbytes))
            yield from leader_drx.restructure(
                reduction_profile(nbytes, len(group))
            )
            if group[0] != root:
                yield from self.dma.transfer(
                    leader_drx.name, root_drx.name, nbytes,
                    charge_setup=False, charge_completion=False,
                )

        reduces = [self.sim.spawn(group_reduce(g)) for g in self.groups]
        yield AllOf(self.sim, reduces)
        yield from root_drx.restructure(
            reduction_profile(nbytes, len(self.groups))
        )

        # All-gather: the same two-level distribution tree as broadcast.
        def gather_relay(group: List[str], is_root_group: bool) -> Generator:
            if is_root_group:
                relay_drx = root_drx
                members = [a for a in group if a != root]
            else:
                leader = group[0]
                yield from self.dma.transfer(
                    root_drx.name, self._drx(leader).name, nbytes,
                    charge_setup=False, charge_completion=False,
                )
                relay_drx = self._drx(leader)
                members = group
            for dst in members:
                yield from self.dma.transfer(
                    relay_drx.name, dst, nbytes,
                    charge_setup=False, charge_completion=False,
                )

        relays = [
            self.sim.spawn(gather_relay(group, index == 0))
            for index, group in enumerate(self.groups)
        ]
        yield AllOf(self.sim, relays)

    # -- entry point ------------------------------------------------------------

    def run(self, operation: str, nbytes: int) -> CollectiveResult:
        """Execute one collective; returns its latency."""
        table = {
            ("broadcast", Mode.MULTI_AXL): self._broadcast_baseline,
            ("broadcast", Mode.BUMP_IN_WIRE): self._broadcast_dmx,
            ("allreduce", Mode.MULTI_AXL): self._allreduce_baseline,
            ("allreduce", Mode.BUMP_IN_WIRE): self._allreduce_dmx,
        }
        key = (operation, self.config.mode)
        if key not in table:
            raise ValueError(f"unsupported collective {operation!r}")
        self.sim.spawn(table[key](nbytes))
        self.sim.run()
        return CollectiveResult(
            operation=operation,
            mode=self.config.mode,
            n_accelerators=self.n,
            latency_s=self.sim.now,
        )
