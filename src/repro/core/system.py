"""The DMX system model: build a multi-accelerator server and run it.

:class:`DMXSystem` instantiates the full modeled machine for a set of
concurrent application chains under one :class:`~repro.core.placement.SystemConfig`
— host CPU, PCIe fabric (switches populated per the configured fan-out),
accelerator cards, DRX units per placement — and executes requests
through it on the DES, producing per-request latencies with
kernel / restructuring / movement / control phase breakdowns, plus the
utilization and traffic figures the energy model consumes.

This is the reproduction's equivalent of the paper's "end-to-end system
emulation infrastructure" (Sec. VI), with cost models in place of the
measured cycle-level latencies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional

from ..cpu import HostCPU
from ..drx.microarch import DRXDevice
from ..faults import (
    CrashPlan,
    DomainCrashed,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RescueAbandoned,
    RetryExhausted,
    retry,
    with_timeout,
)
from ..faults.recovery import shielded
from ..interconnect import DMACosts, DMAEngine, Fabric, LinkConfig, PCIeGen
from ..resilience.control import ControlPlane, ResilienceConfig
from ..runtime.driver import NotificationModel
from ..sim import AllOf, AnyOf, PhaseAccumulator, Simulator, Trace, \
    WaitTimeout
from ..sim.tracing import FaultRecord
from ..telemetry import ActiveSpan, SpanContext, Telemetry
from .chain import AppChain, KernelStage, MotionStage
from .placement import Mode, SystemConfig, drx_config_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.planner import PlanDecision, PlannerConfig

__all__ = ["RequestRecord", "RunResult", "DMXSystem",
           "PHASE_KERNEL", "PHASE_RESTRUCTURE", "PHASE_MOVEMENT",
           "PHASE_CONTROL", "PHASE_RECOVERY"]

PHASE_KERNEL = "kernel"
PHASE_RESTRUCTURE = "restructuring"
PHASE_MOVEMENT = "movement"
PHASE_CONTROL = "control"
ALL_PHASES = (PHASE_KERNEL, PHASE_RESTRUCTURE, PHASE_MOVEMENT, PHASE_CONTROL)

# Time burned on a DRX path that missed its deadline before the request
# degraded to CPU restructuring. Deliberately *not* in ALL_PHASES: the
# phase only materializes in runs with fault injection enabled, keeping
# fault-free breakdowns bit-identical to the original model.
PHASE_RECOVERY = "recovery"

#: Exceptions the per-request recovery machinery handles (everything
#: else is a genuine model bug and propagates in strict mode).
_RECOVERABLE = (WaitTimeout, InjectedFault, RetryExhausted)

#: Exceptions that terminate a request with ``failed=True``. The
#: transient set, plus a rescue abandoned past its deadline — a typed
#: *permanent*-failure outcome, deliberately kept out of ``_RECOVERABLE``
#: so nothing retries it.
_REQUEST_FATAL = _RECOVERABLE + (RescueAbandoned,)

# The accelerator→DRX hop crosses the card-internal multiplexer: the
# same x8 wire rate but with near-ideal protocol efficiency and
# negligible propagation, and — being internal to the card — independent
# of the system's PCIe generation.
_MUX_CONFIG = LinkConfig(
    gen=PCIeGen.GEN3, lanes=8, protocol_efficiency=0.95,
    propagation_latency_s=50e-9,
)

# Applications sharing one large standalone DRX card.
STANDALONE_APPS_PER_CARD = 2

# Transfers that stage through host memory (Multi-Axl and Integrated-DRX
# paths) pay a DRAM store on the way in and a load on the way out, on
# top of the PCIe crossing. Effective host DMA-staging bandwidth:
HOST_STAGING_BYTES_PER_S = 25e9

# When True (default), the DRX compiler fuses restructuring-op chains
# through the on-chip scratchpads so only the stage's real input/output
# touch DRAM. Toggled off by the fusion ablation study.
SCRATCHPAD_FUSION = True


@dataclass
class RequestRecord:
    """One completed end-to-end request.

    ``retries`` counts re-issued operations (DMA, kernel, notification)
    on the request's behalf; ``fell_back`` marks a request whose DRX path
    blew its deadline budget and degraded to CPU restructuring;
    ``rerouted`` marks a request the control plane proactively steered
    away from its home DRX (to an alternate unit or to CPU) *without*
    burning a timeout — distinct from ``fell_back``, which is the
    reactive path; ``failed`` marks a request whose recovery was
    exhausted (its record still exists — a production system answers
    such requests with an error, it does not hang); ``rescued`` marks a
    request with an in-flight leg drained off a *crashed* failure domain
    and resubmitted to completion on a surviving backend — distinct from
    both ``fell_back`` (retried in place after a timeout) and
    ``rerouted`` (steered before dispatch).
    """

    app: str
    start: float
    end: float
    phases: Dict[str, float]
    retries: int = 0
    fell_back: bool = False
    rerouted: bool = False
    failed: bool = False
    rescued: bool = False
    request_id: int = -1
    #: Per-motion-leg planner decisions (backend kind chosen per leg) and
    #: the matching ranking strings. ``None`` unless the system was built
    #: with ``backends=`` (the planner armed) — golden serializations of
    #: planner-free runs are unaffected by the planner subsystem.
    backend: Optional[List[str]] = None
    planner_reason: Optional[List[str]] = None

    @property
    def latency(self) -> float:
        return self.end - self.start


@dataclass
class RunResult:
    """Aggregate outcome of a latency or throughput run."""

    mode: Mode
    records: List[RequestRecord]
    elapsed: float
    requests_per_app: int
    #: The run's telemetry (spans + metrics); write it out with
    #: :func:`repro.telemetry.write_artifact`.
    telemetry: Optional[Telemetry] = None
    #: Per-backend leg attribution — ``{kind: {planned, executed,
    #: rerouted, fallen_back}}`` — populated only when the per-leg
    #: planner is armed (``backends=`` on the system).
    backend_legs: Optional[Dict[str, Dict[str, int]]] = None

    def apps(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.app not in seen:
                seen.append(record.app)
        return seen

    def _matching(
        self, app: Optional[str], include_failed: bool
    ) -> List[RequestRecord]:
        return [
            r
            for r in self.records
            if (app is None or r.app == app)
            and (include_failed or not r.failed)
        ]

    def latencies(
        self, app: Optional[str] = None, include_failed: bool = False
    ) -> List[float]:
        """Per-request latencies; failed requests excluded by default
        (their latency measures recovery give-up, not service)."""
        return [r.latency for r in self._matching(app, include_failed)]

    def mean_latency(
        self, app: Optional[str] = None, include_failed: bool = False
    ) -> float:
        values = self.latencies(app, include_failed=include_failed)
        if not values:
            raise ValueError(f"no records for app {app!r}")
        return sum(values) / len(values)

    def phase_totals(self, app: Optional[str] = None) -> Dict[str, float]:
        acc = PhaseAccumulator(ALL_PHASES)
        for record in self.records:
            if app is None or record.app == app:
                for phase, duration in record.phases.items():
                    acc.add(phase, duration)
        return acc.totals

    def phase_fractions(self, app: Optional[str] = None) -> Dict[str, float]:
        totals = self.phase_totals(app)
        overall = sum(totals.values())
        if overall <= 0:
            return {phase: 0.0 for phase in totals}
        return {phase: t / overall for phase, t in totals.items()}

    def throughput(
        self, app: Optional[str] = None, include_failed: bool = False
    ) -> float:
        """Successfully answered requests per second over the run.

        Requests whose recovery was exhausted (``failed=True``) are
        excluded by default so they don't inflate goodput; pass
        ``include_failed=True`` for the raw completion rate.
        """
        count = len(self._matching(app, include_failed))
        if self.elapsed <= 0:
            raise ValueError("zero elapsed time")
        return count / self.elapsed

    # -- recovery-plane aggregates -------------------------------------------

    def total_retries(self, app: Optional[str] = None) -> int:
        """Operations re-issued across all matching requests."""
        return sum(
            r.retries for r in self.records if app is None or r.app == app
        )

    def fallback_count(self, app: Optional[str] = None) -> int:
        """Requests that degraded from the DRX path to CPU restructuring."""
        return sum(
            1
            for r in self.records
            if r.fell_back and (app is None or r.app == app)
        )

    def rerouted_count(self, app: Optional[str] = None) -> int:
        """Requests the control plane steered around an open breaker
        (proactive — no timeout burned), distinct from fallbacks."""
        return sum(
            1
            for r in self.records
            if r.rerouted and (app is None or r.app == app)
        )

    def failure_count(self, app: Optional[str] = None) -> int:
        """Requests whose recovery was exhausted."""
        return sum(
            1
            for r in self.records
            if r.failed and (app is None or r.app == app)
        )

    def rescued_count(self, app: Optional[str] = None) -> int:
        """Requests drained off a crashed failure domain and resubmitted
        to completion on a surviving backend — distinct from
        ``fallback_count`` (retried in place after a burned timeout)."""
        return sum(
            1
            for r in self.records
            if r.rescued and (app is None or r.app == app)
        )

    def recovery_summary(self) -> Dict[str, object]:
        """Run-wide recovery counters for reporting.

        When the per-leg planner was armed, a ``"backends"`` key carries
        the per-backend leg attribution (legs planned / executed /
        rerouted / fallen-back per backend kind); planner-free runs keep
        the historical five-key shape exactly.
        """
        summary: Dict[str, object] = {
            "requests": len(self.records),
            "retries": self.total_retries(),
            "fallbacks": self.fallback_count(),
            "rerouted": self.rerouted_count(),
            "rescued": self.rescued_count(),
            "failures": self.failure_count(),
        }
        if self.backend_legs is not None:
            summary["backends"] = {
                kind: dict(stats)
                for kind, stats in sorted(self.backend_legs.items())
            }
        return summary


class _RequestState:
    """Mutable per-request recovery bookkeeping."""

    __slots__ = (
        "request_id", "retries", "fell_back", "rerouted", "failed",
        "rescued", "leg_backends", "leg_reasons",
    )

    def __init__(self, request_id: int):
        self.request_id = request_id
        self.retries = 0
        self.fell_back = False
        self.rerouted = False
        self.failed = False
        self.rescued = False
        self.leg_backends: List[str] = []
        self.leg_reasons: List[str] = []


class DMXSystem:
    """One simulated server instance for a set of concurrent chains.

    Pass a :class:`~repro.faults.FaultPlan` to run with fault injection
    and the recovery plane enabled (watchdog timeouts, DMA/kernel/
    notification retries, DRX-deadline fallback to CPU restructuring).
    With ``faults=None`` (the default) every code path and timing is
    identical to the fault-free model.

    Pass a :class:`~repro.resilience.ResilienceConfig` to additionally
    arm the control plane: per-DRX health monitoring and circuit
    breakers that proactively route motion stages around a sick unit —
    to an alternate placement or straight to CPU restructuring — before
    any per-request deadline is burned. With ``resilience=None`` (the
    default) dispatch is untouched.

    Pass a :class:`~repro.backends.PlannerConfig` as ``backends`` to arm
    the cost-based per-leg planner: every motion stage's restructuring
    leg is priced on each eligible candidate backend (DRX / CPU / DSA /
    XDMA) under live contention and the cheapest admitted one runs it.
    With ``backends=None`` (the default) routing is the classic
    DRX-with-CPU-fallback engine, byte-for-byte.

    Pass a :class:`~repro.faults.CrashPlan` as ``domains`` to arm the
    permanent-failure layer: scheduled crashes kill whole failure
    domains mid-run, in-flight legs on the dead domain are drained via
    the engine's interrupt machinery and rescued exactly once on a
    surviving backend, the domain is decommissioned (breaker DEAD, no
    new legs priced on it), and an optional revival re-admits it through
    half-open probing. A plan with no crashes arms nothing — runs stay
    byte-identical to unarmed ones.
    """

    def __init__(
        self,
        chains: List[AppChain],
        config: SystemConfig,
        faults: Optional[FaultPlan] = None,
        telemetry_enabled: bool = True,
        resilience: Optional[ResilienceConfig] = None,
        backends: Optional["PlannerConfig"] = None,
        domains: Optional[CrashPlan] = None,
    ):
        if not chains:
            raise ValueError("need at least one application chain")
        for chain in chains:
            chain.validate()
        names = [c.name for c in chains]
        if len(set(names)) != len(names):
            raise ValueError("application chain names must be unique")
        self.chains = chains
        self.config = config
        self.sim = Simulator()
        self.telemetry = Telemetry(self.sim, enabled=telemetry_enabled)
        self._metrics_recorded = False
        self._faults = faults
        self._request_ids = itertools.count()
        if faults is not None:
            self.fault_trace: Optional[Trace] = Trace(
                note_listener=self._fault_instant
            )
            self.injector: Optional[FaultInjector] = FaultInjector(
                self.sim,
                seed=faults.seed,
                policies=faults.site_policies(),
                trace=self.fault_trace,
            )
        else:
            self.fault_trace = None
            self.injector = None
        self.control: Optional[ControlPlane] = (
            ControlPlane(self.sim, self.telemetry, resilience)
            if resilience is not None
            else None
        )
        # Restructuring on the host scales poorly across cores (the paper
        # observes 130-140 ephemeral MKL threads thrashing the shared cache
        # hierarchy and memory bandwidth): a high per-extra-thread overhead
        # models that sub-linear scaling.
        self.cpu = HostCPU(self.sim, max_threads=16, parallel_overhead=0.35)
        link = LinkConfig(gen=config.pcie_gen, lanes=config.accelerator_lanes)
        upstream = LinkConfig(gen=config.pcie_gen, lanes=config.upstream_lanes)
        self.fabric = Fabric(self.sim, link_config=link,
                             upstream_config=upstream)
        if self.injector is not None:
            self.fabric.injector = self.injector
        self.dma = DMAEngine(
            self.sim, self.fabric, DMACosts(),
            injector=self.injector,
            timeout_s=faults.dma_timeout_s if faults else None,
            retry_policy=faults.dma_retry if faults else None,
        )
        self.notifier = NotificationModel(
            self.sim, self.cpu,
            injector=self.injector,
            timeout_s=faults.notify_timeout_s if faults else None,
            retry_policy=faults.notify_retry if faults else None,
        )
        self.accel_devices: Dict[str, "AcceleratorDeviceProxy"] = {}
        self.drx_devices: Dict[str, DRXDevice] = {}
        self._accel_names: Dict[tuple, str] = {}  # (app_idx, stage_idx) -> name
        self._switch_of: Dict[str, str] = {}
        self._standalone_drx_of: Dict[int, str] = {}
        self._build_topology()
        # The per-leg backend planner (lazy import: repro.backends pulls
        # repro.core back in for chain/placement types).
        self.backend_stats: Dict[str, Dict[str, int]] = {}
        if backends is not None:
            from ..backends.planner import LegPlanner

            self.planner: Optional[LegPlanner] = LegPlanner(self, backends)
            for kind in self.planner.kinds():
                self.backend_stats[kind] = {
                    "planned": 0, "executed": 0,
                    "rerouted": 0, "fallen_back": 0,
                }
        else:
            self.planner = None
        # The permanent-failure layer (lazy import: the recovery module
        # pulls repro.core back in for the system type). Constructed only
        # when the plan actually schedules a crash, so an armed-but-empty
        # plan adds zero events and zero draws — byte identity holds.
        if domains is not None and domains.crashes:
            from ..resilience.recovery import DomainManager

            self.domains: Optional[DomainManager] = DomainManager(
                self, domains
            )
        else:
            self.domains = None

    # -- topology ------------------------------------------------------------

    def _build_topology(self) -> None:
        from ..accelerators.base import AcceleratorDevice

        config = self.config
        mode = config.mode
        drx_config = drx_config_for(config)

        switch_index = -1
        slots_left = 0
        current_switch = None
        for app_index, chain in enumerate(self.chains):
            app_first_switch = None
            for stage_index, stage in enumerate(chain.stages):
                if not isinstance(stage, KernelStage):
                    continue
                if slots_left == 0:
                    switch_index += 1
                    current_switch = self.fabric.add_switch(f"sw{switch_index}")
                    slots_left = config.accelerators_per_switch
                name = f"a{app_index}k{stage_index // 2}"
                self.fabric.add_endpoint(name, current_switch)
                slots_left -= 1
                if app_first_switch is None:
                    app_first_switch = current_switch
                self._accel_names[(app_index, stage_index)] = name
                self._switch_of[name] = current_switch.name
                self.accel_devices[name] = AcceleratorDevice(
                    self.sim, stage.spec, stage.accel_time_s, name=name
                )
                if mode == Mode.BUMP_IN_WIRE:
                    drx_name = f"{name}.drx"
                    self.fabric.add_inline(
                        drx_name, name, mux_config=_MUX_CONFIG
                    )
                    self.drx_devices[drx_name] = DRXDevice(
                        self.sim, drx_config, name=drx_name
                    )
            if mode == Mode.STANDALONE:
                # Standalone cards scale with the concurrent applications
                # ("installing multiple Standalone DRX cards can scale DRX
                # performance"), but each is a *large* card shared by a
                # couple of applications — the amortization of glue logic
                # the paper credits this placement with.
                group = app_index // STANDALONE_APPS_PER_CARD
                drx_name = f"drx.s{group}"
                if drx_name not in self.drx_devices:
                    self.fabric.add_endpoint(drx_name, app_first_switch)
                    self.drx_devices[drx_name] = DRXDevice(
                        self.sim, drx_config, name=drx_name
                    )
                    self._switch_of[drx_name] = app_first_switch.name
                self._standalone_drx_of[app_index] = drx_name

        if mode == Mode.INTEGRATED:
            # One DRX beside the CPU, shared by every application.
            self.drx_devices["drx.root"] = DRXDevice(
                self.sim, drx_config, name="drx.root"
            )
        if mode == Mode.PCIE_INTEGRATED:
            for switch_name in [
                n.name for n in self.fabric.nodes.values() if n.kind == "switch"
            ]:
                self.drx_devices[f"drx.{switch_name}"] = DRXDevice(
                    self.sim, drx_config, name=f"drx.{switch_name}"
                )

    @property
    def n_switches(self) -> int:
        return sum(1 for n in self.fabric.nodes.values() if n.kind == "switch")

    def accel_name(self, app_index: int, kernel_index: int) -> str:
        return self._accel_names[(app_index, kernel_index * 2)]

    # -- per-request process ----------------------------------------------------

    def _timed(
        self,
        phases: PhaseAccumulator,
        phase: str,
        proc,
        span: Optional[ActiveSpan] = None,
    ) -> Generator:
        """Run ``proc`` and book its elapsed time under ``phase``.

        ``span`` is the matching telemetry phase span (opened by the
        caller at the same sim time): it closes exactly at the
        ``phases.add`` boundary, so span-derived phase totals reconcile
        with :meth:`RunResult.phase_totals` to the bit. On an exception
        the span is closed ``abandoned`` and the phase is *not* booked —
        the recovery path re-bills that time to :data:`PHASE_RECOVERY`.
        """
        start = self.sim.now
        try:
            result = yield from proc
        except BaseException:
            if span is not None:
                self.telemetry.end(span, abandoned=True)
            raise
        phases.add(phase, self.sim.now - start)
        if span is not None:
            self.telemetry.end(span)
        return result

    def _phase_span(
        self, ctx: SpanContext, name: str, phase: str, actor: str = "",
        **attrs: object,
    ):
        """Open a phase span under ``ctx``; returns (span, child ctx)."""
        span = ctx.begin(name, phase, actor=actor, phase=phase, **attrs)
        return span, ctx.child(span)

    # -- recovery-plane plumbing ---------------------------------------------

    def _fault_instant(self, ev: FaultRecord) -> None:
        """Mirror one fault-trace note into the telemetry instant stream."""
        self.telemetry.instant(
            ev.kind, "fault", actor=ev.actor, request_id=ev.request_id,
            time=ev.time, site=ev.site, detail=ev.detail,
        )

    def _note(
        self,
        kind: str,
        actor: str,
        site: str = "",
        request_id: int = -1,
        detail: str = "",
    ) -> None:
        if self.fault_trace is not None:
            self.fault_trace.note(
                self.sim.now, actor, kind,
                site=site, request_id=request_id, detail=detail,
            )

    def _retry_cb(
        self, state: Optional[_RequestState], site: str, actor: str
    ) -> Optional[Callable[[int, BaseException, bool], None]]:
        """Per-operation failed-attempt observer: per-request retry count
        plus a trace record. None in fault-free runs (fast path)."""
        if self._faults is None:
            return None

        def cb(attempt: int, exc: BaseException, will_retry: bool) -> None:
            rid = state.request_id if state is not None else -1
            if will_retry:
                if state is not None:
                    state.retries += 1
                if self.telemetry.enabled:
                    self.telemetry.counter("retries", site=site).inc()
                self._note("retry", actor, site=site, request_id=rid,
                           detail=type(exc).__name__)
            else:
                self._note("exhausted", actor, site=site, request_id=rid,
                           detail=type(exc).__name__)

        return cb

    def _leg_race(
        self,
        op: Generator,
        deadline_s: Optional[float],
        crash_ev,
        target: str,
        what: str,
    ) -> Generator:
        """Run one motion leg racing its deadline *and* its failure
        domain's crash broadcast.

        With ``crash_ev=None`` (no crash scheduled on the target) this
        is exactly :func:`~repro.faults.with_timeout` — the legacy
        deadline race, byte for byte. With a crash event armed, three
        outcomes race: the leg completes (even exactly at the crash
        instant — completed work is completed), the deadline fires
        (``WaitTimeout``, the transient-fallback path), or the domain
        dies — the in-flight child is cancelled via the engine's
        interrupt machinery (its ``finally`` blocks release every held
        slot) and a typed :class:`~repro.faults.DomainCrashed` surfaces
        for rescue. A leg dispatched to an *already*-crashed,
        not-yet-detected domain fails fast at zero cost: the surprise
        link-down is observed before any deadline budget burns.
        """
        if crash_ev is None:
            result = yield from with_timeout(self.sim, op, deadline_s,
                                             what=what)
            return result
        if crash_ev.triggered:
            op.close()
            exc = DomainCrashed(target, self.domains.crashed_at[target])
            exc.inflight = False
            raise exc
        proc = self.sim.spawn(shielded(op), name=f"leg:{what}")
        waiters = [proc]
        deadline = None
        if deadline_s is not None:
            deadline = self.sim.timeout(deadline_s)
            waiters.append(deadline)
        waiters.append(crash_ev)
        yield AnyOf(self.sim, waiters)
        if proc.triggered:
            if deadline is not None:
                deadline.cancel()
            ok, value = proc.value
            if not ok:
                raise value
            return value
        if crash_ev.triggered:
            if deadline is not None:
                deadline.cancel()
            if proc.is_alive:
                proc.interrupt(f"domain {target} crashed")
            exc = DomainCrashed(target, self.domains.crashed_at[target])
            exc.inflight = True
            raise exc
        if proc.is_alive:
            proc.interrupt(f"deadline {deadline_s} s exceeded")
        raise WaitTimeout(
            f"{what or 'operation'} exceeded its {deadline_s} s deadline"
        )

    def _rescue_accounting(
        self,
        exc: DomainCrashed,
        target: str,
        span_start: float,
        attempt: ActiveSpan,
        sctx: SpanContext,
        state: Optional[_RequestState],
        phases: PhaseAccumulator,
        probe: bool,
        count: int,
    ) -> float:
        """Book one drained (or failed-fast) leg and gate the rescue.

        Abandons the attempt subtree, re-bills the burned interval to
        the recovery phase (carrying the already-burned latency, exactly
        like the deadline-fallback path), feeds the crash observation to
        the domain manager's detection escalation, and — when the leg is
        past the plan's rescue deadline — raises
        :class:`~repro.faults.RescueAbandoned` instead of letting the
        caller resubmit. Returns the burned seconds."""
        manager = self.domains
        rid = state.request_id if state is not None else -1
        burned = self.sim.now - span_start
        if self.control is not None:
            self.control.record(target, False, burned, probe=probe)
        manager.observe_crash_failure(
            target, rid, count, getattr(exc, "inflight", True)
        )
        self._note(
            "drain", target, site="domain", request_id=rid,
            detail=type(exc).__name__,
        )
        self.telemetry.end(attempt, error=type(exc).__name__)
        self.telemetry.mark_abandoned(attempt)
        if burned:
            phases.add(PHASE_RECOVERY, burned)
            self.telemetry.add(
                "recovery", PHASE_RECOVERY, start=span_start,
                end=self.sim.now, actor=target, parent=sctx.parent_id,
                request_id=sctx.request_id, phase=PHASE_RECOVERY,
                cause=type(exc).__name__,
            )
        if manager.past_rescue_deadline(burned):
            manager.on_rescue_abandoned(target, rid, burned, count)
            raise RescueAbandoned(target, burned)
        return burned

    def _staged_transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        state: Optional[_RequestState] = None,
        ctx: Optional[SpanContext] = None,
    ) -> Generator:
        """A DMA that stages through host memory (src or dst is 'root')."""
        yield from self.dma.transfer(
            src, dst, nbytes,
            on_retry=self._retry_cb(state, "dma", f"{src}->{dst}"),
            ctx=ctx,
        )
        span = (
            ctx.begin("host-staging", "staging", actor="root", bytes=nbytes)
            if ctx is not None
            else None
        )
        try:
            yield self.sim.timeout(nbytes / HOST_STAGING_BYTES_PER_S)
        except BaseException:
            if span is not None:
                ctx.end(span, abandoned=True)
            raise
        if span is not None:
            ctx.end(span)

    def transfer_estimate(self, src: str, dst: str, nbytes: int) -> float:
        """Contention-free estimate of one DMA leg, including the host
        DRAM-staging pass when an endpoint is host memory. Pure — used
        by the backend planner's cost models, never by execution."""
        est = self.dma.unloaded_latency(src, dst, nbytes)
        if src == "root" or dst == "root":
            est += nbytes / HOST_STAGING_BYTES_PER_S
        return est

    def _drx_restructure(
        self,
        drx: DRXDevice,
        fused,
        state: Optional[_RequestState],
        ctx: Optional[SpanContext] = None,
    ) -> Generator:
        """One DRX job, guarded at the "drx" injection site when faulted."""
        op = drx.restructure(fused, ctx=ctx)
        if self.injector is None:
            return op
        return self.injector.guard(
            "drx", op, actor=drx.name,
            request_id=state.request_id if state is not None else -1,
        )

    def _multi_axl_motion(
        self,
        src: str,
        dst: str,
        stage: MotionStage,
        threads: int,
        phases: PhaseAccumulator,
        state: Optional[_RequestState],
        ctx: SpanContext,
    ) -> Generator:
        """Restructure on the host CPU, staging through host memory —
        the Multi-Axl baseline path, doubling as the degraded path for
        requests whose DRX budget ran out."""
        span, cctx = self._phase_span(ctx, "movement-in", PHASE_MOVEMENT)
        yield from self._timed(
            phases, PHASE_MOVEMENT,
            self._staged_transfer(src, "root", stage.input_bytes, state, cctx),
            span=span,
        )
        span, _ = self._phase_span(
            ctx, "cpu-restructure", PHASE_RESTRUCTURE, actor="cpu",
            threads=threads,
        )
        yield from self._timed(
            phases, PHASE_RESTRUCTURE,
            self.cpu.restructure(stage.profile, threads=threads),
            span=span,
        )
        span, cctx = self._phase_span(ctx, "movement-out", PHASE_MOVEMENT)
        yield from self._timed(
            phases, PHASE_MOVEMENT,
            self._staged_transfer(
                "root", dst, stage.output_bytes, state, cctx
            ),
            span=span,
        )

    def _drx_placement(self, mode: Mode, src: str, app_index: int):
        """The DRX unit serving ``src`` and its staging point."""
        if mode == Mode.INTEGRATED:
            return self.drx_devices["drx.root"], "root"
        if mode == Mode.STANDALONE:
            drx = self.drx_devices[self._standalone_drx_of[app_index]]
            return drx, drx.name
        if mode == Mode.BUMP_IN_WIRE:
            drx = self.drx_devices[f"{src}.drx"]
            return drx, drx.name
        if mode == Mode.PCIE_INTEGRATED:
            switch = self._switch_of[src]
            return self.drx_devices[f"drx.{switch}"], switch
        raise AssertionError(f"unhandled mode {mode}")  # pragma: no cover

    def _alternate_placements(self, mode: Mode, exclude: str):
        """Other DRX units (with their staging points) that could serve
        a leg whose home unit's breaker is open, in deterministic name
        order. Standalone cards and switch-integrated DRXs are fungible
        (the fabric routes the extra hops and charges for them);
        Integrated has a single unit and Bump-in-the-Wire units are
        private to their wire, so neither has alternates."""
        if mode == Mode.STANDALONE:
            return [
                (self.drx_devices[name], name)
                for name in sorted(self.drx_devices)
                if name != exclude
            ]
        if mode == Mode.PCIE_INTEGRATED:
            return [
                (self.drx_devices[name], name[len("drx."):])
                for name in sorted(self.drx_devices)
                if name != exclude
            ]
        return []

    # -- placement control surface (the closed-loop controller's actuator) ----

    def standalone_cards(self) -> List[str]:
        """Standalone DRX card names, sorted (empty in other modes)."""
        if self.config.mode is not Mode.STANDALONE:
            return []
        return sorted(self.drx_devices)

    def card_of_app(self, app_index: int) -> str:
        """The standalone card currently homing ``app_index``'s legs."""
        return self._standalone_drx_of[app_index]

    def card_switch(self, card: str) -> str:
        """The switch a standalone card hangs off."""
        return self._switch_of[card]

    def upstream_crossings(self, app_index: int, card: str) -> int:
        """Upstream (switch→root→switch) traversals one request on chain
        ``app_index`` pays with its motion legs staged on ``card``.

        Each motion stage moves ``src accel → card → dst accel``; every
        endpoint on a different switch than the card costs one crossing
        each way. This is the placement optimizer's objective: staged on
        its home-switch card an app crosses zero upstream links, staged
        remotely every leg round-trips the root complex.
        """
        card_switch = self._switch_of[card]
        crossings = 0
        for stage_index, stage in enumerate(self.chains[app_index].stages):
            if not isinstance(stage, MotionStage):
                continue
            src = self._accel_names[(app_index, stage_index - 1)]
            dst = self._accel_names[(app_index, stage_index + 1)]
            if self._switch_of[src] != card_switch:
                crossings += 1
            if self._switch_of[dst] != card_switch:
                crossings += 1
        return crossings

    def migrate_app(self, app_index: int, card: str) -> str:
        """Re-home chain ``app_index``'s motion staging onto ``card``.

        STANDALONE-placement live migration: the mapping is consulted at
        every motion leg's placement lookup, so the next leg dispatched
        for the app stages on the new card — in-flight legs finish where
        they started. Callers (the closed-loop controller) migrate at
        request boundaries so a single request never splits across
        cards. Returns the card the app was homed on before.
        """
        if self.config.mode is not Mode.STANDALONE:
            raise ValueError(
                "migrate_app is a STANDALONE-placement operation "
                f"(mode is {self.config.mode})"
            )
        if card not in self.drx_devices:
            raise KeyError(f"no standalone card named {card!r}")
        if not 0 <= app_index < len(self.chains):
            raise IndexError(f"app_index {app_index} out of range")
        old = self._standalone_drx_of[app_index]
        self._standalone_drx_of[app_index] = card
        return old

    def _route_drx(
        self,
        mode: Mode,
        drx: DRXDevice,
        staging: str,
        state: Optional[_RequestState],
        mspan: Optional[ActiveSpan],
        force_cpu: bool,
    ):
        """Control-plane routing for one motion stage's DRX leg.

        Returns ``(drx, staging, probe)`` for the unit the leg should
        use, or ``None`` when the leg must degrade to CPU restructuring
        right away (the brownout FORCE_CPU tier, the home unit's failure
        domain decommissioned, or the home breaker open with no
        admitting alternate). Rerouted legs never burn the per-request
        DRX deadline — that is the breaker's whole point.

        A *decommissioned* domain (crashed and detected) is excluded
        outright — home and alternates both — without consulting its
        breaker; an undetected corpse still admits, dispatches, and
        fails fast, which is what drives detection.
        """
        rid = state.request_id if state is not None else -1
        record_spans = self.telemetry.enabled and mspan is not None
        if force_cpu:
            if state is not None:
                state.rerouted = True
            if record_spans:
                mspan.attrs["forced_cpu"] = True
            self.telemetry.instant(
                "brownout_force_cpu", "brownout", actor=drx.name,
                request_id=rid,
            )
            return None
        down = self.domains is not None and self.domains.is_down(drx.name)
        if down:
            if record_spans:
                mspan.attrs["domain_down"] = True
        else:
            if self.control is None:
                return drx, staging, False
            decision = self.control.admit(drx.name)
            if decision.allow:
                return drx, staging, decision.probe
            if record_spans:
                mspan.attrs["breaker_open"] = True
        if self.control is None or self.control.config.reroute_alternates:
            for alt, alt_staging in self._alternate_placements(
                mode, drx.name
            ):
                if (
                    self.domains is not None
                    and self.domains.is_down(alt.name)
                ):
                    continue
                if self.control is not None:
                    alt_decision = self.control.admit(alt.name)
                    if not alt_decision.allow:
                        continue
                    probe = alt_decision.probe
                else:
                    probe = False
                if state is not None:
                    state.rerouted = True
                if record_spans:
                    mspan.attrs["rerouted_to"] = alt.name
                if self.control is not None:
                    self.control.note_reroute(drx.name, alt.name, rid)
                return alt, alt_staging, probe
        if state is not None:
            state.rerouted = True
        if record_spans:
            mspan.attrs["rerouted_to"] = "cpu"
        if self.control is not None:
            self.control.note_reroute(drx.name, "cpu", rid)
        return None

    def _drx_motion(
        self,
        mode: Mode,
        src: str,
        dst: str,
        staging: str,
        drx: DRXDevice,
        stage: MotionStage,
        fused,
        phases: PhaseAccumulator,
        state: Optional[_RequestState],
        ctx: SpanContext,
    ) -> Generator:
        """The DRX leg of one motion stage: ingest, restructure, notify,
        deliver. Under a :class:`FaultPlan` this runs as a child process
        racing the DRX deadline budget."""
        if mode == Mode.PCIE_INTEGRATED:
            # Switch-integrated DRX processes data *as it streams through
            # the switch* (line-rate processing, no store-and-forward):
            # the inbound transfer and the restructuring overlap.
            pspan, pctx = self._phase_span(
                ctx, "restructure", PHASE_RESTRUCTURE, actor=drx.name,
                overlapped=True,
            )
            ingest_op = self.telemetry.wrap(
                self.fabric.transfer(src, staging, stage.input_bytes),
                "ingest", "ingest", actor=staging, parent=pspan,
                request_id=ctx.request_id, bytes=stage.input_bytes,
            )
            work_op = self._drx_restructure(drx, fused, state, ctx=pctx)
            if self._faults is not None:
                # Shield the children: an injected fault must surface
                # here (for fallback), not trip the engine's strict mode.
                ingest_op, work_op = shielded(ingest_op), shielded(work_op)
            ingest = self.sim.spawn(ingest_op)
            work = self.sim.spawn(work_op)
            start = self.sim.now
            try:
                yield AllOf(self.sim, [ingest, work])
            except BaseException:
                self.telemetry.end(pspan, abandoned=True)
                if self.domains is not None:
                    # A drained leg must not leave orphan children
                    # holding the dead switch's DRX queue slot past the
                    # decommission instant: cancel them too (their
                    # ``finally`` blocks release what they hold).
                    for proc in (ingest, work):
                        if proc.is_alive:
                            proc.interrupt("leg cancelled")
                raise
            phases.add(PHASE_RESTRUCTURE, self.sim.now - start)
            self.telemetry.end(pspan)
            if self._faults is not None:
                for proc in (ingest, work):
                    ok, value = proc.value
                    if not ok:
                        raise value
        else:
            span, cctx = self._phase_span(ctx, "movement-in", PHASE_MOVEMENT)
            in_transfer = (
                self._staged_transfer(
                    src, staging, stage.input_bytes, state, cctx
                )
                if staging == "root"
                else self.dma.transfer(
                    src, staging, stage.input_bytes,
                    on_retry=self._retry_cb(state, "dma", f"{src}->{staging}"),
                    ctx=cctx,
                )
            )
            yield from self._timed(
                phases, PHASE_MOVEMENT, in_transfer, span=span
            )
            span, cctx = self._phase_span(
                ctx, "restructure", PHASE_RESTRUCTURE, actor=drx.name
            )
            yield from self._timed(
                phases, PHASE_RESTRUCTURE,
                self._drx_restructure(drx, fused, state, ctx=cctx),
                span=span,
            )
        # Restructure-completion notification + P2P DMA to the consumer
        # (Fig. 10 steps 8-9).
        span, cctx = self._phase_span(ctx, "control", PHASE_CONTROL)
        yield from self._timed(
            phases, PHASE_CONTROL,
            self.notifier.notify(
                drx.name,
                on_retry=self._retry_cb(state, "notify", drx.name),
                ctx=cctx,
            ),
            span=span,
        )
        span, cctx = self._phase_span(ctx, "movement-out", PHASE_MOVEMENT)
        out_transfer = (
            self._staged_transfer(
                staging, dst, stage.output_bytes, state, cctx
            )
            if staging == "root"
            else self.dma.transfer(
                staging, dst, stage.output_bytes,
                on_retry=self._retry_cb(state, "dma", f"{staging}->{dst}"),
                ctx=cctx,
            )
        )
        yield from self._timed(phases, PHASE_MOVEMENT, out_transfer, span=span)

    def _motion(
        self,
        app_index: int,
        kernel_index: int,
        stage: MotionStage,
        phases: PhaseAccumulator,
        state: Optional[_RequestState] = None,
        rctx: Optional[SpanContext] = None,
        force_cpu: bool = False,
    ) -> Generator:
        """The data-motion step between kernel ``kernel_index`` and the
        next one, under the configured placement."""
        mode = self.config.mode
        src = self.accel_name(app_index, kernel_index)
        dst = self.accel_name(app_index, kernel_index + 1)
        threads = stage.cpu_threads
        if rctx is None:
            rctx = self.telemetry.context(
                request_id=state.request_id if state is not None else -1
            )
        mspan = rctx.begin(
            f"motion{kernel_index}", "stage", src=src, dst=dst
        )
        sctx = rctx.child(mspan)
        try:
            yield from self._motion_body(
                mode, app_index, src, dst, stage, threads, phases, state,
                sctx, mspan, force_cpu,
            )
        except BaseException:
            self.telemetry.end(mspan, abandoned=True)
            raise
        self.telemetry.end(mspan)

    def _motion_body(
        self,
        mode: Mode,
        app_index: int,
        src: str,
        dst: str,
        stage: MotionStage,
        threads: int,
        phases: PhaseAccumulator,
        state: Optional[_RequestState],
        sctx: SpanContext,
        mspan: Optional[ActiveSpan] = None,
        force_cpu: bool = False,
    ) -> Generator:
        if mode == Mode.ALL_CPU:
            # Data already lives in host memory; only the computation.
            span, _ = self._phase_span(
                sctx, "cpu-restructure", PHASE_RESTRUCTURE, actor="cpu",
                threads=threads,
            )
            yield from self._timed(
                phases, PHASE_RESTRUCTURE,
                self.cpu.restructure(stage.profile, threads=threads),
                span=span,
            )
            return

        # Kernel-completion notification + DMA setup (control plane).
        span, cctx = self._phase_span(sctx, "control", PHASE_CONTROL)
        yield from self._timed(
            phases, PHASE_CONTROL,
            self.notifier.notify(
                src, on_retry=self._retry_cb(state, "notify", src), ctx=cctx
            ),
            span=span,
        )

        if mode == Mode.MULTI_AXL:
            yield from self._multi_axl_motion(
                src, dst, stage, threads, phases, state, sctx
            )
            return

        if self.planner is not None:
            yield from self._planned_motion(
                mode, app_index, src, dst, stage, threads, 1, phases,
                state, sctx, mspan, force_cpu,
            )
            return

        drx, staging = self._drx_placement(mode, src, app_index)

        probe = False
        if force_cpu or self.control is not None or self.domains is not None:
            routed = self._route_drx(
                mode, drx, staging, state, mspan, force_cpu
            )
            if routed is None:
                # Browned out: the FORCE_CPU tier, the home unit's
                # domain decommissioned with no surviving alternate, or
                # the home breaker open with every alternate's breaker
                # open too. The stage restructures on the host
                # immediately — no DRX deadline budget is burned.
                yield from self._multi_axl_motion(
                    src, dst, stage, threads, phases, state, sctx
                )
                return
            drx, staging, probe = routed

        # On DRX, the restructuring-op chain is fused through the on-chip
        # scratchpads (the compiler keeps intermediates on chip), so DRAM
        # traffic is just the stage's real input and output — unlike the
        # CPU, whose cache hierarchy materializes every intermediate.
        if SCRATCHPAD_FUSION:
            fused = replace(
                stage.profile,
                bytes_in=stage.input_bytes,
                bytes_out=stage.output_bytes,
            )
        else:  # fusion ablation: every intermediate round-trips DRAM
            fused = stage.profile

        crash_ev = (
            self.domains.watch(drx.name) if self.domains is not None else None
        )
        if self._faults is None and crash_ev is None:
            leg_start = self.sim.now
            yield from self._drx_motion(
                mode, src, dst, staging, drx, stage, fused, phases, state,
                sctx,
            )
            if self.control is not None:
                self.control.record(
                    drx.name, True, self.sim.now - leg_start, probe=probe
                )
            return

        # Graceful degradation: the DRX leg runs under the request's
        # deadline budget (and, when the unit's failure domain has a
        # crash scheduled, races its crash broadcast too); past the
        # deadline the stage falls back to CPU restructuring via host
        # memory, and a crashed domain's leg is drained and rescued.
        local = PhaseAccumulator(ALL_PHASES)
        span_start = self.sim.now
        deadline_s = (
            self._faults.drx_deadline_s if self._faults is not None else None
        )
        attempt = sctx.begin(
            "drx-attempt", "attempt",
            deadline_s=deadline_s,
            **({"breaker_probe": True} if probe else {}),
        )
        actx = sctx.child(attempt)
        try:
            yield from self._leg_race(
                self._drx_motion(
                    mode, src, dst, staging, drx, stage, fused, local, state,
                    actx,
                ),
                deadline_s, crash_ev, drx.name,
                what=f"drx:{drx.name}",
            )
        except DomainCrashed as exc:
            # The domain died under (or before) this leg: drain it and
            # rescue the request exactly once on the CPU path, carrying
            # the already-burned latency.
            burned = self._rescue_accounting(
                exc, drx.name, span_start, attempt, sctx, state, phases,
                probe, 1,
            )
            yield from self._multi_axl_motion(
                src, dst, stage, threads, phases, state, sctx
            )
            if state is not None:
                state.rescued = True
            self.domains.on_rescue(
                drx.name, state.request_id if state is not None else -1,
                burned, 1,
            )
        except _RECOVERABLE as exc:
            if self.control is not None:
                self.control.record(
                    drx.name, False, self.sim.now - span_start, probe=probe
                )
            if state is not None:
                state.fell_back = True
            self._note(
                "fallback", drx.name, site="drx",
                request_id=state.request_id if state is not None else -1,
                detail=type(exc).__name__,
            )
            # The whole attempt subtree is dead time: abandon it (phase
            # spans under it stop counting toward phase totals) and
            # re-bill the interval to the recovery phase, exactly as the
            # accumulator does.
            self.telemetry.end(attempt, error=type(exc).__name__)
            self.telemetry.mark_abandoned(attempt)
            phases.add(PHASE_RECOVERY, self.sim.now - span_start)
            self.telemetry.add(
                "recovery", PHASE_RECOVERY, start=span_start,
                end=self.sim.now, actor=drx.name, parent=sctx.parent_id,
                request_id=sctx.request_id, phase=PHASE_RECOVERY,
                cause=type(exc).__name__,
            )
            yield from self._multi_axl_motion(
                src, dst, stage, threads, phases, state, sctx
            )
        else:
            if self.control is not None:
                self.control.record(
                    drx.name, True, self.sim.now - span_start, probe=probe
                )
            self.telemetry.end(attempt)
            for phase, duration in local.totals.items():
                if duration:
                    phases.add(phase, duration)

    def _recovering_kernel(
        self, device, state: _RequestState
    ) -> Generator:
        """One accelerator invocation under the kernel watchdog: a hung
        or faulted kernel is interrupted (freeing the card's queue slot)
        and re-issued with bounded backoff."""
        plan = self._faults
        yield from retry(
            self.sim,
            lambda: self.injector.guard(
                "kernel", device.execute(),
                actor=device.name, request_id=state.request_id,
            ),
            plan.kernel_retry,
            timeout_s=plan.kernel_timeout_s,
            on_attempt_failed=self._retry_cb(state, "kernel", device.name),
            what=f"kernel:{device.name}",
        )

    # -- coalesced (batched) execution -----------------------------------------
    #
    # A batch is N same-chain requests executed as ONE submission per
    # stage: kernels still run per member (the accelerator does real work
    # for each payload), but every motion leg pays a single control path —
    # one chained descriptor-ring submission + doorbell on the DMA, one
    # amortized program load on the DRX, one coalesced completion ISR —
    # for all N member transfers. This is the serve layer's
    # :class:`~repro.serve.batching.BatchFormer` execution target and the
    # ROADMAP "batching / coalescing of restructuring ops" item.

    def _batched_staged_transfer(
        self,
        src: str,
        dst: str,
        sizes: List[int],
        state: Optional[_RequestState] = None,
        ctx: Optional[SpanContext] = None,
    ) -> Generator:
        """A chained DMA staging through host memory: one submission for
        every member payload, one DRAM staging pass over the total."""
        yield from self.dma.transfer_chained(
            src, dst, sizes,
            on_retry=self._retry_cb(state, "dma", f"{src}->{dst}"),
            ctx=ctx,
        )
        nbytes = sum(sizes)
        span = (
            ctx.begin("host-staging", "staging", actor="root", bytes=nbytes)
            if ctx is not None
            else None
        )
        try:
            yield self.sim.timeout(nbytes / HOST_STAGING_BYTES_PER_S)
        except BaseException:
            if span is not None:
                ctx.end(span, abandoned=True)
            raise
        if span is not None:
            ctx.end(span)

    def _cpu_restructure_batch(
        self, profile, threads: int, count: int
    ) -> Generator:
        """Back-to-back host restructuring of each member payload (the
        CPU has no program-load overhead to amortize)."""
        for _ in range(count):
            yield from self.cpu.restructure(profile, threads=threads)

    def _drx_restructure_batch(
        self,
        drx: DRXDevice,
        fused,
        count: int,
        state: Optional[_RequestState],
        ctx: Optional[SpanContext] = None,
    ) -> Generator:
        """One coalesced DRX job for ``count`` member payloads, guarded
        at the "drx" injection site when faulted."""
        op = drx.restructure_batch([fused] * count, ctx=ctx)
        if self.injector is None:
            return op
        return self.injector.guard(
            "drx", op, actor=drx.name,
            request_id=state.request_id if state is not None else -1,
        )

    def _batched_multi_axl_motion(
        self,
        src: str,
        dst: str,
        stage: MotionStage,
        threads: int,
        count: int,
        phases: PhaseAccumulator,
        state: Optional[_RequestState],
        ctx: SpanContext,
    ) -> Generator:
        """Batched fallback/baseline path: chained staged DMAs through
        host memory around per-member CPU restructuring."""
        span, cctx = self._phase_span(
            ctx, "movement-in", PHASE_MOVEMENT, batch=count
        )
        yield from self._timed(
            phases, PHASE_MOVEMENT,
            self._batched_staged_transfer(
                src, "root", [stage.input_bytes] * count, state, cctx
            ),
            span=span,
        )
        span, _ = self._phase_span(
            ctx, "cpu-restructure", PHASE_RESTRUCTURE, actor="cpu",
            threads=threads, batch=count,
        )
        yield from self._timed(
            phases, PHASE_RESTRUCTURE,
            self._cpu_restructure_batch(stage.profile, threads, count),
            span=span,
        )
        span, cctx = self._phase_span(
            ctx, "movement-out", PHASE_MOVEMENT, batch=count
        )
        yield from self._timed(
            phases, PHASE_MOVEMENT,
            self._batched_staged_transfer(
                "root", dst, [stage.output_bytes] * count, state, cctx
            ),
            span=span,
        )

    def _batched_drx_motion(
        self,
        mode: Mode,
        src: str,
        dst: str,
        staging: str,
        drx: DRXDevice,
        stage: MotionStage,
        fused,
        count: int,
        phases: PhaseAccumulator,
        state: Optional[_RequestState],
        ctx: SpanContext,
    ) -> Generator:
        """The coalesced DRX leg: chained ingest, one batch restructuring
        job, ONE completion notification, chained delivery."""
        if mode == Mode.PCIE_INTEGRATED:
            # Line-rate processing still overlaps the (now batched)
            # inbound stream with the (now coalesced) restructuring job.
            pspan, pctx = self._phase_span(
                ctx, "restructure", PHASE_RESTRUCTURE, actor=drx.name,
                overlapped=True, batch=count,
            )
            ingest_op = self.telemetry.wrap(
                self.fabric.transfer(src, staging, count * stage.input_bytes),
                "ingest", "ingest", actor=staging, parent=pspan,
                request_id=ctx.request_id, bytes=count * stage.input_bytes,
            )
            work_op = self._drx_restructure_batch(
                drx, fused, count, state, ctx=pctx
            )
            if self._faults is not None:
                ingest_op, work_op = shielded(ingest_op), shielded(work_op)
            ingest = self.sim.spawn(ingest_op)
            work = self.sim.spawn(work_op)
            start = self.sim.now
            try:
                yield AllOf(self.sim, [ingest, work])
            except BaseException:
                self.telemetry.end(pspan, abandoned=True)
                if self.domains is not None:
                    for proc in (ingest, work):
                        if proc.is_alive:
                            proc.interrupt("leg cancelled")
                raise
            phases.add(PHASE_RESTRUCTURE, self.sim.now - start)
            self.telemetry.end(pspan)
            if self._faults is not None:
                for proc in (ingest, work):
                    ok, value = proc.value
                    if not ok:
                        raise value
        else:
            span, cctx = self._phase_span(
                ctx, "movement-in", PHASE_MOVEMENT, batch=count
            )
            in_transfer = (
                self._batched_staged_transfer(
                    src, staging, [stage.input_bytes] * count, state, cctx
                )
                if staging == "root"
                else self.dma.transfer_chained(
                    src, staging, [stage.input_bytes] * count,
                    on_retry=self._retry_cb(state, "dma", f"{src}->{staging}"),
                    ctx=cctx,
                )
            )
            yield from self._timed(
                phases, PHASE_MOVEMENT, in_transfer, span=span
            )
            span, cctx = self._phase_span(
                ctx, "restructure", PHASE_RESTRUCTURE, actor=drx.name,
                batch=count,
            )
            yield from self._timed(
                phases, PHASE_RESTRUCTURE,
                self._drx_restructure_batch(drx, fused, count, state, cctx),
                span=span,
            )
        # ONE restructure-completion notification for all members: the
        # chained submission raises a single interrupt; the driver reaps
        # the remaining completions inside that ISR.
        span, cctx = self._phase_span(ctx, "control", PHASE_CONTROL, batch=count)
        yield from self._timed(
            phases, PHASE_CONTROL,
            self.notifier.notify_batch(
                drx.name, count,
                on_retry=self._retry_cb(state, "notify", drx.name),
                ctx=cctx,
            ),
            span=span,
        )
        span, cctx = self._phase_span(
            ctx, "movement-out", PHASE_MOVEMENT, batch=count
        )
        out_transfer = (
            self._batched_staged_transfer(
                staging, dst, [stage.output_bytes] * count, state, cctx
            )
            if staging == "root"
            else self.dma.transfer_chained(
                staging, dst, [stage.output_bytes] * count,
                on_retry=self._retry_cb(state, "dma", f"{staging}->{dst}"),
                ctx=cctx,
            )
        )
        yield from self._timed(phases, PHASE_MOVEMENT, out_transfer, span=span)

    def _batched_motion(
        self,
        app_index: int,
        kernel_index: int,
        stage: MotionStage,
        count: int,
        phases: PhaseAccumulator,
        state: Optional[_RequestState],
        rctx: SpanContext,
        force_cpu: bool = False,
    ) -> Generator:
        mode = self.config.mode
        src = self.accel_name(app_index, kernel_index)
        dst = self.accel_name(app_index, kernel_index + 1)
        threads = stage.cpu_threads
        mspan = rctx.begin(
            f"motion{kernel_index}", "stage", src=src, dst=dst, batch=count
        )
        sctx = rctx.child(mspan)
        try:
            yield from self._batched_motion_body(
                mode, app_index, src, dst, stage, threads, count, phases,
                state, sctx, mspan, force_cpu,
            )
        except BaseException:
            self.telemetry.end(mspan, abandoned=True)
            raise
        self.telemetry.end(mspan)

    def _batched_motion_body(
        self,
        mode: Mode,
        app_index: int,
        src: str,
        dst: str,
        stage: MotionStage,
        threads: int,
        count: int,
        phases: PhaseAccumulator,
        state: Optional[_RequestState],
        sctx: SpanContext,
        mspan: Optional[ActiveSpan] = None,
        force_cpu: bool = False,
    ) -> Generator:
        """Mirror of :meth:`_motion_body` for a coalesced batch — same
        routing, brownout, and deadline-fallback structure, batched
        control paths. The DRX deadline budget scales with batch size
        (each member still brings its own budget to the pool)."""
        if mode == Mode.ALL_CPU:
            span, _ = self._phase_span(
                sctx, "cpu-restructure", PHASE_RESTRUCTURE, actor="cpu",
                threads=threads, batch=count,
            )
            yield from self._timed(
                phases, PHASE_RESTRUCTURE,
                self._cpu_restructure_batch(stage.profile, threads, count),
                span=span,
            )
            return

        # ONE kernel-completion notification covers every member: the
        # batch's kernels were submitted as one chain, so the device
        # raises one interrupt with N completion records behind it.
        span, cctx = self._phase_span(sctx, "control", PHASE_CONTROL, batch=count)
        yield from self._timed(
            phases, PHASE_CONTROL,
            self.notifier.notify_batch(
                src, count,
                on_retry=self._retry_cb(state, "notify", src), ctx=cctx,
            ),
            span=span,
        )

        if mode == Mode.MULTI_AXL:
            yield from self._batched_multi_axl_motion(
                src, dst, stage, threads, count, phases, state, sctx
            )
            return

        if self.planner is not None:
            yield from self._planned_motion(
                mode, app_index, src, dst, stage, threads, count, phases,
                state, sctx, mspan, force_cpu,
            )
            return

        drx, staging = self._drx_placement(mode, src, app_index)

        probe = False
        if force_cpu or self.control is not None or self.domains is not None:
            routed = self._route_drx(
                mode, drx, staging, state, mspan, force_cpu
            )
            if routed is None:
                yield from self._batched_multi_axl_motion(
                    src, dst, stage, threads, count, phases, state, sctx
                )
                return
            drx, staging, probe = routed

        if SCRATCHPAD_FUSION:
            fused = replace(
                stage.profile,
                bytes_in=stage.input_bytes,
                bytes_out=stage.output_bytes,
            )
        else:
            fused = stage.profile

        crash_ev = (
            self.domains.watch(drx.name) if self.domains is not None else None
        )
        if self._faults is None and crash_ev is None:
            leg_start = self.sim.now
            yield from self._batched_drx_motion(
                mode, src, dst, staging, drx, stage, fused, count, phases,
                state, sctx,
            )
            if self.control is not None:
                self.control.record(
                    drx.name, True, self.sim.now - leg_start, probe=probe
                )
            return

        # A failed batch falls back *as a unit*: no member is lost — all
        # of them retry on the CPU path via host memory. Likewise a
        # crashed domain drains the batch as a unit and every member is
        # rescued together, exactly once.
        local = PhaseAccumulator(ALL_PHASES)
        span_start = self.sim.now
        deadline = (
            self._faults.drx_deadline_s * count
            if self._faults is not None
            else None
        )
        attempt = sctx.begin(
            "drx-attempt", "attempt", deadline_s=deadline, batch=count,
            **({"breaker_probe": True} if probe else {}),
        )
        actx = sctx.child(attempt)
        try:
            yield from self._leg_race(
                self._batched_drx_motion(
                    mode, src, dst, staging, drx, stage, fused, count, local,
                    state, actx,
                ),
                deadline, crash_ev, drx.name,
                what=f"drx:{drx.name}",
            )
        except DomainCrashed as exc:
            burned = self._rescue_accounting(
                exc, drx.name, span_start, attempt, sctx, state, phases,
                probe, count,
            )
            yield from self._batched_multi_axl_motion(
                src, dst, stage, threads, count, phases, state, sctx
            )
            if state is not None:
                state.rescued = True
            self.domains.on_rescue(
                drx.name, state.request_id if state is not None else -1,
                burned, count,
            )
        except _RECOVERABLE as exc:
            if self.control is not None:
                self.control.record(
                    drx.name, False, self.sim.now - span_start, probe=probe
                )
            if state is not None:
                state.fell_back = True
            self._note(
                "fallback", drx.name, site="drx",
                request_id=state.request_id if state is not None else -1,
                detail=type(exc).__name__,
            )
            self.telemetry.end(attempt, error=type(exc).__name__)
            self.telemetry.mark_abandoned(attempt)
            phases.add(PHASE_RECOVERY, self.sim.now - span_start)
            self.telemetry.add(
                "recovery", PHASE_RECOVERY, start=span_start,
                end=self.sim.now, actor=drx.name, parent=sctx.parent_id,
                request_id=sctx.request_id, phase=PHASE_RECOVERY,
                cause=type(exc).__name__,
            )
            yield from self._batched_multi_axl_motion(
                src, dst, stage, threads, count, phases, state, sctx
            )
        else:
            if self.control is not None:
                self.control.record(
                    drx.name, True, self.sim.now - span_start, probe=probe
                )
            self.telemetry.end(attempt)
            for phase, duration in local.totals.items():
                if duration:
                    phases.add(phase, duration)

    # -- cost-based per-leg backend planning ------------------------------------
    #
    # With ``backends=`` armed, the planner replaces the static
    # DRX-with-CPU-fallback routing for every non-Multi-Axl motion leg:
    # each eligible backend prices the leg under live contention, the
    # cheapest admitted one executes it, and the decision (plus the full
    # ranking) lands on the motion span and the request record. Batched
    # legs plan once for the whole batch — members agree on a backend by
    # construction.

    def _record_plan(
        self,
        decision: "PlanDecision",
        target: str,
        state: Optional[_RequestState],
        mspan: Optional[ActiveSpan],
    ) -> None:
        """Book one planning decision: stats, span attrs, reroute notes."""
        kind = decision.kind
        rid = state.request_id if state is not None else -1
        self.backend_stats[kind]["planned"] += 1
        for skipped_kind, skipped_target in decision.skipped:
            # A cheaper backend was breaker-denied: the leg was steered
            # around it proactively — the planner's reroute.
            self.backend_stats[skipped_kind]["rerouted"] += 1
            if state is not None:
                state.rerouted = True
            if self.control is not None:
                self.control.note_reroute(skipped_target, target or kind, rid)
        if state is not None:
            state.leg_backends.append(kind)
            state.leg_reasons.append(decision.reason)
        if self.telemetry.enabled:
            if mspan is not None:
                mspan.attrs["backend"] = kind
                mspan.attrs["planner_reason"] = decision.reason
                if decision.skipped:
                    mspan.attrs["rerouted_to"] = kind
            self.telemetry.counter("planner_decisions", backend=kind).inc()
            if decision.estimate is not None:
                self.telemetry.sample_gauge(
                    "planner_queue_depth", float(decision.estimate.depth),
                    backend=kind,
                )

    def _planned_motion(
        self,
        mode: Mode,
        app_index: int,
        src: str,
        dst: str,
        stage: MotionStage,
        threads: int,
        count: int,
        phases: PhaseAccumulator,
        state: Optional[_RequestState],
        sctx: SpanContext,
        mspan: Optional[ActiveSpan] = None,
        force_cpu: bool = False,
    ) -> Generator:
        """One motion leg (single or coalesced batch) under the planner.

        Mirrors the deadline-fallback structure of :meth:`_motion_body`:
        fault-free runs execute the chosen backend directly; faulted
        runs race it against the per-request deadline budget and degrade
        to the CPU backend on a recoverable failure.
        """
        from ..backends.base import BACKEND_CPU, LegSpec

        planner = self.planner
        drx, staging = self._drx_placement(mode, src, app_index)
        if SCRATCHPAD_FUSION:
            fused = replace(
                stage.profile,
                bytes_in=stage.input_bytes,
                bytes_out=stage.output_bytes,
            )
        else:
            fused = stage.profile
        leg = LegSpec(
            mode=mode, src=src, dst=dst, staging=staging, stage=stage,
            fused=fused, threads=threads, count=count, drx=drx,
        )
        if force_cpu:
            # The planner-aware brownout FORCE_CPU tier: instead of
            # overriding the cost model outright, it *constrains* it —
            # the candidate set shrinks to surviving backends no pricier
            # than the CPU estimate, so a leg whose accelerator path is
            # cheaper than host restructuring keeps it even under
            # brownout (shedding load without pessimizing the leg).
            if state is not None:
                state.rerouted = True
            if self.telemetry.enabled and mspan is not None:
                mspan.attrs["forced_cpu"] = True
            self.telemetry.instant(
                "brownout_force_cpu", "brownout", actor=drx.name,
                request_id=state.request_id if state is not None else -1,
            )
            decision = planner.plan(leg, cpu_ceiling=True)
        else:
            decision = planner.plan(leg)
        backend = decision.backend
        kind = decision.kind
        target = backend.target(leg)
        self._record_plan(decision, target, state, mspan)

        if kind == BACKEND_CPU:
            # The CPU path is never breaker-gated or deadline-raced: it
            # IS the fallback.
            yield from backend.execute(leg, phases, state, sctx)
            self.backend_stats[kind]["executed"] += 1
            return

        crash_ev = (
            self.domains.watch(target)
            if self.domains is not None and target
            else None
        )
        if self._faults is None and crash_ev is None:
            leg_start = self.sim.now
            yield from backend.execute(leg, phases, state, sctx)
            self.backend_stats[kind]["executed"] += 1
            if self.control is not None and target:
                self.control.record(
                    target, True, self.sim.now - leg_start,
                    probe=decision.probe,
                )
            return

        local = PhaseAccumulator(ALL_PHASES)
        span_start = self.sim.now
        deadline = (
            self._faults.drx_deadline_s * count
            if self._faults is not None
            else None
        )
        attempt = sctx.begin(
            f"{kind}-attempt", "attempt", deadline_s=deadline,
            **({"batch": count} if count > 1 else {}),
            **({"breaker_probe": True} if decision.probe else {}),
        )
        actx = sctx.child(attempt)
        try:
            yield from self._leg_race(
                backend.execute(leg, local, state, actx),
                deadline, crash_ev, target,
                what=f"{kind}:{target}",
            )
        except DomainCrashed as exc:
            # The chosen backend's failure domain died under the leg:
            # drain, then rescue exactly once on the CPU backend (the
            # planner's unconditional survivor).
            burned = self._rescue_accounting(
                exc, target, span_start, attempt, sctx, state, phases,
                decision.probe, count,
            )
            cpu = planner.backend(BACKEND_CPU)
            yield from cpu.execute(leg, phases, state, sctx)
            self.backend_stats[BACKEND_CPU]["executed"] += 1
            if state is not None:
                state.rescued = True
            self.domains.on_rescue(
                target, state.request_id if state is not None else -1,
                burned, count,
            )
        except _RECOVERABLE as exc:
            if self.control is not None and target:
                self.control.record(
                    target, False, self.sim.now - span_start,
                    probe=decision.probe,
                )
            if state is not None:
                state.fell_back = True
            self._note(
                "fallback", target or kind, site=kind,
                request_id=state.request_id if state is not None else -1,
                detail=type(exc).__name__,
            )
            self.telemetry.end(attempt, error=type(exc).__name__)
            self.telemetry.mark_abandoned(attempt)
            phases.add(PHASE_RECOVERY, self.sim.now - span_start)
            self.telemetry.add(
                "recovery", PHASE_RECOVERY, start=span_start,
                end=self.sim.now, actor=target or kind,
                parent=sctx.parent_id, request_id=sctx.request_id,
                phase=PHASE_RECOVERY, cause=type(exc).__name__,
            )
            self.backend_stats[kind]["fallen_back"] += 1
            cpu = planner.backend(BACKEND_CPU)
            yield from cpu.execute(leg, phases, state, sctx)
            self.backend_stats[BACKEND_CPU]["executed"] += 1
        else:
            if self.control is not None and target:
                self.control.record(
                    target, True, self.sim.now - span_start,
                    probe=decision.probe,
                )
            self.telemetry.end(attempt)
            for phase, duration in local.totals.items():
                if duration:
                    phases.add(phase, duration)
            self.backend_stats[kind]["executed"] += 1

    def _batched_request(
        self,
        app_index: int,
        chain: AppChain,
        count: int,
        parent_span: Optional[int] = None,
        force_cpu: bool = False,
    ) -> Generator:
        """Run ``count`` same-chain requests as one coalesced batch.

        Returns one :class:`RequestRecord` per member. All members share
        the batch's wall-clock interval; phase time is split evenly
        across members so per-member records still sum to the batch's
        booked phase totals (and thus reconcile with span-derived
        totals). Retries/fallback/reroute bookkeeping is tracked on the
        lead member and propagated to all — a batch degrades or fails as
        a unit, never losing individual members.
        """
        phases = PhaseAccumulator(ALL_PHASES)
        states = [_RequestState(next(self._request_ids)) for _ in range(count)]
        lead = states[0]
        start = self.sim.now
        kernel_index = 0
        root = self.telemetry.begin(
            f"{chain.name}#b{lead.request_id}x{count}", "batch-exec",
            actor=chain.name, parent=parent_span,
            request_id=lead.request_id, mode=self.config.mode.name,
            app=chain.name, batch=count,
        )
        # Every member keeps an addressable request span in the trace,
        # parented under the batch-exec span (phase spans hang off the
        # shared batch context — the work is genuinely shared).
        member_spans = [
            self.telemetry.begin(
                f"{chain.name}#r{st.request_id}", "request",
                actor=chain.name, parent=root, request_id=st.request_id,
                mode=self.config.mode.name, app=chain.name, batched=True,
            )
            for st in states
        ]
        member_ctxs = [
            self.telemetry.context(span, st.request_id)
            for span, st in zip(member_spans, states)
        ]
        rctx = self.telemetry.context(root, lead.request_id)
        try:
            for stage in chain.stages:
                if isinstance(stage, KernelStage):
                    if self.config.mode == Mode.ALL_CPU:
                        threads = max(
                            1,
                            min(stage.cpu_threads,
                                self.cpu.spec.cores // len(self.chains)),
                        )
                        for st, mctx in zip(states, member_ctxs):
                            span, _ = self._phase_span(
                                mctx, f"kernel{kernel_index}", PHASE_KERNEL,
                                actor="cpu", threads=threads,
                            )
                            yield from self._timed(
                                phases, PHASE_KERNEL,
                                self.cpu.run_kernel(
                                    stage.cpu_latency(threads),
                                    threads=threads,
                                ),
                                span=span,
                            )
                    else:
                        device = self.accel_devices[
                            self.accel_name(app_index, kernel_index)
                        ]
                        # Kernels execute per member — the accelerator
                        # computes every payload; only control coalesces.
                        for st, mctx in zip(states, member_ctxs):
                            span, _ = self._phase_span(
                                mctx, f"kernel{kernel_index}", PHASE_KERNEL,
                                actor=device.name,
                            )
                            if self._faults is None:
                                yield from self._timed(
                                    phases, PHASE_KERNEL, device.execute(),
                                    span=span,
                                )
                            else:
                                yield from self._timed(
                                    phases, PHASE_KERNEL,
                                    self._recovering_kernel(device, st),
                                    span=span,
                                )
                    kernel_index += 1
                else:
                    yield from self._batched_motion(
                        app_index, kernel_index - 1, stage, count, phases,
                        lead, rctx, force_cpu=force_cpu,
                    )
        except _REQUEST_FATAL as exc:
            for st in states:
                st.failed = True
            self._note(
                "giveup", chain.name, site="request",
                request_id=lead.request_id, detail=type(exc).__name__,
            )
        # Batch-level outcomes live on the lead state; mirror them onto
        # every member so no record under-reports its degradation.
        for st in states[1:]:
            st.fell_back = st.fell_back or lead.fell_back
            st.rerouted = st.rerouted or lead.rerouted
            st.failed = st.failed or lead.failed
            st.rescued = st.rescued or lead.rescued
        end = self.sim.now
        share = {
            phase: duration / count for phase, duration in phases.totals.items()
        }
        records = []
        for st, span in zip(states, member_spans):
            self.telemetry.end(
                span, retries=st.retries, fell_back=st.fell_back,
                rerouted=st.rerouted, failed=st.failed,
                **({"rescued": True} if st.rescued else {}),
            )
            records.append(RequestRecord(
                app=chain.name, start=start, end=end,
                phases=dict(share),
                retries=st.retries, fell_back=st.fell_back,
                rerouted=st.rerouted, failed=st.failed,
                rescued=st.rescued,
                request_id=st.request_id,
                # The batch plans once; every member shares the decision.
                backend=(
                    list(lead.leg_backends)
                    if self.planner is not None else None
                ),
                planner_reason=(
                    list(lead.leg_reasons)
                    if self.planner is not None else None
                ),
            ))
        self.telemetry.end(
            root, retries=lead.retries, fell_back=lead.fell_back,
            rerouted=lead.rerouted, failed=lead.failed,
            **({"rescued": True} if lead.rescued else {}),
        )
        return records

    def _request(
        self,
        app_index: int,
        chain: AppChain,
        records: Optional[List[RequestRecord]] = None,
        parent_span: Optional[int] = None,
        force_cpu: bool = False,
    ) -> Generator:
        """One end-to-end request; returns its :class:`RequestRecord`
        (and appends it to ``records`` when a sink is given)."""
        phases = PhaseAccumulator(ALL_PHASES)
        state = _RequestState(next(self._request_ids))
        start = self.sim.now
        kernel_index = 0
        root = self.telemetry.begin(
            f"{chain.name}#r{state.request_id}", "request", actor=chain.name,
            parent=parent_span, request_id=state.request_id,
            mode=self.config.mode.name, app=chain.name,
        )
        rctx = self.telemetry.context(root, state.request_id)
        try:
            for stage in chain.stages:
                if isinstance(stage, KernelStage):
                    if self.config.mode == Mode.ALL_CPU:
                        # Work-conserving scheduling: the MKL-style runtime
                        # shrinks per-job fan-out as concurrent applications
                        # saturate the socket, so core-seconds per job fall
                        # back toward the serial cost under load.
                        threads = max(
                            1,
                            min(stage.cpu_threads,
                                self.cpu.spec.cores // len(self.chains)),
                        )
                        span, _ = self._phase_span(
                            rctx, f"kernel{kernel_index}", PHASE_KERNEL,
                            actor="cpu", threads=threads,
                        )
                        yield from self._timed(
                            phases, PHASE_KERNEL,
                            self.cpu.run_kernel(
                                stage.cpu_latency(threads), threads=threads
                            ),
                            span=span,
                        )
                    else:
                        device = self.accel_devices[
                            self.accel_name(app_index, kernel_index)
                        ]
                        span, _ = self._phase_span(
                            rctx, f"kernel{kernel_index}", PHASE_KERNEL,
                            actor=device.name,
                        )
                        if self._faults is None:
                            yield from self._timed(
                                phases, PHASE_KERNEL, device.execute(),
                                span=span,
                            )
                        else:
                            yield from self._timed(
                                phases, PHASE_KERNEL,
                                self._recovering_kernel(device, state),
                                span=span,
                            )
                    kernel_index += 1
                else:
                    yield from self._motion(
                        app_index, kernel_index - 1, stage, phases, state,
                        rctx, force_cpu=force_cpu,
                    )
        except _REQUEST_FATAL as exc:
            # Recovery exhausted (or a drained leg abandoned past its
            # rescue deadline): answer the request with an error instead
            # of wedging the chain (or the whole simulation).
            state.failed = True
            self._note(
                "giveup", chain.name, site="request",
                request_id=state.request_id, detail=type(exc).__name__,
            )
        record = RequestRecord(
            app=chain.name, start=start, end=self.sim.now,
            phases=dict(phases.totals),
            retries=state.retries, fell_back=state.fell_back,
            rerouted=state.rerouted, failed=state.failed,
            rescued=state.rescued,
            request_id=state.request_id,
            backend=(
                list(state.leg_backends) if self.planner is not None else None
            ),
            planner_reason=(
                list(state.leg_reasons) if self.planner is not None else None
            ),
        )
        self.telemetry.end(
            root, retries=state.retries, fell_back=state.fell_back,
            rerouted=state.rerouted, failed=state.failed,
            **({"rescued": True} if state.rescued else {}),
        )
        if records is not None:
            records.append(record)
        return record

    # -- external entry points -------------------------------------------------

    def app_index(self, name: str) -> int:
        """Index of the application chain called ``name``."""
        for index, chain in enumerate(self.chains):
            if chain.name == name:
                return index
        raise KeyError(f"no application chain named {name!r}")

    def submit(
        self,
        app_index: int,
        parent_span: Optional[int] = None,
        force_cpu: bool = False,
    ) -> Generator:
        """Process helper: run one request through the system.

        The entry point for external drivers (notably the serving layer
        in :mod:`repro.serve`): from any process on this system's
        simulator, ``record = yield from system.submit(i)`` issues one
        request on chain ``i`` and returns its :class:`RequestRecord`
        on completion — including degraded or failed completions when a
        :class:`~repro.faults.FaultPlan` is armed. Unlike the ``run_*``
        drivers, ``submit`` does not touch the simulator loop; the
        caller decides arrival times, concurrency, and admission.
        ``parent_span`` hangs the request's span tree under a caller
        span (the serving frontend's client span). ``force_cpu=True``
        restructures every motion stage on the host CPU regardless of
        placement — the brownout ladder's last tier.
        """
        if not 0 <= app_index < len(self.chains):
            raise IndexError(
                f"app_index {app_index} out of range "
                f"(0..{len(self.chains) - 1})"
            )
        record = yield from self._request(
            app_index, self.chains[app_index], parent_span=parent_span,
            force_cpu=force_cpu,
        )
        return record

    def submit_batch(
        self,
        app_index: int,
        count: int,
        parent_span: Optional[int] = None,
        force_cpu: bool = False,
    ) -> Generator:
        """Process helper: run ``count`` requests on chain ``app_index``
        as one coalesced batch; returns a list of ``count``
        :class:`RequestRecord` objects.

        Each motion leg pays a single control path for all members (one
        chained descriptor submission + doorbell, one amortized DRX
        program load, one coalesced completion ISR), while kernels and
        payload restructuring still execute per member. A batch of one
        takes the exact single-request code path, so
        ``submit_batch(i, 1)`` is bit-identical to ``submit(i)``.
        """
        if not 0 <= app_index < len(self.chains):
            raise IndexError(
                f"app_index {app_index} out of range "
                f"(0..{len(self.chains) - 1})"
            )
        if count < 1:
            raise ValueError(f"batch needs count >= 1: {count}")
        if count == 1:
            record = yield from self._request(
                app_index, self.chains[app_index], parent_span=parent_span,
                force_cpu=force_cpu,
            )
            return [record]
        records = yield from self._batched_request(
            app_index, self.chains[app_index], count,
            parent_span=parent_span, force_cpu=force_cpu,
        )
        return records

    # -- run modes ------------------------------------------------------------

    def run_latency(self, requests_per_app: int = 4) -> RunResult:
        """Closed-loop: each app issues its next request on completion.

        Concurrency across apps is the contention the paper sweeps (1,
        5, 10, 15 concurrent applications).
        """
        if requests_per_app <= 0:
            raise ValueError("requests_per_app must be positive")
        records: List[RequestRecord] = []

        def app_loop(app_index: int, chain: AppChain) -> Generator:
            for _ in range(requests_per_app):
                yield from self._request(app_index, chain, records)

        for app_index, chain in enumerate(self.chains):
            self.sim.spawn(app_loop(app_index, chain))
        self.sim.run()
        self.telemetry.finalize()
        self._record_run_metrics()
        return RunResult(
            mode=self.config.mode,
            records=records,
            elapsed=self.sim.now,
            requests_per_app=requests_per_app,
            telemetry=self.telemetry,
            backend_legs=self._backend_legs_snapshot(),
        )

    def run_throughput(self, requests_per_app: int = 12) -> RunResult:
        """Batch-issue pipelined: every request is issued at t=0; stages
        overlap across requests, so the slowest stage sets throughput.

        This measures the system's drain rate on a fixed backlog, not
        behaviour under online traffic — for true open-loop arrivals
        (stochastic interarrival times, admission control, SLO
        percentiles) use the serving layer in :mod:`repro.serve`.
        """
        if requests_per_app <= 0:
            raise ValueError("requests_per_app must be positive")
        records: List[RequestRecord] = []
        procs = []
        for app_index, chain in enumerate(self.chains):
            for _ in range(requests_per_app):
                procs.append(
                    self.sim.spawn(self._request(app_index, chain, records))
                )
        self.sim.run()
        self.telemetry.finalize()
        self._record_run_metrics()
        return RunResult(
            mode=self.config.mode,
            records=records,
            elapsed=self.sim.now,
            requests_per_app=requests_per_app,
            telemetry=self.telemetry,
            backend_legs=self._backend_legs_snapshot(),
        )

    def _backend_legs_snapshot(self) -> Optional[Dict[str, Dict[str, int]]]:
        """Copy of the per-backend leg attribution; None unless the
        planner is armed (so planner-free results keep their shape)."""
        if self.planner is None:
            return None
        return {kind: dict(stats) for kind, stats in self.backend_stats.items()}

    # -- post-run accounting (energy model inputs) ---------------------------------

    def _record_run_metrics(self) -> None:
        """Fold end-of-run device/driver counters into the metrics
        registry (idempotent — the serving frontend and the run drivers
        may both call it)."""
        if self._metrics_recorded or not self.telemetry.enabled:
            return
        self._metrics_recorded = True
        t = self.telemetry
        for name in sorted(self.drx_devices):
            t.sample_gauge(
                "drx_utilization", self.drx_devices[name].utilization(),
                device=name,
            )
        for name in sorted(self.accel_devices):
            t.sample_gauge(
                "accel_busy_s", self.accel_devices[name].busy_seconds,
                device=name,
            )
        t.counter("dma_transfers").inc(self.dma.transfers_completed)
        t.counter("dma_descriptors").inc(self.dma.descriptors_submitted)
        t.counter("dma_bytes").inc(self.dma.bytes_transferred)
        t.counter("fabric_bytes").inc(self.bytes_moved())
        stats = self.notifier.stats
        t.counter("notifications", mode="interrupt").inc(stats.interrupts)
        t.counter("notifications", mode="coalesced").inc(stats.coalesced)
        t.counter("notifications", mode="poll").inc(stats.polled)

    def accelerator_busy_seconds(self) -> float:
        return sum(d.busy_seconds for d in self.accel_devices.values())

    def drx_busy_seconds(self) -> float:
        return sum(d.busy_seconds for d in self.drx_devices.values())

    def bytes_moved(self) -> int:
        return self.fabric.total_bytes_moved()
