"""The DMX system model: build a multi-accelerator server and run it.

:class:`DMXSystem` instantiates the full modeled machine for a set of
concurrent application chains under one :class:`~repro.core.placement.SystemConfig`
— host CPU, PCIe fabric (switches populated per the configured fan-out),
accelerator cards, DRX units per placement — and executes requests
through it on the DES, producing per-request latencies with
kernel / restructuring / movement / control phase breakdowns, plus the
utilization and traffic figures the energy model consumes.

This is the reproduction's equivalent of the paper's "end-to-end system
emulation infrastructure" (Sec. VI), with cost models in place of the
measured cycle-level latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional

from ..cpu import HostCPU
from ..drx.microarch import DRXDevice
from ..interconnect import DMACosts, DMAEngine, Fabric, LinkConfig, PCIeGen
from ..runtime.driver import NotificationModel
from ..sim import AllOf, PhaseAccumulator, Simulator
from .chain import AppChain, KernelStage, MotionStage
from .placement import Mode, SystemConfig, drx_config_for

__all__ = ["RequestRecord", "RunResult", "DMXSystem",
           "PHASE_KERNEL", "PHASE_RESTRUCTURE", "PHASE_MOVEMENT",
           "PHASE_CONTROL"]

PHASE_KERNEL = "kernel"
PHASE_RESTRUCTURE = "restructuring"
PHASE_MOVEMENT = "movement"
PHASE_CONTROL = "control"
ALL_PHASES = (PHASE_KERNEL, PHASE_RESTRUCTURE, PHASE_MOVEMENT, PHASE_CONTROL)

# The accelerator→DRX hop crosses the card-internal multiplexer: the
# same x8 wire rate but with near-ideal protocol efficiency and
# negligible propagation, and — being internal to the card — independent
# of the system's PCIe generation.
_MUX_CONFIG = LinkConfig(
    gen=PCIeGen.GEN3, lanes=8, protocol_efficiency=0.95,
    propagation_latency_s=50e-9,
)

# Applications sharing one large standalone DRX card.
STANDALONE_APPS_PER_CARD = 2

# Transfers that stage through host memory (Multi-Axl and Integrated-DRX
# paths) pay a DRAM store on the way in and a load on the way out, on
# top of the PCIe crossing. Effective host DMA-staging bandwidth:
HOST_STAGING_BYTES_PER_S = 25e9

# When True (default), the DRX compiler fuses restructuring-op chains
# through the on-chip scratchpads so only the stage's real input/output
# touch DRAM. Toggled off by the fusion ablation study.
SCRATCHPAD_FUSION = True


@dataclass
class RequestRecord:
    """One completed end-to-end request."""

    app: str
    start: float
    end: float
    phases: Dict[str, float]

    @property
    def latency(self) -> float:
        return self.end - self.start


@dataclass
class RunResult:
    """Aggregate outcome of a latency or throughput run."""

    mode: Mode
    records: List[RequestRecord]
    elapsed: float
    requests_per_app: int

    def apps(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.app not in seen:
                seen.append(record.app)
        return seen

    def latencies(self, app: Optional[str] = None) -> List[float]:
        return [
            r.latency for r in self.records if app is None or r.app == app
        ]

    def mean_latency(self, app: Optional[str] = None) -> float:
        values = self.latencies(app)
        if not values:
            raise ValueError(f"no records for app {app!r}")
        return sum(values) / len(values)

    def phase_totals(self, app: Optional[str] = None) -> Dict[str, float]:
        acc = PhaseAccumulator(ALL_PHASES)
        for record in self.records:
            if app is None or record.app == app:
                for phase, duration in record.phases.items():
                    acc.add(phase, duration)
        return acc.totals

    def phase_fractions(self, app: Optional[str] = None) -> Dict[str, float]:
        totals = self.phase_totals(app)
        overall = sum(totals.values())
        if overall <= 0:
            return {phase: 0.0 for phase in totals}
        return {phase: t / overall for phase, t in totals.items()}

    def throughput(self, app: Optional[str] = None) -> float:
        """Completed requests per second over the run."""
        count = len([r for r in self.records if app is None or r.app == app])
        if self.elapsed <= 0:
            raise ValueError("zero elapsed time")
        return count / self.elapsed


class DMXSystem:
    """One simulated server instance for a set of concurrent chains."""

    def __init__(self, chains: List[AppChain], config: SystemConfig):
        if not chains:
            raise ValueError("need at least one application chain")
        for chain in chains:
            chain.validate()
        names = [c.name for c in chains]
        if len(set(names)) != len(names):
            raise ValueError("application chain names must be unique")
        self.chains = chains
        self.config = config
        self.sim = Simulator()
        # Restructuring on the host scales poorly across cores (the paper
        # observes 130-140 ephemeral MKL threads thrashing the shared cache
        # hierarchy and memory bandwidth): a high per-extra-thread overhead
        # models that sub-linear scaling.
        self.cpu = HostCPU(self.sim, max_threads=16, parallel_overhead=0.35)
        link = LinkConfig(gen=config.pcie_gen, lanes=config.accelerator_lanes)
        upstream = LinkConfig(gen=config.pcie_gen, lanes=config.upstream_lanes)
        self.fabric = Fabric(self.sim, link_config=link,
                             upstream_config=upstream)
        self.dma = DMAEngine(self.sim, self.fabric, DMACosts())
        self.notifier = NotificationModel(self.sim, self.cpu)
        self.accel_devices: Dict[str, "AcceleratorDeviceProxy"] = {}
        self.drx_devices: Dict[str, DRXDevice] = {}
        self._accel_names: Dict[tuple, str] = {}  # (app_idx, stage_idx) -> name
        self._switch_of: Dict[str, str] = {}
        self._standalone_drx_of: Dict[int, str] = {}
        self._build_topology()

    # -- topology ------------------------------------------------------------

    def _build_topology(self) -> None:
        from ..accelerators.base import AcceleratorDevice

        config = self.config
        mode = config.mode
        drx_config = drx_config_for(config)

        switch_index = -1
        slots_left = 0
        current_switch = None
        for app_index, chain in enumerate(self.chains):
            app_first_switch = None
            for stage_index, stage in enumerate(chain.stages):
                if not isinstance(stage, KernelStage):
                    continue
                if slots_left == 0:
                    switch_index += 1
                    current_switch = self.fabric.add_switch(f"sw{switch_index}")
                    slots_left = config.accelerators_per_switch
                name = f"a{app_index}k{stage_index // 2}"
                self.fabric.add_endpoint(name, current_switch)
                slots_left -= 1
                if app_first_switch is None:
                    app_first_switch = current_switch
                self._accel_names[(app_index, stage_index)] = name
                self._switch_of[name] = current_switch.name
                self.accel_devices[name] = AcceleratorDevice(
                    self.sim, stage.spec, stage.accel_time_s, name=name
                )
                if mode == Mode.BUMP_IN_WIRE:
                    drx_name = f"{name}.drx"
                    self.fabric.add_inline(
                        drx_name, name, mux_config=_MUX_CONFIG
                    )
                    self.drx_devices[drx_name] = DRXDevice(
                        self.sim, drx_config, name=drx_name
                    )
            if mode == Mode.STANDALONE:
                # Standalone cards scale with the concurrent applications
                # ("installing multiple Standalone DRX cards can scale DRX
                # performance"), but each is a *large* card shared by a
                # couple of applications — the amortization of glue logic
                # the paper credits this placement with.
                group = app_index // STANDALONE_APPS_PER_CARD
                drx_name = f"drx.s{group}"
                if drx_name not in self.drx_devices:
                    self.fabric.add_endpoint(drx_name, app_first_switch)
                    self.drx_devices[drx_name] = DRXDevice(
                        self.sim, drx_config, name=drx_name
                    )
                self._standalone_drx_of[app_index] = drx_name

        if mode == Mode.INTEGRATED:
            # One DRX beside the CPU, shared by every application.
            self.drx_devices["drx.root"] = DRXDevice(
                self.sim, drx_config, name="drx.root"
            )
        if mode == Mode.PCIE_INTEGRATED:
            for switch_name in [
                n.name for n in self.fabric.nodes.values() if n.kind == "switch"
            ]:
                self.drx_devices[f"drx.{switch_name}"] = DRXDevice(
                    self.sim, drx_config, name=f"drx.{switch_name}"
                )

    @property
    def n_switches(self) -> int:
        return sum(1 for n in self.fabric.nodes.values() if n.kind == "switch")

    def accel_name(self, app_index: int, kernel_index: int) -> str:
        return self._accel_names[(app_index, kernel_index * 2)]

    # -- per-request process ----------------------------------------------------

    def _timed(self, phases: PhaseAccumulator, phase: str, proc) -> Generator:
        start = self.sim.now
        result = yield from proc
        phases.add(phase, self.sim.now - start)
        return result

    def _staged_transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """A DMA that stages through host memory (src or dst is 'root')."""
        yield from self.dma.transfer(src, dst, nbytes)
        yield self.sim.timeout(nbytes / HOST_STAGING_BYTES_PER_S)

    def _motion(
        self,
        app_index: int,
        kernel_index: int,
        stage: MotionStage,
        phases: PhaseAccumulator,
    ) -> Generator:
        """The data-motion step between kernel ``kernel_index`` and the
        next one, under the configured placement."""
        mode = self.config.mode
        src = self.accel_name(app_index, kernel_index)
        dst = self.accel_name(app_index, kernel_index + 1)
        threads = stage.cpu_threads

        if mode == Mode.ALL_CPU:
            # Data already lives in host memory; only the computation.
            yield from self._timed(
                phases, PHASE_RESTRUCTURE,
                self.cpu.restructure(stage.profile, threads=threads),
            )
            return

        # Kernel-completion notification + DMA setup (control plane).
        yield from self._timed(
            phases, PHASE_CONTROL, self.notifier.notify(src)
        )

        if mode == Mode.MULTI_AXL:
            yield from self._timed(
                phases, PHASE_MOVEMENT,
                self._staged_transfer(src, "root", stage.input_bytes),
            )
            yield from self._timed(
                phases, PHASE_RESTRUCTURE,
                self.cpu.restructure(stage.profile, threads=threads),
            )
            yield from self._timed(
                phases, PHASE_MOVEMENT,
                self._staged_transfer("root", dst, stage.output_bytes),
            )
            return

        if mode == Mode.INTEGRATED:
            drx = self.drx_devices["drx.root"]
            staging = "root"
        elif mode == Mode.STANDALONE:
            drx = self.drx_devices[self._standalone_drx_of[app_index]]
            staging = drx.name
        elif mode == Mode.BUMP_IN_WIRE:
            drx = self.drx_devices[f"{src}.drx"]
            staging = drx.name
        elif mode == Mode.PCIE_INTEGRATED:
            switch = self._switch_of[src]
            drx = self.drx_devices[f"drx.{switch}"]
            staging = switch
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled mode {mode}")

        # On DRX, the restructuring-op chain is fused through the on-chip
        # scratchpads (the compiler keeps intermediates on chip), so DRAM
        # traffic is just the stage's real input and output — unlike the
        # CPU, whose cache hierarchy materializes every intermediate.
        if SCRATCHPAD_FUSION:
            fused = replace(
                stage.profile,
                bytes_in=stage.input_bytes,
                bytes_out=stage.output_bytes,
            )
        else:  # fusion ablation: every intermediate round-trips DRAM
            fused = stage.profile
        if mode == Mode.PCIE_INTEGRATED:
            # Switch-integrated DRX processes data *as it streams through
            # the switch* (line-rate processing, no store-and-forward):
            # the inbound transfer and the restructuring overlap.
            ingest = self.sim.spawn(
                self.fabric.transfer(src, staging, stage.input_bytes)
            )
            work = self.sim.spawn(drx.restructure(fused))
            start = self.sim.now
            yield AllOf(self.sim, [ingest, work])
            phases.add(PHASE_RESTRUCTURE, self.sim.now - start)
        else:
            in_transfer = (
                self._staged_transfer(src, staging, stage.input_bytes)
                if staging == "root"
                else self.dma.transfer(src, staging, stage.input_bytes)
            )
            yield from self._timed(phases, PHASE_MOVEMENT, in_transfer)
            yield from self._timed(
                phases, PHASE_RESTRUCTURE, drx.restructure(fused)
            )
        # Restructure-completion notification + P2P DMA to the consumer
        # (Fig. 10 steps 8-9).
        yield from self._timed(
            phases, PHASE_CONTROL, self.notifier.notify(drx.name)
        )
        out_transfer = (
            self._staged_transfer(staging, dst, stage.output_bytes)
            if staging == "root"
            else self.dma.transfer(staging, dst, stage.output_bytes)
        )
        yield from self._timed(phases, PHASE_MOVEMENT, out_transfer)

    def _request(self, app_index: int, chain: AppChain,
                 records: List[RequestRecord]) -> Generator:
        phases = PhaseAccumulator(ALL_PHASES)
        start = self.sim.now
        kernel_index = 0
        for stage in chain.stages:
            if isinstance(stage, KernelStage):
                if self.config.mode == Mode.ALL_CPU:
                    # Work-conserving scheduling: the MKL-style runtime
                    # shrinks per-job fan-out as concurrent applications
                    # saturate the socket, so core-seconds per job fall
                    # back toward the serial cost under load.
                    threads = max(
                        1,
                        min(stage.cpu_threads,
                            self.cpu.spec.cores // len(self.chains)),
                    )
                    yield from self._timed(
                        phases, PHASE_KERNEL,
                        self.cpu.run_kernel(
                            stage.cpu_latency(threads), threads=threads
                        ),
                    )
                else:
                    device = self.accel_devices[
                        self.accel_name(app_index, kernel_index)
                    ]
                    yield from self._timed(
                        phases, PHASE_KERNEL, device.execute()
                    )
                kernel_index += 1
            else:
                yield from self._motion(
                    app_index, kernel_index - 1, stage, phases
                )
        records.append(
            RequestRecord(
                app=chain.name, start=start, end=self.sim.now,
                phases=dict(phases.totals),
            )
        )

    # -- run modes ------------------------------------------------------------

    def run_latency(self, requests_per_app: int = 4) -> RunResult:
        """Closed-loop: each app issues its next request on completion.

        Concurrency across apps is the contention the paper sweeps (1,
        5, 10, 15 concurrent applications).
        """
        if requests_per_app <= 0:
            raise ValueError("requests_per_app must be positive")
        records: List[RequestRecord] = []

        def app_loop(app_index: int, chain: AppChain) -> Generator:
            for _ in range(requests_per_app):
                yield from self._request(app_index, chain, records)

        for app_index, chain in enumerate(self.chains):
            self.sim.spawn(app_loop(app_index, chain))
        self.sim.run()
        return RunResult(
            mode=self.config.mode,
            records=records,
            elapsed=self.sim.now,
            requests_per_app=requests_per_app,
        )

    def run_throughput(self, requests_per_app: int = 12) -> RunResult:
        """Open-loop pipelined: all requests issued at once; stages
        overlap across requests, so the slowest stage sets throughput."""
        if requests_per_app <= 0:
            raise ValueError("requests_per_app must be positive")
        records: List[RequestRecord] = []
        procs = []
        for app_index, chain in enumerate(self.chains):
            for _ in range(requests_per_app):
                procs.append(
                    self.sim.spawn(self._request(app_index, chain, records))
                )
        self.sim.run()
        return RunResult(
            mode=self.config.mode,
            records=records,
            elapsed=self.sim.now,
            requests_per_app=requests_per_app,
        )

    # -- post-run accounting (energy model inputs) ---------------------------------

    def accelerator_busy_seconds(self) -> float:
        return sum(d.busy_seconds for d in self.accel_devices.values())

    def drx_busy_seconds(self) -> float:
        return sum(d.busy_seconds for d in self.drx_devices.values())

    def bytes_moved(self) -> int:
        return self.fabric.total_bytes_moved()
