"""Application-chain descriptors: what the DES prices per request.

An :class:`AppChain` is the timing-layer view of one end-to-end
application (Table I): an alternating sequence of :class:`KernelStage`
(domain kernel on an accelerator) and :class:`MotionStage` (the data
restructuring + movement between two kernels). Workload builders in
:mod:`repro.workloads` derive these from *functional* runs — the byte
counts and work profiles come from real data flowing through the real
kernels — then scale them to the paper's batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence, Union

from ..accelerators.base import AcceleratorSpec
from ..profiles import WorkProfile

__all__ = ["KernelStage", "MotionStage", "AppChain", "merge_profiles"]


def merge_profiles(profiles: Sequence[WorkProfile], name: str) -> WorkProfile:
    """Fuse a restructuring pipeline's per-op profiles into one job profile.

    Volumes add; bytes_in is the first op's input and bytes_out the last
    op's output, with intermediate traffic folded into both (each
    intermediate materializes once written, once read); character
    fractions are ops-weighted averages.
    """
    if not profiles:
        raise ValueError("cannot merge zero profiles")
    total_ops = sum(p.total_ops for p in profiles)
    total_elements = sum(p.elements for p in profiles)
    # Full memory traffic: every op's input + output streams through.
    bytes_in = sum(p.bytes_in for p in profiles)
    bytes_out = sum(p.bytes_out for p in profiles)

    def weighted(attr: str) -> float:
        if total_ops == 0:
            return getattr(profiles[0], attr)
        return sum(
            getattr(p, attr) * p.total_ops for p in profiles
        ) / total_ops

    return WorkProfile(
        name=name,
        bytes_in=bytes_in,
        bytes_out=bytes_out,
        elements=max(1, total_elements),
        ops_per_element=total_ops / max(1, total_elements),
        element_size=profiles[-1].element_size,
        branch_fraction=min(1.0, weighted("branch_fraction")),
        mispredict_rate=min(1.0, weighted("mispredict_rate")),
        vectorizable_fraction=min(1.0, weighted("vectorizable_fraction")),
        gather_fraction=min(1.0, weighted("gather_fraction")),
    )


@dataclass(frozen=True)
class KernelStage:
    """One domain kernel on its accelerator.

    ``cpu_time_s`` is the host-CPU execution time (the All-CPU config);
    ``accel_time_s`` the accelerator's (paper methodology: measured CPU
    time scaled by the per-kernel accelerator speedup, then by the
    FPGA→ASIC clock ratio).
    """

    name: str
    spec: AcceleratorSpec
    cpu_time_s: float
    accel_time_s: float
    output_bytes: int
    cpu_threads: int = 8
    # Single-core CPU time; defaults to 3x the multi-threaded time (the
    # kernel-grade parallel-scaling calibration). Used by the All-CPU
    # configuration's work-conserving scheduler.
    cpu_serial_time_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cpu_time_s <= 0 or self.accel_time_s <= 0:
            raise ValueError(f"{self.name}: stage times must be positive")
        if self.output_bytes <= 0:
            raise ValueError(f"{self.name}: output_bytes must be positive")
        if self.accel_time_s > self.cpu_time_s:
            raise ValueError(
                f"{self.name}: accelerator slower than CPU — check speedup"
            )
        if self.cpu_serial_time_s is None:
            object.__setattr__(self, "cpu_serial_time_s", self.cpu_time_s * 3.0)
        elif self.cpu_serial_time_s < self.cpu_time_s:
            raise ValueError(
                f"{self.name}: serial time below multi-threaded time"
            )

    def cpu_latency(self, threads: int) -> float:
        """Job latency when run on ``threads`` cores (Amdahl-ish)."""
        threads = max(1, threads)
        return (
            self.cpu_serial_time_s / threads * (1.0 + 0.24 * (threads - 1))
        )


@dataclass(frozen=True)
class MotionStage:
    """The data-motion step between two kernels.

    ``profile`` prices the restructuring computation (CPU or DRX);
    ``input_bytes``/``output_bytes`` price the movement. ``cpu_threads``
    is the MKL-style per-job parallelism when restructuring on the host.
    """

    name: str
    profile: WorkProfile
    input_bytes: int
    output_bytes: int
    cpu_threads: int = 8

    def __post_init__(self) -> None:
        if self.input_bytes <= 0 or self.output_bytes <= 0:
            raise ValueError(f"{self.name}: byte counts must be positive")


Stage = Union[KernelStage, MotionStage]


@dataclass
class AppChain:
    """One end-to-end application: kernels chained through motion steps."""

    name: str
    stages: List[Stage] = field(default_factory=list)

    def validate(self) -> None:
        """Chains must alternate kernel / motion, starting and ending on
        kernels (Fig. 2's pipeline shape)."""
        if len(self.stages) < 3:
            raise ValueError(f"{self.name}: need at least kernel-motion-kernel")
        for index, stage in enumerate(self.stages):
            expect_kernel = index % 2 == 0
            if expect_kernel != isinstance(stage, KernelStage):
                raise ValueError(
                    f"{self.name}: stage {index} breaks kernel/motion "
                    "alternation"
                )
        if not isinstance(self.stages[-1], KernelStage):
            raise ValueError(f"{self.name}: chain must end on a kernel")

    @property
    def kernel_stages(self) -> List[KernelStage]:
        return [s for s in self.stages if isinstance(s, KernelStage)]

    @property
    def motion_stages(self) -> List[MotionStage]:
        return [s for s in self.stages if isinstance(s, MotionStage)]

    @property
    def n_accelerators(self) -> int:
        """Accelerator cards this chain occupies."""
        return len(self.kernel_stages)

    def scale_batches(self, factor: float) -> "AppChain":
        """Uniformly scale all data volumes (sensitivity studies)."""
        from ..profiles import scale_profile

        if factor <= 0:
            raise ValueError("scale factor must be positive")
        stages: List[Stage] = []
        for stage in self.stages:
            if isinstance(stage, KernelStage):
                stages.append(
                    replace(
                        stage,
                        cpu_time_s=stage.cpu_time_s * factor,
                        accel_time_s=stage.accel_time_s * factor,
                        cpu_serial_time_s=stage.cpu_serial_time_s * factor,
                        output_bytes=max(1, int(stage.output_bytes * factor)),
                    )
                )
            else:
                stages.append(
                    replace(
                        stage,
                        profile=scale_profile(stage.profile, factor),
                        input_bytes=max(1, int(stage.input_bytes * factor)),
                        output_bytes=max(1, int(stage.output_bytes * factor)),
                    )
                )
        return AppChain(name=self.name, stages=stages)
