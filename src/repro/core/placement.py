"""DRX placement options and system modes (Sec. III, Fig. 4).

Four DRX placements are modeled, plus the two reference configurations:

* ``ALL_CPU`` — kernels *and* restructuring on the host CPU;
* ``MULTI_AXL`` — kernels on accelerators, restructuring on the CPU
  (the paper's baseline);
* ``INTEGRATED`` — one DRX integrated next to the CPU; all data still
  crosses the (shared) upstream links;
* ``STANDALONE`` — DRX PCIe cards, one per application, installed under
  the same switch as that application's accelerators; the 25 W PCIe
  slot power budget caps the card's clock;
* ``BUMP_IN_WIRE`` — one DRX in front of every accelerator, reached
  over a private internal multiplexer (no switch traversal on the
  accelerator→DRX hop);
* ``PCIE_INTEGRATED`` — DRX inside each PCIe switch, processing at the
  aggregate line rate of the downstream ports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..drx.microarch import DRXConfig, DEFAULT_DRX
from ..interconnect import PCIeGen

__all__ = ["Mode", "SystemConfig", "drx_config_for"]


class Mode(enum.Enum):
    """System configuration: the two references plus the four placements."""

    ALL_CPU = "all-cpu"
    MULTI_AXL = "multi-axl"
    INTEGRATED = "integrated-drx"
    STANDALONE = "standalone-drx"
    BUMP_IN_WIRE = "bump-in-the-wire-drx"
    PCIE_INTEGRATED = "pcie-integrated-drx"

    @property
    def uses_drx(self) -> bool:
        return self in (
            Mode.INTEGRATED,
            Mode.STANDALONE,
            Mode.BUMP_IN_WIRE,
            Mode.PCIE_INTEGRATED,
        )


@dataclass(frozen=True)
class SystemConfig:
    """Knobs for one simulated system instance."""

    mode: Mode = Mode.BUMP_IN_WIRE
    pcie_gen: PCIeGen = PCIeGen.GEN3
    drx: DRXConfig = DEFAULT_DRX
    accelerators_per_switch: int = 8
    cpu_restructure_threads: int = 8
    # Lanes on the switch→CPU upstream ports and on the accelerator
    # downstream ports. Newer-generation CPUs expose more lanes
    # (Sec. VII-C's Fig. 19 discussion), so the Gen 4/5 *baselines* widen
    # these; DMX accelerator/DRX cards keep their fixed x8 edge.
    upstream_lanes: int = 8
    accelerator_lanes: int = 8
    # Standalone cards run off PCIe slot power (25 W). The modeled DRX
    # fits that envelope, so the clock is not derated by default; the
    # knob remains for studying power-constrained cards.
    standalone_derate: float = 0.85

    def __post_init__(self) -> None:
        if self.accelerators_per_switch <= 0:
            raise ValueError("accelerators_per_switch must be positive")
        if not 0 < self.standalone_derate <= 1:
            raise ValueError("standalone_derate must be in (0, 1]")
        if self.cpu_restructure_threads <= 0:
            raise ValueError("cpu_restructure_threads must be positive")


def drx_config_for(config: SystemConfig) -> DRXConfig:
    """The effective DRX hardware configuration for a placement.

    * Standalone cards are clock-derated by the 25 W slot budget.
    * PCIe-Integrated DRX runs at the switch's aggregate line rate —
      modeled as a DRAM-bandwidth uplift (it processes in-flight data
      without a store-and-forward DRAM hop).
    """
    base = config.drx
    if config.mode == Mode.STANDALONE:
        # One large card shared by a couple of applications: twice the
        # lanes but a derated clock and only modestly more memory
        # bandwidth — the 25 W PCIe slot budget binds.
        return replace(
            base,
            frequency_hz=base.frequency_hz * config.standalone_derate,
            lanes=base.lanes * 2,
            dram_bandwidth=base.dram_bandwidth * 1.2,
            power_w=base.power_w * 2,
        )
    if config.mode == Mode.PCIE_INTEGRATED:
        # Switch-integrated DRX must process at the aggregated line rate
        # of all downstream ports (the engineering burden Sec. III calls
        # prohibitive) — its streaming rate scales with the port count.
        return replace(
            base,
            dram_bandwidth=base.dram_bandwidth * config.accelerators_per_switch,
            lanes=base.lanes * config.accelerators_per_switch,
        )
    return base
