"""Workload-building helpers: functional runs → calibrated AppChains.

Every benchmark builder follows the same recipe:

1. synthesize a *small* sample input (fast enough for tests);
2. run kernel 1 functionally, collect its work profile and real output;
3. run the restructuring pipeline on that output, collecting per-op
   profiles and the restructured data;
4. profile kernel 2 on the restructured data;
5. scale each profile to the paper-sized batch (6–16 MB intermediates)
   with :func:`~repro.profiles.scale_profile` — per op, because some
   ops scale with the input volume and others (e.g. a resize to the
   detector's fixed input size) scale with the batch count only;
6. convert profiles to stage times: CPU kernel time from the host cost
   model with kernel-grade parallel scaling, accelerator time = CPU
   time ÷ per-kernel speedup (the paper's scaling methodology).

Builders pass *absolute* target byte counts for the movement sizes; the
``volume_scale`` arguments apply to work profiles only.
"""

from __future__ import annotations

from typing import List, Sequence

from ..accelerators.base import AcceleratorSpec
from ..core.chain import KernelStage, MotionStage, merge_profiles
from ..cpu import HostCPU
from ..profiles import WorkProfile, scale_profile
from ..sim import Simulator

__all__ = ["kernel_stage_from_profile", "motion_stage_from_profiles",
           "KERNEL_PARALLEL_SPEEDUP", "MOTION_CPU_THREADS"]

# Domain kernels are regular, tuned library code (FFTW/MKL-class): they
# scale well across cores. Restructuring jobs do not (Sec. IV-A) — they
# are priced through HostCPU's restructuring path instead.
KERNEL_PARALLEL_SPEEDUP = 3.0
# Per-job restructuring parallelism is poor (serial record boundaries,
# chunk dependencies, ephemeral-thread churn): ~3 effective cores.
MOTION_CPU_THREADS = 3

_cost_host = HostCPU(Simulator())


def kernel_stage_from_profile(
    name: str,
    spec: AcceleratorSpec,
    profile: WorkProfile,
    output_bytes_target: int,
    volume_scale: float = 1.0,
) -> KernelStage:
    """Build a kernel stage.

    ``profile`` is the sample-run profile; ``volume_scale`` grows it to
    the production batch. ``output_bytes_target`` is the absolute
    intermediate size handed to the next motion stage. Accelerator time
    is CPU time divided by the per-kernel speedup (Sec. VI: measured CPU
    latency scaled by accelerator and ASIC factors).
    """
    scaled = scale_profile(profile, volume_scale)
    cpu_serial = _cost_host.serial_time(scaled)
    cpu_time = cpu_serial / KERNEL_PARALLEL_SPEEDUP
    accel_time = cpu_time / spec.speedup_vs_cpu
    return KernelStage(
        name=name,
        spec=spec,
        cpu_time_s=cpu_time,
        accel_time_s=accel_time,
        output_bytes=max(1, int(output_bytes_target)),
        cpu_threads=8,
        cpu_serial_time_s=cpu_serial,
    )


def motion_stage_from_profiles(
    name: str,
    profiles: Sequence[WorkProfile],
    input_bytes_target: int,
    output_bytes_target: int,
) -> MotionStage:
    """Build a motion stage from *already-scaled* per-op profiles."""
    merged = merge_profiles(list(profiles), name=name)
    return MotionStage(
        name=name,
        profile=merged,
        input_bytes=max(1, int(input_bytes_target)),
        output_bytes=max(1, int(output_bytes_target)),
        cpu_threads=MOTION_CPU_THREADS,
    )
