"""Sound Detection: FFT → [power, spectrogram, mel, log, flatten] → SVM.

Table I row 2 and the paper's running example (Fig. 2): short-time
Fourier transform of audio snippets, mel-scale spectrogram assembly as
the data-motion step, and an SVM genre classifier.
"""

from __future__ import annotations

import numpy as np

from ..accelerators import FFTAccelerator, SVMAccelerator
from ..core.chain import AppChain
from ..restructuring import (
    FeatureFlatten,
    LogCompress,
    MelScale,
    PowerSpectrum,
    RestructuringPipeline,
    SpectrogramAssembly,
)
from .base import kernel_stage_from_profile, motion_stage_from_profiles
from .generators import make_audio_snippet

__all__ = ["build_chain", "run_functional_demo", "SAMPLE_RATE", "N_MELS"]

SAMPLE_RATE = 22_050.0
FRAME_LEN, HOP = 1024, 512
N_MELS = 128
SAMPLE_DURATION_S = 1.0
# Production batch: 8 snippets of 10 s each (≈14 MB of spectra).
TARGET_SNIPPETS, TARGET_DURATION_S = 8, 10.0


def build_chain(instance: int = 0) -> AppChain:
    fft = FFTAccelerator(frame_len=FRAME_LEN, hop=HOP)
    audio = make_audio_snippet(SAMPLE_DURATION_S, SAMPLE_RATE, seed=11)

    fft_profile = fft.work_profile(audio)
    spectra = fft.run(audio)

    motion = RestructuringPipeline(
        "sound-motion",
        [
            PowerSpectrum(),
            SpectrogramAssembly(),
            MelScale(N_MELS, SAMPLE_RATE),
            LogCompress(),
            FeatureFlatten(),
        ],
    )
    features, motion_profiles = motion.run(spectra)
    # The SVM consumes the flattened mel features of each snippet.
    svm = SVMAccelerator(n_classes=10, n_features=features.shape[1])
    svm_profile = svm.work_profile(features)

    from ..profiles import scale_profile

    scale = (TARGET_DURATION_S / SAMPLE_DURATION_S) * TARGET_SNIPPETS
    spectra_bytes_target = int(spectra.nbytes * scale)
    features_bytes_target = int(features.nbytes * scale)
    return AppChain(
        name=f"sound-detection-{instance}",
        stages=[
            kernel_stage_from_profile(
                "stft", fft.spec, fft_profile,
                output_bytes_target=spectra_bytes_target, volume_scale=scale,
            ),
            motion_stage_from_profiles(
                "sound-motion",
                [scale_profile(p, scale) for p in motion_profiles],
                input_bytes_target=spectra_bytes_target,
                output_bytes_target=features_bytes_target,
            ),
            kernel_stage_from_profile(
                "svm-classify", svm.spec, svm_profile,
                output_bytes_target=1024, volume_scale=scale,
            ),
        ],
    )


def run_functional_demo(seed: int = 0) -> dict:
    fft = FFTAccelerator(frame_len=FRAME_LEN, hop=HOP)
    audio = make_audio_snippet(SAMPLE_DURATION_S, SAMPLE_RATE,
                               genre=seed % 5, seed=seed)
    spectra = fft.run(audio)
    motion = RestructuringPipeline(
        "sound-motion",
        [
            PowerSpectrum(),
            SpectrogramAssembly(),
            MelScale(N_MELS, SAMPLE_RATE),
            LogCompress(),
        ],
    )
    mel = motion.apply(spectra)
    # Per-snippet feature: mean mel energy per bin.
    features = mel.mean(axis=1, keepdims=True).T.astype(np.float32)
    svm = SVMAccelerator(n_classes=10, n_features=N_MELS)
    genre = svm.run(features)
    return {
        "spectra_shape": spectra.shape,
        "mel_shape": mel.shape,
        "genre": int(genre[0]),
    }
