"""The five end-to-end benchmark applications (+ the NER extension).

Chain construction runs the functional kernels on small samples and is
therefore moderately expensive (~seconds); :func:`build_benchmark_chains`
caches built chains and stamps per-instance names for concurrent runs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List

from ..core.chain import AppChain
from . import (
    brain_stimulation,
    hash_join,
    ner_extension,
    pii_redaction,
    sound_detection,
    video_surveillance,
)

__all__ = [
    "BENCHMARKS",
    "benchmark_names",
    "build_benchmark_chains",
    "brain_stimulation",
    "hash_join",
    "ner_extension",
    "pii_redaction",
    "sound_detection",
    "video_surveillance",
]

BENCHMARKS: Dict[str, Callable[[int], AppChain]] = {
    "video-surveillance": video_surveillance.build_chain,
    "sound-detection": sound_detection.build_chain,
    "brain-stimulation": brain_stimulation.build_chain,
    "pii-redaction": pii_redaction.build_chain,
    "db-hash-join": hash_join.build_chain,
}


def benchmark_names() -> List[str]:
    """The five Table I benchmarks, in paper order."""
    return list(BENCHMARKS)


@lru_cache(maxsize=None)
def _template(name: str) -> AppChain:
    if name == "pii-ner":
        return ner_extension.build_chain(0)
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}")
    return BENCHMARKS[name](0)


def build_benchmark_chains(name: str, n_instances: int) -> List[AppChain]:
    """``n_instances`` uniquely-named copies of one benchmark's chain."""
    if n_instances <= 0:
        raise ValueError("n_instances must be positive")
    template = _template(name)
    base = template.name.rsplit("-", 1)[0]
    return [
        AppChain(name=f"{base}-{i}", stages=list(template.stages))
        for i in range(n_instances)
    ]
