"""Brain Stimulation: FFT → [band power, z-score, assemble] → RL policy.

Table I row 3: electromagnetic signals from a brain-simulation model are
Fourier-transformed, reduced to normalized band-power observations, and
fed to a reinforcement-learning (PPO) kernel that picks the stimulation
action.
"""

from __future__ import annotations

import numpy as np

from ..accelerators import FFTAccelerator, RLPolicyAccelerator
from ..core.chain import AppChain
from ..restructuring import (
    BandPower,
    ObservationAssembly,
    RestructuringPipeline,
    SpatialFilter,
    ZScoreNormalize,
)
from .base import kernel_stage_from_profile, motion_stage_from_profiles
from .generators import make_em_recording

__all__ = ["build_chain", "run_functional_demo", "N_CHANNELS", "OBS_DIM"]

SAMPLE_RATE = 1024.0
SAMPLE_CHANNELS, SAMPLE_LEN = 8, 4096
# Production batch: 64 channels x 16k samples (~8 MB of spectra) per
# stimulation window.
TARGET_CHANNELS, TARGET_LEN = 64, 16_384
N_CHANNELS = TARGET_CHANNELS
N_BANDS = 5
OBS_DIM = SAMPLE_CHANNELS * N_BANDS


def build_chain(instance: int = 0) -> AppChain:
    fft = FFTAccelerator()
    policy = RLPolicyAccelerator(obs_dim=TARGET_CHANNELS * N_BANDS, action_dim=8)
    signals = make_em_recording(SAMPLE_CHANNELS, SAMPLE_LEN, SAMPLE_RATE, seed=13)

    fft_profile = fft.work_profile(signals)

    # The motion pipeline is cheap enough to profile at the full batch
    # size directly (the spatial filter's per-element cost grows with
    # the channel count, so scaling a small sample would misprice it).
    rng = np.random.default_rng(13)
    bins = TARGET_LEN // 2 + 1
    spectra_target = (
        rng.standard_normal((TARGET_CHANNELS, bins))
        + 1j * rng.standard_normal((TARGET_CHANNELS, bins))
    ).astype(np.complex64)
    motion = RestructuringPipeline(
        "brain-motion",
        [
            SpatialFilter(TARGET_CHANNELS),
            BandPower(SAMPLE_RATE),
            ZScoreNormalize(),
            ObservationAssembly(),
        ],
    )
    observation, motion_profiles = motion.run(spectra_target)
    rl_input = np.zeros((1, TARGET_CHANNELS * N_BANDS), dtype=np.float32)
    rl_profile = policy.work_profile(rl_input)

    scale = (TARGET_CHANNELS * TARGET_LEN) / (SAMPLE_CHANNELS * SAMPLE_LEN)
    spectra_bytes_target = int(spectra_target.nbytes)
    obs_bytes_target = TARGET_CHANNELS * N_BANDS * 4
    return AppChain(
        name=f"brain-stimulation-{instance}",
        stages=[
            kernel_stage_from_profile(
                "em-fft", fft.spec, fft_profile,
                output_bytes_target=spectra_bytes_target, volume_scale=scale,
            ),
            motion_stage_from_profiles(
                "brain-motion", motion_profiles,
                input_bytes_target=spectra_bytes_target,
                output_bytes_target=obs_bytes_target,
            ),
            kernel_stage_from_profile(
                "ppo-policy", policy.spec, rl_profile,
                output_bytes_target=1024, volume_scale=1.0,
            ),
        ],
    )


def run_functional_demo(seed: int = 0) -> dict:
    fft = FFTAccelerator()
    signals = make_em_recording(SAMPLE_CHANNELS, SAMPLE_LEN, SAMPLE_RATE, seed)
    spectra = fft.run(signals)
    motion = RestructuringPipeline(
        "brain-motion",
        [
            SpatialFilter(SAMPLE_CHANNELS),
            BandPower(SAMPLE_RATE),
            ZScoreNormalize(),
            ObservationAssembly(),
        ],
    )
    observation = motion.apply(spectra)
    policy = RLPolicyAccelerator(obs_dim=observation.shape[1], action_dim=8)
    action = policy.run(observation)
    return {
        "spectra_shape": spectra.shape,
        "observation_dim": observation.shape[1],
        "action": action,
    }
