"""PIR + NER: the three-kernel extension of Fig. 16.

Sec. VII-C: a Transformer fine-tuned for Named Entity Recognition is
appended to Personal Info Redaction, "along with its additional data
restructuring kernel consisting of reshaping and typecasting" —
tokenization into padded int32 sequences.
"""

from __future__ import annotations

import numpy as np

from ..accelerators import NERAccelerator, RegexAccelerator, TransformerEncoder
from ..core.chain import AppChain
from ..restructuring import (
    RecordsToBytes,
    RestructuringPipeline,
    TokenizeForNER,
)
from .base import kernel_stage_from_profile, motion_stage_from_profiles
from .generators import make_pii_document
from .pii_redaction import RECORD_LEN, TARGET_BYTES, build_chain as build_pir

__all__ = ["build_chain", "run_functional_demo", "SEQ_LEN", "NER_FRACTION"]

SEQ_LEN = 128
# Only sequences the regex stage flagged as PII-bearing are routed to
# the Transformer (NER "identifies personal and sensitive information
# ... which is hard to capture for regular expression"): the heavyweight
# model reviews the suspicious subset, not the full corpus.
NER_FRACTION = 0.01


def build_chain(instance: int = 0) -> AppChain:
    """The two PIR stages plus tokenization motion and the NER kernel."""
    base = build_pir(instance)
    ner = NERAccelerator()
    regex = RegexAccelerator()

    # Functional sample for the added motion + kernel.
    document = make_pii_document(400, seed=23)
    from ..restructuring import BytesToRecords

    records = BytesToRecords(RECORD_LEN).apply(
        np.frombuffer(document, dtype=np.uint8).copy()
    )
    redacted = regex.run(records)

    motion = RestructuringPipeline(
        "ner-motion", [RecordsToBytes(), TokenizeForNER(SEQ_LEN)]
    )
    token_ids, motion_profiles = motion.run(redacted)
    ner_profile = ner.work_profile(token_ids)

    from ..profiles import scale_profile

    scale = TARGET_BYTES / len(document)
    ner_scale = scale * NER_FRACTION
    tokens_bytes_target = max(1, int(token_ids.nbytes * ner_scale))
    chain = AppChain(
        name=f"pii-ner-{instance}",
        stages=list(base.stages) + [
            motion_stage_from_profiles(
                "ner-motion",
                [scale_profile(p, ner_scale) for p in motion_profiles],
                input_bytes_target=int(redacted.nbytes * scale),
                output_bytes_target=tokens_bytes_target,
            ),
            kernel_stage_from_profile(
                "ner-transformer", ner.spec, ner_profile,
                output_bytes_target=tokens_bytes_target,
                volume_scale=ner_scale,
            ),
        ],
    )
    return chain


def run_functional_demo(seed: int = 0) -> dict:
    """Regex-redact then NER-tag a small document, end to end."""
    from ..accelerators import AesGcmAccelerator
    from ..restructuring import BytesToRecords
    from .generators import encrypt_document

    decryptor = AesGcmAccelerator()
    regex = RegexAccelerator()
    encoder = TransformerEncoder(
        vocab_size=30_000, d_model=32, n_heads=2, n_layers=1, d_ff=64,
        max_len=SEQ_LEN,
    )
    ner = NERAccelerator(encoder)

    document = make_pii_document(30, pii_density=0.5, seed=seed)
    payload = encrypt_document(document, key=decryptor.key)
    plaintext = decryptor.run(payload)
    records = BytesToRecords(RECORD_LEN).apply(plaintext)
    redacted = regex.run(records)
    motion = RestructuringPipeline(
        "ner-motion", [RecordsToBytes(), TokenizeForNER(SEQ_LEN)]
    )
    token_ids = motion.apply(redacted)
    labels = ner.run(token_ids)
    return {
        "pii_redacted": regex.matches_found,
        "n_sequences": token_ids.shape[0],
        "label_shape": labels.shape,
    }
