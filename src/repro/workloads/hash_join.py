"""Database Hash Join: decompress → [columnarize, partition] → hash join.

Table I row 5: compressed database tables are inflated, pivoted from
row-major records to hash-partitioned columnar layout, and equi-joined.
"""

from __future__ import annotations

import numpy as np

from ..accelerators import DecompressionAccelerator, HashJoinAccelerator
from ..core.chain import AppChain
from ..restructuring import (
    DictionaryEncode,
    HashPartition,
    RestructuringPipeline,
    RowsToColumnar,
)
from .base import kernel_stage_from_profile, motion_stage_from_profiles
from .generators import make_compressed_table, make_table_rows

__all__ = ["build_chain", "run_functional_demo", "N_COLS"]

N_COLS = 4
SAMPLE_ROWS = 20_000
# Production batch: ~1M rows (~16 MB decompressed) per request.
TARGET_ROWS = 1_000_000
N_PARTITIONS = 16


def build_chain(instance: int = 0) -> AppChain:
    decompressor = DecompressionAccelerator()
    joiner = HashJoinAccelerator()
    compressed = make_compressed_table(SAMPLE_ROWS, N_COLS, seed=19)

    decompress_profile = decompressor.work_profile(compressed)
    raw = decompressor.run(compressed)
    rows = raw.reshape(SAMPLE_ROWS, N_COLS * 4)

    motion = RestructuringPipeline(
        "join-motion",
        [RowsToColumnar(N_COLS), HashPartition(key_column=0,
                                               n_partitions=N_PARTITIONS)],
    )
    columnar, motion_profiles = motion.run(rows)

    build_side = np.stack(
        [np.arange(1000, dtype=np.int32),
         np.arange(1000, dtype=np.int32) * 7]
    )
    join_profile = joiner.work_profile((build_side, columnar))

    from ..profiles import scale_profile

    scale = TARGET_ROWS / SAMPLE_ROWS
    raw_bytes_target = int(raw.nbytes * scale)
    columnar_bytes_target = int(columnar.nbytes * scale)
    return AppChain(
        name=f"db-hash-join-{instance}",
        stages=[
            kernel_stage_from_profile(
                "decompress", decompressor.spec, decompress_profile,
                output_bytes_target=raw_bytes_target, volume_scale=scale,
            ),
            motion_stage_from_profiles(
                "join-motion",
                [scale_profile(p, scale) for p in motion_profiles],
                input_bytes_target=raw_bytes_target,
                output_bytes_target=columnar_bytes_target,
            ),
            kernel_stage_from_profile(
                "hash-join", joiner.spec, join_profile,
                output_bytes_target=columnar_bytes_target, volume_scale=scale,
            ),
        ],
    )


def run_functional_demo(seed: int = 0) -> dict:
    decompressor = DecompressionAccelerator()
    joiner = HashJoinAccelerator()
    n_rows = 2000
    compressed = make_compressed_table(n_rows, N_COLS, key_range=200, seed=seed)
    raw = decompressor.run(compressed)
    rows = raw.reshape(n_rows, N_COLS * 4)
    motion = RestructuringPipeline(
        "join-motion",
        [RowsToColumnar(N_COLS),
         HashPartition(key_column=0, n_partitions=N_PARTITIONS)],
    )
    columnar = motion.apply(rows)
    build_side = np.stack(
        [np.arange(200, dtype=np.int32), np.arange(200, dtype=np.int32) * 3]
    )
    joined = joiner.run((build_side, columnar))
    return {
        "compressed_bytes": len(compressed),
        "decompressed_bytes": int(raw.nbytes),
        "joined_rows": int(joined.shape[1]),
    }
