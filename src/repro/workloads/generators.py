"""Synthetic input generators for the five benchmarks.

The paper's inputs (video streams, audio snippets, brain-simulation
signals, encrypted documents, compressed database tables) are not
shipped with it, so each generator synthesizes a realistic stand-in with
the properties the pipeline exercises: video frames with low-frequency
content that the codec actually compresses, audio with genre-dependent
spectral structure, EM channels with band-limited oscillations, text
with embedded PII at a controlled density, and join-able tables with
skewed keys. All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..accelerators.compression import lz77_compress
from ..accelerators.crypto import aes_gcm_encrypt
from ..accelerators.video import encode_frame

__all__ = [
    "make_nv12_frame",
    "make_video_bitstream",
    "make_audio_snippet",
    "make_em_recording",
    "make_pii_document",
    "encrypt_document",
    "make_table_rows",
    "make_compressed_table",
]


def make_nv12_frame(height: int, width: int, seed: int = 0) -> np.ndarray:
    """An NV12 frame image with smooth scene content plus sensor noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0 : 3 * height // 2, 0:width]
    scene = (
        128
        + 50 * np.sin(yy / 31.0 + rng.uniform(0, 6.28))
        + 40 * np.cos(xx / 41.0 + rng.uniform(0, 6.28))
    )
    noise = rng.normal(0, 3, scene.shape)
    return np.clip(scene + noise, 0, 255).astype(np.uint8)


def make_video_bitstream(height: int, width: int, n_frames: int = 1,
                         seed: int = 0) -> List[bytes]:
    """Encoded bitstreams for a short clip."""
    return [
        encode_frame(make_nv12_frame(height, width, seed + i), height, width)
        for i in range(n_frames)
    ]


def make_audio_snippet(duration_s: float, sample_rate: float = 22_050.0,
                       genre: int = 0, seed: int = 0) -> np.ndarray:
    """A mono audio snippet whose harmonic stack depends on ``genre``."""
    rng = np.random.default_rng(seed)
    n = int(duration_s * sample_rate)
    t = np.arange(n) / sample_rate
    fundamental = 110.0 * (1 + genre % 5)
    signal = np.zeros(n)
    for harmonic in range(1, 6):
        amp = 1.0 / harmonic
        signal += amp * np.sin(
            2 * np.pi * fundamental * harmonic * t + rng.uniform(0, 6.28)
        )
    signal += rng.normal(0, 0.05, n)
    return (signal / np.abs(signal).max()).astype(np.float32)


def make_em_recording(n_channels: int, n_samples: int, sample_rate: float,
                      seed: int = 0) -> np.ndarray:
    """Band-limited multi-channel electromagnetic recording."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / sample_rate
    out = np.empty((n_channels, n_samples), dtype=np.float32)
    band_centers = (2.0, 6.0, 10.0, 20.0, 40.0)
    for channel in range(n_channels):
        signal = rng.normal(0, 0.1, n_samples)
        for center in band_centers:
            amp = rng.uniform(0.2, 1.0)
            freq = center * rng.uniform(0.8, 1.2)
            signal += amp * np.sin(2 * np.pi * freq * t + rng.uniform(0, 6.28))
        out[channel] = signal
    return out


_FIRST = ["alice", "bob", "carol", "dan", "erin", "frank", "grace", "heidi"]
_LAST = ["smith", "jones", "chen", "garcia", "patel", "kim", "mueller"]
_FILLER = (
    "the quarterly report indicates steady growth across all regions and "
    "the team will review projections at the next meeting"
).split()


def make_pii_document(n_lines: int, pii_density: float = 0.3,
                      seed: int = 0) -> bytes:
    """Plain-text document with PII (SSNs, emails, phones) sprinkled in."""
    if not 0 <= pii_density <= 1:
        raise ValueError("pii_density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    lines = []
    for _ in range(n_lines):
        words = list(rng.choice(_FILLER, size=rng.integers(6, 14)))
        if rng.random() < pii_density:
            kind = rng.integers(0, 3)
            if kind == 0:
                pii = f"{rng.integers(100, 999)}-{rng.integers(10, 99)}-{rng.integers(1000, 9999)}"
            elif kind == 1:
                pii = (
                    f"{rng.choice(_FIRST)}.{rng.choice(_LAST)}"
                    f"@corp{rng.integers(1, 9)}.example.com"
                )
            else:
                pii = (
                    f"({rng.integers(200, 999)}) {rng.integers(200, 999)}-"
                    f"{rng.integers(1000, 9999)}"
                )
            position = rng.integers(0, len(words) + 1)
            words.insert(position, pii)
        lines.append(" ".join(words))
    return "\n".join(lines).encode()


def encrypt_document(document: bytes, key: bytes = b"dmx-repro-key-16",
                     iv: bytes = b"iv-12-bytes!") -> dict:
    """AES-GCM encrypt a document into the decrypt kernel's payload."""
    ciphertext, tag = aes_gcm_encrypt(key, iv, document)
    return {"ciphertext": ciphertext, "iv": iv, "tag": tag}


def make_table_rows(n_rows: int, n_cols: int, key_range: int,
                    seed: int = 0) -> np.ndarray:
    """Row-major table image: ``n_cols`` little-endian int32 fields/row.

    Keys (column 0) are Zipf-ish skewed, like real join keys.
    """
    rng = np.random.default_rng(seed)
    raw = rng.zipf(1.3, size=n_rows)
    keys = np.minimum(raw, key_range).astype("<i4")
    payload = rng.integers(0, 1_000_000, (n_rows, n_cols - 1)).astype("<i4")
    table = np.column_stack([keys, payload])
    return table.view(np.uint8).reshape(n_rows, n_cols * 4)


def make_compressed_table(n_rows: int, n_cols: int, key_range: int = 1000,
                          seed: int = 0) -> bytes:
    """LZ77-compressed table image for the decompression kernel."""
    return lz77_compress(make_table_rows(n_rows, n_cols, key_range, seed).tobytes())
