"""Personal Information Redaction: AES-GCM decrypt → [records] → regex.

Table I row 4: privacy-sensitive text is decrypted, restructured into
the fixed-width record layout the regex engine scans, and personally
identifiable information is redacted with blanks.
"""

from __future__ import annotations

import numpy as np

from ..accelerators import AesGcmAccelerator, RegexAccelerator
from ..core.chain import AppChain
from ..restructuring import BytesToRecords, RestructuringPipeline, Typecast
from .base import kernel_stage_from_profile, motion_stage_from_profiles
from .generators import encrypt_document, make_pii_document

__all__ = ["build_chain", "run_functional_demo", "RECORD_LEN"]

RECORD_LEN = 128
SAMPLE_LINES = 400
# Production batch: ~8 MB of encrypted text per request.
TARGET_BYTES = 8 * 1024 * 1024


def build_chain(instance: int = 0) -> AppChain:
    decryptor = AesGcmAccelerator()
    regex = RegexAccelerator()
    document = make_pii_document(SAMPLE_LINES, seed=17)
    payload = encrypt_document(document, key=decryptor.key)

    decrypt_profile = decryptor.work_profile(payload)
    plaintext = decryptor.run(payload)

    motion = RestructuringPipeline(
        "pii-motion", [BytesToRecords(RECORD_LEN)]
    )
    records, motion_profiles = motion.run(plaintext)
    regex_profile = regex.work_profile(records)

    from ..profiles import scale_profile

    scale = TARGET_BYTES / len(document)
    plaintext_bytes_target = int(plaintext.nbytes * scale)
    records_bytes_target = int(records.nbytes * scale)
    return AppChain(
        name=f"pii-redaction-{instance}",
        stages=[
            kernel_stage_from_profile(
                "aes-gcm-decrypt", decryptor.spec, decrypt_profile,
                output_bytes_target=plaintext_bytes_target, volume_scale=scale,
            ),
            motion_stage_from_profiles(
                "pii-motion",
                [scale_profile(p, scale) for p in motion_profiles],
                input_bytes_target=plaintext_bytes_target,
                output_bytes_target=records_bytes_target,
            ),
            kernel_stage_from_profile(
                "regex-redact", regex.spec, regex_profile,
                output_bytes_target=records_bytes_target, volume_scale=scale,
            ),
        ],
    )


def run_functional_demo(seed: int = 0) -> dict:
    decryptor = AesGcmAccelerator()
    regex = RegexAccelerator()
    document = make_pii_document(60, pii_density=0.5, seed=seed)
    payload = encrypt_document(document, key=decryptor.key)
    plaintext = decryptor.run(payload)
    records = BytesToRecords(RECORD_LEN).apply(plaintext)
    redacted = regex.run(records)
    return {
        "document_bytes": len(document),
        "n_records": records.shape[0],
        "pii_redacted": regex.matches_found,
        "redacted_sample": redacted[0].tobytes().rstrip(b"\x00").decode(
            "latin-1"
        ),
    }
