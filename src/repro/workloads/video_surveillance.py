"""Video Surveillance: video decode → [NV12→RGB, resize, tensorize] → detection.

Table I row 1: the decode kernel (hard-IP on the paper's VT1 instance)
emits NV12 frames; the object-detection kernel consumes 416x416 planar
fp32 tensors; the data-motion step is color conversion + bilinear resize
+ layout/normalization.
"""

from __future__ import annotations

import numpy as np

from ..accelerators import ObjectDetectionAccelerator, VideoDecodeAccelerator
from ..core.chain import AppChain
from ..restructuring import ImageToTensor, Nv12ToRgb, ResizeBilinear, RestructuringPipeline
from .base import kernel_stage_from_profile, motion_stage_from_profiles
from .generators import make_video_bitstream

__all__ = ["build_chain", "run_functional_demo", "SAMPLE_HEIGHT", "SAMPLE_WIDTH"]

# Functional sample: one small frame; production batch: 4 frames of 1080p.
SAMPLE_HEIGHT, SAMPLE_WIDTH = 144, 256
TARGET_HEIGHT, TARGET_WIDTH, TARGET_FRAMES = 1080, 1920, 4
DETECTOR_SIZE = 416


def _volume_scale() -> float:
    sample_pixels = SAMPLE_HEIGHT * SAMPLE_WIDTH * 1.5
    target_pixels = TARGET_HEIGHT * TARGET_WIDTH * 1.5 * TARGET_FRAMES
    return target_pixels / sample_pixels


def build_chain(instance: int = 0) -> AppChain:
    """Build the Video Surveillance chain from a functional sample run."""
    decoder = VideoDecodeAccelerator()
    detector = ObjectDetectionAccelerator(input_size=DETECTOR_SIZE)
    bitstream = make_video_bitstream(
        SAMPLE_HEIGHT, SAMPLE_WIDTH, n_frames=1, seed=7
    )[0]

    decode_profile = decoder.work_profile(bitstream)
    frame = decoder.run(bitstream)

    motion = RestructuringPipeline(
        "video-motion",
        [
            Nv12ToRgb(SAMPLE_HEIGHT, SAMPLE_WIDTH),
            ResizeBilinear(DETECTOR_SIZE, DETECTOR_SIZE),
            ImageToTensor(),
        ],
    )
    tensor, motion_profiles = motion.run(frame)
    detect_profile = detector.work_profile(
        np.zeros((3, DETECTOR_SIZE, DETECTOR_SIZE), dtype=np.float32)
    )

    from ..profiles import scale_profile

    pixel_scale = _volume_scale()
    frame_scale = float(TARGET_FRAMES)
    # The NV12→RGB conversion scales with decoded pixels; the resize and
    # tensorization outputs are fixed per frame, so they scale with the
    # batch's frame count only.
    nv12_profile, resize_profile, tensor_profile = motion_profiles
    scaled_motion = [
        scale_profile(nv12_profile, pixel_scale),
        scale_profile(resize_profile, frame_scale),
        scale_profile(tensor_profile, frame_scale),
    ]
    frame_bytes_target = int(frame.nbytes * pixel_scale)
    tensor_bytes_target = int(tensor.nbytes * frame_scale)
    return AppChain(
        name=f"video-surveillance-{instance}",
        stages=[
            kernel_stage_from_profile(
                "video-decode", decoder.spec, decode_profile,
                output_bytes_target=frame_bytes_target,
                volume_scale=pixel_scale,
            ),
            motion_stage_from_profiles(
                "video-motion", scaled_motion,
                input_bytes_target=frame_bytes_target,
                output_bytes_target=tensor_bytes_target,
            ),
            kernel_stage_from_profile(
                "object-detection", detector.spec, detect_profile,
                output_bytes_target=4096, volume_scale=frame_scale,
            ),
        ],
    )


def run_functional_demo(seed: int = 0) -> dict:
    """End-to-end functional run on the sample size (for examples/tests)."""
    decoder = VideoDecodeAccelerator()
    small_detector = ObjectDetectionAccelerator(input_size=64, threshold=0.3)
    bitstream = make_video_bitstream(SAMPLE_HEIGHT, SAMPLE_WIDTH, 1, seed)[0]
    frame = decoder.run(bitstream)
    motion = RestructuringPipeline(
        "video-motion",
        [
            Nv12ToRgb(SAMPLE_HEIGHT, SAMPLE_WIDTH),
            ResizeBilinear(64, 64),
            ImageToTensor(),
        ],
    )
    tensor = motion.apply(frame)
    detections = small_detector.run(tensor)
    return {
        "frame_shape": frame.shape,
        "tensor_shape": tensor.shape,
        "detections": detections,
    }
