"""Base classes for data-restructuring operations.

A restructuring op is the unit of work DRX (or the host CPU, in the
baseline) performs between two accelerators: it really transforms numpy
data (*functional* contract) and it prices itself as a
:class:`~repro.profiles.WorkProfile` (*timing* contract). The two
contracts are derived from the same invocation, so "what ran" and "what
was charged" can never drift apart.

Ops compose into a :class:`RestructuringPipeline`, the paper's "data
restructuring kernel" between two application kernels (e.g. FFT output →
spectrogram → mel scale → SVM input for Sound Detection).
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np

from ..profiles import WorkProfile

__all__ = ["RestructuringOp", "RestructuringPipeline"]


class RestructuringOp(abc.ABC):
    """One data-restructuring transformation.

    Subclasses implement :meth:`apply` (the real transformation) and the
    work-character class attributes used to build profiles:

    * ``ops_per_element`` — arithmetic per output element;
    * ``branch_fraction`` / ``mispredict_rate`` — control-flow character;
    * ``vectorizable_fraction`` — how much of it SIMD-izes;
    * ``gather_fraction`` — non-streaming memory access share.
    """

    name: str = "restructuring-op"
    ops_per_element: float = 1.0
    branch_fraction: float = 0.04
    mispredict_rate: float = 0.03
    vectorizable_fraction: float = 1.0
    gather_fraction: float = 0.0

    @abc.abstractmethod
    def apply(self, data: np.ndarray) -> np.ndarray:
        """Transform ``data``; must not mutate the input."""

    def __call__(self, data: np.ndarray) -> np.ndarray:
        return self.apply(data)

    def profile_for(self, data: np.ndarray, result: np.ndarray) -> WorkProfile:
        """Build the :class:`WorkProfile` for one concrete invocation."""
        return WorkProfile(
            name=self.name,
            bytes_in=int(data.nbytes),
            bytes_out=int(result.nbytes),
            elements=int(result.size),
            ops_per_element=self.ops_per_element,
            element_size=max(1, int(result.itemsize)),
            branch_fraction=self.branch_fraction,
            mispredict_rate=self.mispredict_rate,
            vectorizable_fraction=self.vectorizable_fraction,
            gather_fraction=self.gather_fraction,
        )

    def run(self, data: np.ndarray) -> Tuple[np.ndarray, WorkProfile]:
        """Apply and profile in one step."""
        result = self.apply(data)
        return result, self.profile_for(data, result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class RestructuringPipeline:
    """An ordered chain of restructuring ops — one "data motion" step.

    Example
    -------
    >>> import numpy as np
    >>> from repro.restructuring import Typecast, Normalize
    >>> pipe = RestructuringPipeline("demo", [Normalize(0.0, 2.0), Typecast(np.float32)])
    >>> out, profiles = pipe.run(np.ones(8))
    >>> out.dtype
    dtype('float32')
    >>> len(profiles)
    2
    """

    def __init__(self, name: str, ops: Sequence[RestructuringOp]):
        if not ops:
            raise ValueError(f"pipeline {name!r} has no ops")
        self.name = name
        self.ops: List[RestructuringOp] = list(ops)

    def apply(self, data: np.ndarray) -> np.ndarray:
        """Run the full chain functionally."""
        for op in self.ops:
            data = op.apply(data)
        return data

    def run(self, data: np.ndarray) -> Tuple[np.ndarray, List[WorkProfile]]:
        """Run the chain, returning the output and per-op profiles."""
        profiles: List[WorkProfile] = []
        for op in self.ops:
            data, profile = op.run(data)
            profiles.append(profile)
        return data, profiles

    def profiles(self, data: np.ndarray) -> List[WorkProfile]:
        """Per-op profiles for an input, discarding the transformed data."""
        return self.run(data)[1]

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RestructuringPipeline({self.name!r}, ops={[op.name for op in self.ops]})"
