"""Audio-domain restructuring: spectrogram and mel-scale transformation.

These are the data-motion ops of the Sound Detection benchmark (Fig. 2):
the FFT accelerator emits complex spectra per audio frame; before the SVM
accelerator can consume them, the spectra must become a power
spectrogram, be projected onto the mel scale ("mel-frequency bins which
are closer to the human-perceivable scale"), log-compressed, and
flattened into the SVM feature layout.

The mel filterbank is constructed from scratch (triangular filters on
the HTK mel scale); no audio library is used.
"""

from __future__ import annotations

import numpy as np

from .base import RestructuringOp

__all__ = [
    "hz_to_mel",
    "mel_to_hz",
    "mel_filterbank",
    "PowerSpectrum",
    "SpectrogramAssembly",
    "MelScale",
    "LogCompress",
    "FeatureFlatten",
]


def hz_to_mel(hz):
    """HTK mel scale: ``2595 * log10(1 + hz / 700)``."""
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=np.float64) / 700.0)


def mel_to_hz(mel):
    """Inverse HTK mel scale."""
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=np.float64) / 2595.0) - 1.0)


def mel_filterbank(
    n_mels: int, n_fft_bins: int, sample_rate: float, fmin: float = 0.0,
    fmax: float = None,
) -> np.ndarray:
    """Triangular mel filterbank matrix of shape ``(n_mels, n_fft_bins)``.

    ``n_fft_bins`` is the one-sided spectrum length (``n_fft // 2 + 1``).
    """
    if n_mels <= 0 or n_fft_bins <= 1:
        raise ValueError("need n_mels > 0 and n_fft_bins > 1")
    fmax = fmax if fmax is not None else sample_rate / 2.0
    if not 0 <= fmin < fmax <= sample_rate / 2.0:
        raise ValueError(f"bad frequency range [{fmin}, {fmax}]")
    mel_points = np.linspace(hz_to_mel(fmin), hz_to_mel(fmax), n_mels + 2)
    hz_points = mel_to_hz(mel_points)
    bin_freqs = np.linspace(0.0, sample_rate / 2.0, n_fft_bins)
    bank = np.zeros((n_mels, n_fft_bins), dtype=np.float32)
    for m in range(n_mels):
        left, center, right = hz_points[m], hz_points[m + 1], hz_points[m + 2]
        rising = (bin_freqs - left) / max(center - left, 1e-12)
        falling = (right - bin_freqs) / max(right - center, 1e-12)
        bank[m] = np.maximum(0.0, np.minimum(rising, falling))
    return bank


class PowerSpectrum(RestructuringOp):
    """Complex FFT frames → power spectrum (|X|^2), one-sided."""

    name = "power-spectrum"
    ops_per_element = 3.0  # re^2 + im^2 + add

    def apply(self, data: np.ndarray) -> np.ndarray:
        if not np.iscomplexobj(data):
            raise ValueError("power spectrum expects complex FFT output")
        return (data.real.astype(np.float32) ** 2
                + data.imag.astype(np.float32) ** 2)


class SpectrogramAssembly(RestructuringOp):
    """Stack per-frame spectra into a (bins, frames) spectrogram image.

    The transpose makes frequency the leading axis (the layout the SVM
    feature extractor expects) and is a gathering access pattern.
    """

    name = "spectrogram-assembly"
    ops_per_element = 0.5
    gather_fraction = 0.85

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim != 2:
            raise ValueError(f"expected (frames, bins), got shape {data.shape}")
        return np.ascontiguousarray(data.T)


class MelScale(RestructuringOp):
    """Project a (bins, frames) power spectrogram onto mel bins.

    A dense matmul against the triangular filterbank — the compute-heavy
    heart of this data-motion step.
    """

    name = "mel-scale"
    branch_fraction = 0.02

    def __init__(self, n_mels: int, sample_rate: float):
        self.n_mels = n_mels
        self.sample_rate = sample_rate
        self._bank = None  # built lazily once the bin count is known
        self._bank_bins = None

    @property
    def ops_per_element(self) -> float:  # type: ignore[override]
        # Triangular mel filters have bounded support (~2 x bins/n_mels
        # each), so a production implementation evaluates the filterbank
        # sparsely: each mel output reduces only its filter's bins.
        bins = self._bank_bins or 513
        return 4.0 * bins / max(1, self.n_mels)

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim != 2:
            raise ValueError(f"expected (bins, frames), got shape {data.shape}")
        bins = data.shape[0]
        if self._bank is None or self._bank_bins != bins:
            self._bank = mel_filterbank(self.n_mels, bins, self.sample_rate)
            self._bank_bins = bins
        return (self._bank @ data.astype(np.float32)).astype(np.float32)


class LogCompress(RestructuringOp):
    """log(1 + x) dynamic-range compression of mel energies."""

    name = "log-compress"
    ops_per_element = 8.0  # log evaluation

    def apply(self, data: np.ndarray) -> np.ndarray:
        if np.any(data < 0):
            raise ValueError("log compression expects non-negative energies")
        return np.log1p(data.astype(np.float32))


class FeatureFlatten(RestructuringOp):
    """(mel, frames) → flat per-snippet feature vectors for the SVM."""

    name = "feature-flatten"
    ops_per_element = 0.25

    def apply(self, data: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(data).reshape(1, -1).astype(np.float32)
