"""Generic restructuring operations: layout, type, and shape changes.

These are the domain-agnostic building blocks ("reshaping and
typecasting", layout transformation, padding) that appear in every
benchmark's data-motion step.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .base import RestructuringOp

__all__ = [
    "Typecast",
    "Reshape",
    "TransposeOp",
    "Normalize",
    "Quantize",
    "Dequantize",
    "Pad",
    "Crop",
    "InterleaveToPlanar",
    "PlanarToInterleave",
]


class Typecast(RestructuringOp):
    """Convert element dtype (the paper's ubiquitous "typecasting")."""

    name = "typecast"
    ops_per_element = 1.0

    def __init__(self, dtype: np.dtype):
        self.dtype = np.dtype(dtype)
        self.name = f"typecast->{self.dtype.name}"

    def apply(self, data: np.ndarray) -> np.ndarray:
        return data.astype(self.dtype)


class Reshape(RestructuringOp):
    """Reinterpret dimensions. Free of arithmetic but not of movement:

    restructuring between accelerators materializes the new layout in the
    destination buffer, so the copy traffic is real.
    """

    name = "reshape"
    ops_per_element = 0.25  # address arithmetic only

    def __init__(self, shape: Tuple[int, ...]):
        self.shape = tuple(shape)
        self.name = f"reshape{self.shape}"

    def apply(self, data: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(data).reshape(self.shape).copy()


class TransposeOp(RestructuringOp):
    """Axis permutation — a materialized transpose (gathering access)."""

    name = "transpose"
    ops_per_element = 0.5
    gather_fraction = 0.9  # column-major reads defeat streaming prefetch

    def __init__(self, axes: Sequence[int] = None):
        self.axes = tuple(axes) if axes is not None else None
        if self.axes is not None:
            self.name = f"transpose{self.axes}"

    def apply(self, data: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(np.transpose(data, self.axes))


class Normalize(RestructuringOp):
    """Affine normalization ``(x - offset) / scale``."""

    name = "normalize"
    ops_per_element = 2.0

    def __init__(self, offset: float, scale: float):
        if scale == 0:
            raise ValueError("normalize scale must be nonzero")
        self.offset = float(offset)
        self.scale = float(scale)

    def apply(self, data: np.ndarray) -> np.ndarray:
        return ((data.astype(np.float32) - self.offset) / self.scale).astype(
            np.float32
        )


class Quantize(RestructuringOp):
    """float → int8 affine quantization (accelerator input formats)."""

    name = "quantize-int8"
    ops_per_element = 4.0  # scale, round, clip x2

    def __init__(self, scale: float, zero_point: int = 0):
        if scale <= 0:
            raise ValueError("quantize scale must be positive")
        self.scale = float(scale)
        self.zero_point = int(zero_point)

    def apply(self, data: np.ndarray) -> np.ndarray:
        q = np.round(data / self.scale) + self.zero_point
        return np.clip(q, -128, 127).astype(np.int8)


class Dequantize(RestructuringOp):
    """int8 → float32 affine dequantization."""

    name = "dequantize-int8"
    ops_per_element = 2.0

    def __init__(self, scale: float, zero_point: int = 0):
        if scale <= 0:
            raise ValueError("dequantize scale must be positive")
        self.scale = float(scale)
        self.zero_point = int(zero_point)

    def apply(self, data: np.ndarray) -> np.ndarray:
        return ((data.astype(np.float32) - self.zero_point) * self.scale).astype(
            np.float32
        )


class Pad(RestructuringOp):
    """Zero-pad the trailing axis to a multiple (accelerator tile sizes)."""

    name = "pad"
    ops_per_element = 0.25
    branch_fraction = 0.06

    def __init__(self, multiple: int):
        if multiple <= 0:
            raise ValueError("pad multiple must be positive")
        self.multiple = multiple

    def apply(self, data: np.ndarray) -> np.ndarray:
        last = data.shape[-1]
        target = ((last + self.multiple - 1) // self.multiple) * self.multiple
        if target == last:
            return data.copy()
        pad_width = [(0, 0)] * (data.ndim - 1) + [(0, target - last)]
        return np.pad(data, pad_width)


class Crop(RestructuringOp):
    """Take a leading slice of the trailing axis."""

    name = "crop"
    ops_per_element = 0.25

    def __init__(self, length: int):
        if length <= 0:
            raise ValueError("crop length must be positive")
        self.length = length

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.shape[-1] < self.length:
            raise ValueError(
                f"crop length {self.length} exceeds axis size {data.shape[-1]}"
            )
        return np.ascontiguousarray(data[..., : self.length])


class InterleaveToPlanar(RestructuringOp):
    """HWC → CHW: interleaved channels to planar layout (image pipes)."""

    name = "interleave-to-planar"
    ops_per_element = 0.5
    gather_fraction = 0.7

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim < 3:
            raise ValueError("expected at least 3 dims (H, W, C)")
        return np.ascontiguousarray(np.moveaxis(data, -1, -3))


class PlanarToInterleave(RestructuringOp):
    """CHW → HWC: planar channels back to interleaved layout."""

    name = "planar-to-interleave"
    ops_per_element = 0.5
    gather_fraction = 0.7

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim < 3:
            raise ValueError("expected at least 3 dims (C, H, W)")
        return np.ascontiguousarray(np.moveaxis(data, -3, -1))
