"""Table-domain restructuring: the Database Hash Join data-motion step.

The decompression accelerator emits a row-major byte image of a table
(fixed-width records); the hash-join accelerator wants columnar int32
arrays, hash-partitioned on the join key. Row→column pivot, dictionary
encoding, and radix partitioning are the restructuring ops.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .base import RestructuringOp

__all__ = ["RowsToColumnar", "DictionaryEncode", "HashPartition", "fnv1a32"]


def fnv1a32(values: np.ndarray) -> np.ndarray:
    """Vectorized FNV-1a over int32 values (4 bytes each)."""
    h = np.full(values.shape, 2166136261, dtype=np.uint64)
    v = values.astype(np.uint32).astype(np.uint64)
    for shift in (0, 8, 16, 24):
        byte = (v >> shift) & 0xFF
        h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
    return h.astype(np.uint32)


class RowsToColumnar(RestructuringOp):
    """(n_rows, row_bytes) uint8 rows → (n_cols, n_rows) int32 columns.

    Each row holds ``n_cols`` little-endian int32 fields. The pivot is a
    strided gather — the classic row-store to column-store shuffle.
    """

    name = "rows-to-columnar"
    ops_per_element = 1.5
    # The pivot reads rows sequentially and writes one stream per column;
    # a handful of write streams still prefetch, so only a modest share
    # of accesses behave as gathers.
    gather_fraction = 0.25

    def __init__(self, n_cols: int):
        if n_cols <= 0:
            raise ValueError("n_cols must be positive")
        self.n_cols = n_cols

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.dtype != np.uint8 or data.ndim != 2:
            raise ValueError("expected (n_rows, row_bytes) uint8")
        row_bytes = data.shape[1]
        if row_bytes != self.n_cols * 4:
            raise ValueError(
                f"row width {row_bytes} does not hold {self.n_cols} int32 fields"
            )
        rows = data.reshape(data.shape[0], self.n_cols, 4)
        as_int = rows.view("<i4").reshape(data.shape[0], self.n_cols)
        return np.ascontiguousarray(as_int.T)


class DictionaryEncode(RestructuringOp):
    """Encode one column's values as indices into its sorted unique set.

    Input ``(n_cols, n_rows)`` int32 columnar block; output has the coded
    column substituted. The dictionary itself is retained on the op.
    """

    name = "dictionary-encode"
    ops_per_element = 6.0  # hash/probe per value
    gather_fraction = 0.3
    branch_fraction = 0.08
    vectorizable_fraction = 0.7

    def __init__(self, column: int):
        if column < 0:
            raise ValueError("column index must be non-negative")
        self.column = column
        self.dictionary: np.ndarray = np.empty(0, dtype=np.int32)

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim != 2 or data.dtype != np.int32:
            raise ValueError("expected (n_cols, n_rows) int32 columnar block")
        if self.column >= data.shape[0]:
            raise ValueError(f"column {self.column} out of range")
        out = data.copy()
        values = data[self.column]
        self.dictionary, codes = np.unique(values, return_inverse=True)
        out[self.column] = codes.astype(np.int32)
        return out


class HashPartition(RestructuringOp):
    """Order rows by hash(key) % n_partitions (radix partitioning).

    Produces a columnar block whose rows are grouped by partition, with
    partition boundaries recorded on the op — the layout a partitioned
    hash join consumes.
    """

    name = "hash-partition"
    ops_per_element = 8.0  # hash + scatter
    # Radix partitioning writes one sequential stream per partition.
    gather_fraction = 0.2
    branch_fraction = 0.06

    def __init__(self, key_column: int, n_partitions: int):
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        if key_column < 0:
            raise ValueError("key_column must be non-negative")
        self.key_column = key_column
        self.n_partitions = n_partitions
        self.boundaries: List[int] = []

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim != 2 or data.dtype != np.int32:
            raise ValueError("expected (n_cols, n_rows) int32 columnar block")
        if self.key_column >= data.shape[0]:
            raise ValueError(f"key column {self.key_column} out of range")
        keys = data[self.key_column]
        partitions = fnv1a32(keys) % np.uint32(self.n_partitions)
        order = np.argsort(partitions, kind="stable")
        counts = np.bincount(partitions, minlength=self.n_partitions)
        self.boundaries = np.concatenate([[0], np.cumsum(counts)]).tolist()
        return np.ascontiguousarray(data[:, order])
