"""Signal-domain restructuring: the Brain Stimulation data-motion step.

The FFT accelerator transforms multi-channel electromagnetic recordings;
the reinforcement-learning accelerator consumes compact normalized
observations. In between: per-channel band-power extraction, z-score
normalization, and observation assembly.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .base import RestructuringOp

__all__ = ["SpatialFilter", "BandPower", "ZScoreNormalize",
           "ObservationAssembly", "EEG_BANDS"]

# Canonical EEG frequency bands (Hz).
EEG_BANDS: Tuple[Tuple[str, float, float], ...] = (
    ("delta", 0.5, 4.0),
    ("theta", 4.0, 8.0),
    ("alpha", 8.0, 13.0),
    ("beta", 13.0, 30.0),
    ("gamma", 30.0, 100.0),
)


class SpatialFilter(RestructuringOp):
    """Apply a channels x channels spatial filter to per-bin spectra.

    Standard EEG/EM preprocessing (common spatial patterns / surface
    Laplacian): each output channel is a weighted combination of all
    input channels, evaluated per frequency bin — a dense per-bin matrix
    product, the compute-heavy heart of this data-motion step.
    """

    name = "spatial-filter"
    branch_fraction = 0.02
    gather_fraction = 0.35  # neighbour-channel reads against bin-major layout

    NEIGHBOURS = 8  # surface-Laplacian support (8-neighbour montage)

    def __init__(self, n_channels: int, seed: int = 5):
        if n_channels <= 0:
            raise ValueError("n_channels must be positive")
        self.n_channels = n_channels
        rng = np.random.default_rng(seed)
        # Sparse Laplacian: each channel re-referenced against its
        # electrode neighbourhood (identity minus neighbour average).
        weights = np.eye(n_channels, dtype=np.float32)
        support = min(self.NEIGHBOURS, n_channels - 1)
        for channel in range(n_channels):
            neighbours = rng.choice(
                [c for c in range(n_channels) if c != channel],
                size=support, replace=False,
            )
            weights[channel, neighbours] = -0.5 / support
        self.weights = weights

    @property
    def ops_per_element(self) -> float:  # type: ignore[override]
        # Each output element reduces its sparse neighbourhood (complex:
        # 4 real ops per complex MAC).
        return 4.0 * (min(self.NEIGHBOURS, self.n_channels - 1) + 1)

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim != 2 or data.shape[0] != self.n_channels:
            raise ValueError(
                f"expected ({self.n_channels}, bins) spectra, got {data.shape}"
            )
        return (self.weights @ data).astype(data.dtype)


class BandPower(RestructuringOp):
    """(channels, bins) complex spectra → (channels, bands) mean power.

    Reduces each channel's spectrum into canonical band energies — a
    reduction with strided bin selection.
    """

    name = "band-power"
    ops_per_element = 0.0  # set dynamically below (depends on bins/band)
    gather_fraction = 0.3

    def __init__(self, sample_rate: float, bands=EEG_BANDS):
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        self.sample_rate = sample_rate
        self.bands = tuple(bands)
        self._bins_per_band = 64.0  # refined on first apply

    @property
    def ops_per_element(self) -> float:  # type: ignore[override]
        # Each output band element reduces ~bins_per_band inputs: |x|^2 + add.
        return 4.0 * self._bins_per_band

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim != 2 or not np.iscomplexobj(data):
            raise ValueError("expected (channels, bins) complex spectra")
        channels, bins = data.shape
        freqs = np.linspace(0.0, self.sample_rate / 2.0, bins)
        power = data.real.astype(np.float32) ** 2 + data.imag.astype(np.float32) ** 2
        out = np.zeros((channels, len(self.bands)), dtype=np.float32)
        total_bins = 0
        for band_index, (_name, lo, hi) in enumerate(self.bands):
            mask = (freqs >= lo) & (freqs < hi)
            total_bins += int(mask.sum())
            if mask.any():
                out[:, band_index] = power[:, mask].mean(axis=1)
        self._bins_per_band = max(1.0, total_bins / len(self.bands))
        return out


class ZScoreNormalize(RestructuringOp):
    """Normalize features to zero mean / unit variance along the last axis."""

    name = "zscore-normalize"
    ops_per_element = 6.0  # two passes + divide

    def apply(self, data: np.ndarray) -> np.ndarray:
        x = data.astype(np.float32)
        mean = x.mean(axis=-1, keepdims=True)
        std = x.std(axis=-1, keepdims=True)
        return ((x - mean) / np.maximum(std, 1e-6)).astype(np.float32)


class ObservationAssembly(RestructuringOp):
    """(channels, bands) features → flat fp32 RL observation vector."""

    name = "observation-assembly"
    ops_per_element = 0.5

    def apply(self, data: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(data, dtype=np.float32).reshape(1, -1)
