"""Image-domain restructuring: the Video Surveillance data-motion step.

The video-decode accelerator emits NV12 (YUV 4:2:0) frames; the object-
detection accelerator consumes square, planar, normalized fp32 tensors.
Between them: chroma upsampling + color conversion, bilinear resize,
layout change, normalization — all implemented from scratch on numpy.
"""

from __future__ import annotations

import numpy as np

from .base import RestructuringOp

__all__ = ["Nv12ToRgb", "ResizeBilinear", "ImageToTensor"]

# BT.601 full-range YUV -> RGB coefficients.
_YUV2RGB = np.array(
    [
        [1.0, 0.0, 1.402],
        [1.0, -0.344136, -0.714136],
        [1.0, 1.772, 0.0],
    ],
    dtype=np.float32,
)


class Nv12ToRgb(RestructuringOp):
    """NV12 (Y plane + interleaved half-res UV plane) → HWC uint8 RGB.

    Input layout: a ``(3*H//2, W)`` uint8 array — the standard NV12
    memory image a video decoder writes (H rows of Y, then H/2 rows of
    interleaved UV).
    """

    name = "nv12-to-rgb"
    ops_per_element = 6.0  # upsample + 3x3 matrix per pixel
    gather_fraction = 0.2  # chroma reads are strided but local
    branch_fraction = 0.05

    def __init__(self, height: int, width: int):
        if height % 2 or width % 2:
            raise ValueError("NV12 requires even dimensions")
        self.height = height
        self.width = width

    def apply(self, data: np.ndarray) -> np.ndarray:
        h, w = self.height, self.width
        expected = (3 * h // 2, w)
        if data.shape != expected or data.dtype != np.uint8:
            raise ValueError(
                f"expected uint8 NV12 of shape {expected}, got "
                f"{data.dtype} {data.shape}"
            )
        y = data[:h].astype(np.float32)
        uv = data[h:].reshape(h // 2, w // 2, 2).astype(np.float32)
        # Nearest-neighbour chroma upsampling (2x in both axes).
        u = np.repeat(np.repeat(uv[..., 0], 2, axis=0), 2, axis=1) - 128.0
        v = np.repeat(np.repeat(uv[..., 1], 2, axis=0), 2, axis=1) - 128.0
        yuv = np.stack([y, u, v], axis=-1)
        rgb = yuv @ _YUV2RGB.T
        return np.clip(rgb, 0.0, 255.0).astype(np.uint8)


class ResizeBilinear(RestructuringOp):
    """Bilinear resize of an HWC image to the detector's input size."""

    name = "resize-bilinear"
    ops_per_element = 6.0  # 4 taps, separable weights precomputed per axis
    gather_fraction = 0.4

    def __init__(self, out_height: int, out_width: int):
        if out_height <= 0 or out_width <= 0:
            raise ValueError("output dimensions must be positive")
        self.out_height = out_height
        self.out_width = out_width
        self.name = f"resize-bilinear-{out_height}x{out_width}"

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim != 3:
            raise ValueError(f"expected HWC image, got shape {data.shape}")
        in_h, in_w, channels = data.shape
        out_h, out_w = self.out_height, self.out_width
        # Align-corners=False sampling grid.
        ys = (np.arange(out_h) + 0.5) * in_h / out_h - 0.5
        xs = (np.arange(out_w) + 0.5) * in_w / out_w - 0.5
        y0 = np.clip(np.floor(ys).astype(int), 0, in_h - 1)
        x0 = np.clip(np.floor(xs).astype(int), 0, in_w - 1)
        y1 = np.clip(y0 + 1, 0, in_h - 1)
        x1 = np.clip(x0 + 1, 0, in_w - 1)
        wy = np.clip(ys - y0, 0.0, 1.0)[:, None, None]
        wx = np.clip(xs - x0, 0.0, 1.0)[None, :, None]
        img = data.astype(np.float32)
        top = img[y0][:, x0] * (1 - wx) + img[y0][:, x1] * wx
        bottom = img[y1][:, x0] * (1 - wx) + img[y1][:, x1] * wx
        out = top * (1 - wy) + bottom * wy
        if np.issubdtype(data.dtype, np.integer):
            return np.clip(np.round(out), 0, 255).astype(data.dtype)
        return out.astype(data.dtype)


class ImageToTensor(RestructuringOp):
    """HWC uint8 → normalized planar CHW fp32 detector input."""

    name = "image-to-tensor"
    ops_per_element = 3.0  # convert + scale + store planar
    gather_fraction = 0.3  # three planar write streams still prefetch

    def __init__(self, mean: float = 127.5, scale: float = 127.5):
        if scale == 0:
            raise ValueError("scale must be nonzero")
        self.mean = float(mean)
        self.scale = float(scale)

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.ndim != 3:
            raise ValueError(f"expected HWC image, got shape {data.shape}")
        normalized = (data.astype(np.float32) - self.mean) / self.scale
        return np.ascontiguousarray(np.moveaxis(normalized, -1, 0))
