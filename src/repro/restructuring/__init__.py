"""Data-restructuring operation library (functional + work profiles)."""

from .audio import (
    FeatureFlatten,
    LogCompress,
    MelScale,
    PowerSpectrum,
    SpectrogramAssembly,
    hz_to_mel,
    mel_filterbank,
    mel_to_hz,
)
from .base import RestructuringOp, RestructuringPipeline
from .image import ImageToTensor, Nv12ToRgb, ResizeBilinear
from .ops import (
    Crop,
    Dequantize,
    InterleaveToPlanar,
    Normalize,
    Pad,
    PlanarToInterleave,
    Quantize,
    Reshape,
    TransposeOp,
    Typecast,
)
from .signal import (
    EEG_BANDS,
    BandPower,
    ObservationAssembly,
    SpatialFilter,
    ZScoreNormalize,
)
from .table import DictionaryEncode, HashPartition, RowsToColumnar, fnv1a32
from .text import BytesToRecords, RecordsToBytes, TokenizeForNER

__all__ = [
    "RestructuringOp",
    "RestructuringPipeline",
    "FeatureFlatten",
    "LogCompress",
    "MelScale",
    "PowerSpectrum",
    "SpectrogramAssembly",
    "hz_to_mel",
    "mel_filterbank",
    "mel_to_hz",
    "ImageToTensor",
    "Nv12ToRgb",
    "ResizeBilinear",
    "Crop",
    "Dequantize",
    "InterleaveToPlanar",
    "Normalize",
    "Pad",
    "PlanarToInterleave",
    "Quantize",
    "Reshape",
    "TransposeOp",
    "Typecast",
    "EEG_BANDS",
    "BandPower",
    "SpatialFilter",
    "ObservationAssembly",
    "ZScoreNormalize",
    "DictionaryEncode",
    "HashPartition",
    "RowsToColumnar",
    "fnv1a32",
    "BytesToRecords",
    "RecordsToBytes",
    "TokenizeForNER",
]
