"""Text-domain restructuring: Personal Information Redaction data motion.

Between the AES-GCM decrypt accelerator and the regex accelerator, the
plaintext byte stream must become fixed-width records the regex engine
scans (with record padding and a validity mask); between regex/redaction
and the NER Transformer (Fig. 16 extension), text must be tokenized into
padded int32 id sequences ("reshaping and typecasting").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import RestructuringOp

__all__ = ["BytesToRecords", "RecordsToBytes", "TokenizeForNER"]

PAD_BYTE = 0x00


class BytesToRecords(RestructuringOp):
    """Byte stream → (n_records, record_len) fixed-width uint8 records.

    Records split on newline (0x0A); long lines wrap across records. The
    per-byte scan is branchy, scalar-flavoured work — exactly the kind of
    restructuring the paper observes performing poorly on CPUs.
    """

    name = "bytes-to-records"
    ops_per_element = 12.0  # scan, classify, wrap, copy, pad per byte
    branch_fraction = 0.12
    mispredict_rate = 0.06
    vectorizable_fraction = 0.85  # SIMD newline scan + prefix-sum scatter
    gather_fraction = 0.4  # scattered record writes across the output image

    def __init__(self, record_len: int):
        if record_len <= 0:
            raise ValueError("record_len must be positive")
        self.record_len = record_len

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.dtype != np.uint8 or data.ndim != 1:
            raise ValueError("expected a flat uint8 byte stream")
        stream = data.tobytes()
        records = []
        for line in stream.split(b"\n"):
            if not line:
                continue
            for start in range(0, len(line), self.record_len):
                chunk = line[start : start + self.record_len]
                records.append(chunk.ljust(self.record_len, bytes([PAD_BYTE])))
        if not records:
            records.append(bytes(self.record_len))
        return np.frombuffer(b"".join(records), dtype=np.uint8).reshape(
            len(records), self.record_len
        )


class RecordsToBytes(RestructuringOp):
    """(n_records, record_len) records → a flat byte stream (pads dropped)."""

    name = "records-to-bytes"
    ops_per_element = 1.5
    branch_fraction = 0.1
    vectorizable_fraction = 0.7

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.dtype != np.uint8 or data.ndim != 2:
            raise ValueError("expected (n_records, record_len) uint8")
        pieces = []
        for row in data:
            raw = row.tobytes().rstrip(bytes([PAD_BYTE]))
            if raw:
                pieces.append(raw)
        joined = b"\n".join(pieces)
        return np.frombuffer(joined, dtype=np.uint8).copy()


class TokenizeForNER(RestructuringOp):
    """Byte stream → (n_seqs, seq_len) int32 token ids for the NER model.

    Whitespace tokenization with a deterministic hash vocabulary — the
    restructuring is the interesting part (scan, bucket, pad, typecast),
    not the linguistics.
    """

    name = "tokenize-for-ner"
    ops_per_element = 4.0
    branch_fraction = 0.12
    mispredict_rate = 0.06
    vectorizable_fraction = 0.5
    gather_fraction = 0.2

    CLS_ID = 1
    SEP_ID = 2
    PAD_ID = 0
    FIRST_WORD_ID = 3

    def __init__(self, seq_len: int, vocab_size: int = 30_000):
        if seq_len < 3:
            raise ValueError("seq_len must allow CLS/SEP plus content")
        if vocab_size <= self.FIRST_WORD_ID:
            raise ValueError("vocab_size too small")
        self.seq_len = seq_len
        self.vocab_size = vocab_size

    def token_id(self, word: bytes) -> int:
        """Deterministic FNV-1a hash of the word into the vocab range."""
        h = 2166136261
        for byte in word:
            h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
        span = self.vocab_size - self.FIRST_WORD_ID
        return self.FIRST_WORD_ID + (h % span)

    def apply(self, data: np.ndarray) -> np.ndarray:
        if data.dtype != np.uint8 or data.ndim != 1:
            raise ValueError("expected a flat uint8 byte stream")
        words = data.tobytes().split()
        content = self.seq_len - 2  # room for CLS and SEP
        sequences = []
        for start in range(0, max(len(words), 1), content):
            chunk = words[start : start + content]
            ids = [self.CLS_ID] + [self.token_id(w) for w in chunk] + [self.SEP_ID]
            ids += [self.PAD_ID] * (self.seq_len - len(ids))
            sequences.append(ids)
        return np.asarray(sequences, dtype=np.int32)
