"""Reproduction of "Data Motion Acceleration: Chaining Cross-Domain
Multi Accelerators" (HPCA 2024).

Subpackages
-----------
``repro.sim``
    Discrete-event simulation engine (processes, resources, tracing).
``repro.interconnect``
    PCIe substrate: links, switches, fabric routing, DMA engines.
``repro.cpu``
    Host CPU models: cache behaviour, top-down analysis, DES device.
``repro.drx``
    The Data Restructuring Accelerator: ISA, assembler, functional
    simulator, compiler, timing model, data queues.
``repro.accelerators``
    Domain accelerators with real from-scratch kernels (FFT, SVM,
    AES-GCM, regex NFA, LZ77, hash join, video codec, CNN, PPO, BERT).
``repro.restructuring``
    The data-restructuring operation library (functional + profiled).
``repro.runtime``
    OpenCL-style host API, driver/interrupt models, PCIe enumeration.
``repro.core``
    DMX itself: application chains, DRX placements, the system model,
    collective communication.
``repro.energy``
    RAPL-style system energy accounting.
``repro.workloads``
    The five Table I benchmarks plus the PIR+NER extension.
``repro.serve``
    Online multi-tenant serving: stochastic arrivals, admission
    control, SLO percentiles, latency-vs-load knee sweeps.
``repro.eval``
    One experiment driver per paper table/figure
    (``python -m repro.eval``).
"""

from .profiles import WorkProfile, scale_profile

__version__ = "0.1.0"

__all__ = ["WorkProfile", "scale_profile", "__version__"]
