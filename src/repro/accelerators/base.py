"""Accelerator base classes: functional kernels + device timing model.

Every domain accelerator in the modeled system pairs:

* a **functional kernel** — a real from-scratch implementation (the AES
  core really decrypts, the FFT really transforms) so the inter-kernel
  restructuring operates on genuine data; and
* a **device model** — an occupancy (one kernel in flight per card, like
  the paper's FPGA instances) and a latency model. Following the paper's
  methodology, per-kernel latency is expressed relative to the measured
  CPU time: the paper reports a 6.5x geomean per-accelerator speedup,
  with per-kernel factors varying (Video Surveillance's codec gains
  least). We carry a per-kernel ``speedup_vs_cpu`` calibration factor and
  an ASIC frequency-scaling knob (250 MHz FPGA → 1 GHz ASIC).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

import numpy as np

from ..profiles import WorkProfile
from ..sim import Server, Simulator

__all__ = ["AcceleratorSpec", "Accelerator", "AcceleratorDevice"]


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static description of one accelerator card.

    Parameters
    ----------
    name, domain:
        Identity ("fft-accel", domain "signal-processing").
    speedup_vs_cpu:
        Measured kernel speedup over the host CPU implementation — the
        paper's per-accelerator scaling factor (geomean 6.5x across the
        benchmark suite).
    implementation:
        "hls" | "rtl" | "hard-ip" — mirrors Table I's accelerator sources.
    fpga_clock_hz / asic_clock_hz:
        The paper synthesizes at 250 MHz on the VU9P and scales to a
        1 GHz ASIC; the ratio scales kernel latency when ``asic=True``.
    power_w:
        Card power while the kernel runs (energy model input).
    """

    name: str
    domain: str
    speedup_vs_cpu: float
    implementation: str = "hls"
    fpga_clock_hz: float = 250e6
    asic_clock_hz: float = 1e9
    power_w: float = 30.0

    def __post_init__(self) -> None:
        if self.speedup_vs_cpu <= 0:
            raise ValueError(f"{self.name}: speedup must be positive")
        if self.implementation not in ("hls", "rtl", "hard-ip"):
            raise ValueError(f"{self.name}: unknown implementation kind")
        if self.fpga_clock_hz <= 0 or self.asic_clock_hz <= 0:
            raise ValueError(f"{self.name}: clocks must be positive")
        if self.power_w <= 0:
            raise ValueError(f"{self.name}: power must be positive")

    @property
    def asic_scaling(self) -> float:
        """Latency divisor when deployed as an ASIC instead of FPGA."""
        return self.asic_clock_hz / self.fpga_clock_hz


class Accelerator(abc.ABC):
    """A domain kernel with functional and timing contracts.

    Subclasses implement :meth:`run` (real computation) and
    :meth:`work_profile` (the kernel's work character for the CPU-side
    reference cost — the All-CPU configuration runs the same profile on
    the host model).
    """

    spec: AcceleratorSpec

    @abc.abstractmethod
    def run(self, data: Any) -> Any:
        """Execute the kernel functionally on real data."""

    @abc.abstractmethod
    def work_profile(self, data: Any) -> WorkProfile:
        """Characterize one invocation's work for the cost models."""

    def __call__(self, data: Any) -> Any:
        return self.run(data)


class AcceleratorDevice:
    """DES occupancy model of one accelerator card.

    A card executes one enqueued kernel at a time (command-queue
    semantics); concurrent requests from pipelined invocations queue.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: AcceleratorSpec,
        kernel_time_s: float,
        name: Optional[str] = None,
    ):
        if kernel_time_s < 0:
            raise ValueError("negative kernel time")
        self.sim = sim
        self.spec = spec
        self.kernel_time_s = kernel_time_s
        self.name = name or spec.name
        self._server = Server(sim, capacity=1, name=self.name)
        self.invocations = 0
        self.busy_seconds = 0.0

    def execute(self) -> Generator:
        """Process: run one kernel invocation on the card."""
        start = self.sim.now
        yield from self._server.transfer(self.kernel_time_s)
        self.invocations += 1
        self.busy_seconds += self.kernel_time_s
        return self.sim.now - start

    def utilization(self) -> float:
        return self._server.utilization()
