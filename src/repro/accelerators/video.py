"""Video decode accelerator (Video Surveillance kernel 1).

A from-scratch intra-frame block codec in the JPEG/H.26x spirit: each
NV12 plane is split into 8x8 blocks, DCT-II transformed, quantized, and
zigzag + run-length entropy coded. The encoder exists to generate
realistic bitstreams; the decoder is the accelerated kernel (the paper
uses the VT1 instance's hard-IP decoder, hence ``implementation="hard-ip"``
and the lowest per-kernel speedup in the suite — the reason Video
Surveillance gains least from DMX in Fig. 11).
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from ..profiles import WorkProfile
from .base import Accelerator, AcceleratorSpec

__all__ = ["encode_frame", "decode_frame", "VideoDecodeAccelerator",
           "BitstreamError"]

BLOCK = 8
_MAGIC = b"DMXV"


class BitstreamError(ValueError):
    """Raised when a video bitstream is malformed."""


def _dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II basis matrix."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    basis = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    basis[0] *= 1.0 / np.sqrt(2.0)
    return (basis * np.sqrt(2.0 / n)).astype(np.float64)


_DCT = _dct_matrix()
_QUANT = np.clip(
    (np.add.outer(np.arange(BLOCK), np.arange(BLOCK)) * 3 + 8), 1, 120
).astype(np.float64)


def _zigzag_order(n: int = BLOCK) -> np.ndarray:
    order = sorted(
        ((i, j) for i in range(n) for j in range(n)),
        key=lambda p: (p[0] + p[1], p[1] if (p[0] + p[1]) % 2 else p[0]),
    )
    return np.array([i * n + j for i, j in order], dtype=np.int64)


_ZIGZAG = _zigzag_order()
_UNZIGZAG = np.argsort(_ZIGZAG)


def _blockify(plane: np.ndarray) -> np.ndarray:
    h, w = plane.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError(f"plane {plane.shape} not multiple of {BLOCK}")
    return (
        plane.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(-1, BLOCK, BLOCK)
    )


def _unblockify(blocks: np.ndarray, h: int, w: int) -> np.ndarray:
    return (
        blocks.reshape(h // BLOCK, w // BLOCK, BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(h, w)
    )


def _rle_encode(coeffs: np.ndarray) -> bytes:
    """Run-length encode zigzagged int16 coefficients (zero runs)."""
    out = bytearray()
    flat = coeffs.astype(np.int16)
    for block in flat:
        run = 0
        for value in block:
            if value == 0:
                run += 1
                if run == 255:
                    out += struct.pack("<Bh", 255, 0)
                    run = 0
            else:
                out += struct.pack("<Bh", run, int(value))
                run = 0
        out += struct.pack("<Bh", 254, 0)  # end-of-block marker
    return bytes(out)


def _rle_decode(stream: bytes, n_blocks: int) -> np.ndarray:
    blocks = np.zeros((n_blocks, BLOCK * BLOCK), dtype=np.int16)
    pos = 0
    block_index = 0
    coeff_index = 0
    n = len(stream)
    while block_index < n_blocks:
        if pos + 3 > n:
            raise BitstreamError("truncated RLE stream")
        run, value = struct.unpack_from("<Bh", stream, pos)
        pos += 3
        if run == 254:
            block_index += 1
            coeff_index = 0
            continue
        if run == 255:
            coeff_index += 255
            continue
        coeff_index += run
        if coeff_index >= BLOCK * BLOCK:
            raise BitstreamError("coefficient index out of range")
        blocks[block_index, coeff_index] = value
        coeff_index += 1
    return blocks, pos


def _encode_plane(plane: np.ndarray) -> bytes:
    blocks = _blockify(plane.astype(np.float64) - 128.0)
    coeffs = _DCT @ blocks @ _DCT.T
    quantized = np.round(coeffs / _QUANT).astype(np.int16)
    zigzagged = quantized.reshape(-1, BLOCK * BLOCK)[:, _ZIGZAG]
    return _rle_encode(zigzagged)


def _decode_plane(stream: bytes, h: int, w: int) -> Tuple[np.ndarray, int]:
    n_blocks = (h // BLOCK) * (w // BLOCK)
    zigzagged, consumed = _rle_decode(stream, n_blocks)
    quantized = zigzagged[:, _UNZIGZAG].reshape(-1, BLOCK, BLOCK)
    coeffs = quantized.astype(np.float64) * _QUANT
    blocks = _DCT.T @ coeffs @ _DCT
    plane = _unblockify(blocks, h, w) + 128.0
    return np.clip(np.round(plane), 0, 255).astype(np.uint8), consumed


def encode_frame(nv12: np.ndarray, height: int, width: int) -> bytes:
    """Encode an NV12 frame image ``(3*H//2, W)`` into a bitstream."""
    if nv12.shape != (3 * height // 2, width) or nv12.dtype != np.uint8:
        raise ValueError("expected uint8 NV12 frame image")
    y_plane = nv12[:height]
    uv_rows = nv12[height:]
    header = _MAGIC + struct.pack("<HH", height, width)
    y_stream = _encode_plane(y_plane)
    uv_stream = _encode_plane(uv_rows)
    return header + struct.pack("<I", len(y_stream)) + y_stream + uv_stream


def decode_frame(bitstream: bytes) -> np.ndarray:
    """Decode a bitstream back to the NV12 frame image."""
    if bitstream[:4] != _MAGIC:
        raise BitstreamError("bad magic")
    height, width = struct.unpack_from("<HH", bitstream, 4)
    (y_len,) = struct.unpack_from("<I", bitstream, 8)
    body = bitstream[12:]
    y_plane, consumed = _decode_plane(body[:y_len], height, width)
    if consumed != y_len:
        raise BitstreamError("luma stream length mismatch")
    uv_rows, _ = _decode_plane(body[y_len:], height // 2, width)
    return np.vstack([y_plane, uv_rows])


class VideoDecodeAccelerator(Accelerator):
    """Decode kernel: bitstream → NV12 frame for the detection pipeline."""

    def __init__(self, speedup_vs_cpu: float = 3.0):
        self.spec = AcceleratorSpec(
            name="video-decode-accel",
            domain="video-coding",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="hard-ip",  # AWS VT1 hard IP per Sec. VI
        )

    def run(self, bitstream: bytes) -> np.ndarray:
        return decode_frame(bytes(bitstream))

    def work_profile(self, bitstream: bytes) -> WorkProfile:
        frame = decode_frame(bytes(bitstream))
        pixels = int(frame.size)
        return WorkProfile(
            name=self.spec.name,
            bytes_in=len(bitstream),
            bytes_out=pixels,
            elements=pixels,
            ops_per_element=24.0,  # IDCT + dequant per sample
            element_size=1,
            branch_fraction=0.14,  # entropy decode is branchy
            mispredict_rate=0.07,
            vectorizable_fraction=0.7,
            gather_fraction=0.3,
        )
