"""Decompression accelerator (Database Hash Join kernel 1).

A from-scratch LZ77 codec in the DEFLATE spirit: a 32 KB sliding window,
greedy longest-match search over hash chains, and a byte-oriented token
stream (flag-run framing). The compressor exists to *generate* realistic
compressed table inputs; the decompressor is the accelerated kernel.

Token format (little-endian):

* literal run:  ``0x00 | len:u16 | bytes...``
* match:        ``0x01 | distance:u16 | length:u16``

This is a real, self-consistent codec — round-trip and corruption tests
live in the test suite.
"""

from __future__ import annotations

import struct
from typing import Dict, List

import numpy as np

from ..profiles import WorkProfile
from .base import Accelerator, AcceleratorSpec

__all__ = ["lz77_compress", "lz77_decompress", "DecompressionAccelerator",
           "CorruptStreamError"]

WINDOW_SIZE = 32 * 1024
MIN_MATCH = 4
MAX_MATCH = 0xFFFF
_LITERAL = 0x00
_MATCH = 0x01


class CorruptStreamError(ValueError):
    """Raised when the compressed stream is malformed."""


def lz77_compress(data: bytes, max_chain: int = 16) -> bytes:
    """Compress with greedy LZ77 over hash chains.

    ``max_chain`` bounds the match-candidate search per position
    (compression ratio vs. speed knob).
    """
    n = len(data)
    out: List[bytes] = []
    literals = bytearray()

    def flush_literals() -> None:
        start = 0
        while start < len(literals):
            chunk = literals[start : start + 0xFFFF]
            out.append(struct.pack("<BH", _LITERAL, len(chunk)))
            out.append(bytes(chunk))
            start += len(chunk)
        literals.clear()

    heads: Dict[bytes, List[int]] = {}
    pos = 0
    while pos < n:
        best_len = 0
        best_dist = 0
        if pos + MIN_MATCH <= n:
            key = data[pos : pos + MIN_MATCH]
            candidates = heads.get(key, ())
            for candidate in reversed(candidates[-max_chain:]):
                if pos - candidate > WINDOW_SIZE:
                    continue
                length = MIN_MATCH
                limit = min(n - pos, MAX_MATCH)
                while (
                    length < limit
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = pos - candidate
        if best_len >= MIN_MATCH:
            flush_literals()
            out.append(struct.pack("<BHH", _MATCH, best_dist, best_len))
            end = pos + best_len
            while pos < end:
                if pos + MIN_MATCH <= n:
                    heads.setdefault(data[pos : pos + MIN_MATCH], []).append(pos)
                pos += 1
        else:
            literals.append(data[pos])
            if pos + MIN_MATCH <= n:
                heads.setdefault(data[pos : pos + MIN_MATCH], []).append(pos)
            pos += 1
    flush_literals()
    return b"".join(out)


def lz77_decompress(stream: bytes) -> bytes:
    """Inverse of :func:`lz77_compress`; validates the token stream."""
    out = bytearray()
    pos = 0
    n = len(stream)
    while pos < n:
        tag = stream[pos]
        if tag == _LITERAL:
            if pos + 3 > n:
                raise CorruptStreamError("truncated literal header")
            (length,) = struct.unpack_from("<H", stream, pos + 1)
            pos += 3
            if pos + length > n:
                raise CorruptStreamError("truncated literal payload")
            out += stream[pos : pos + length]
            pos += length
        elif tag == _MATCH:
            if pos + 5 > n:
                raise CorruptStreamError("truncated match token")
            distance, length = struct.unpack_from("<HH", stream, pos + 1)
            pos += 5
            if distance == 0 or distance > len(out):
                raise CorruptStreamError(
                    f"match distance {distance} exceeds output ({len(out)} bytes)"
                )
            start = len(out) - distance
            # Overlapping copies are legal (run-length style): copy bytewise.
            for i in range(length):
                out.append(out[start + i])
        else:
            raise CorruptStreamError(f"unknown token tag {tag:#x} at {pos}")
    return bytes(out)


class DecompressionAccelerator(Accelerator):
    """Decompress kernel: inflate a compressed table image.

    ``run`` returns the decompressed bytes as a uint8 array for the
    row→column restructuring step.
    """

    def __init__(self, speedup_vs_cpu: float = 10.0):
        self.spec = AcceleratorSpec(
            name="decompress-accel",
            domain="compression",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="hls",  # Vitis GZip decompress per Sec. VI
        )

    def run(self, compressed: bytes) -> np.ndarray:
        plain = lz77_decompress(bytes(compressed))
        return np.frombuffer(plain, dtype=np.uint8).copy()

    def work_profile(self, compressed: bytes) -> WorkProfile:
        out_bytes = len(lz77_decompress(bytes(compressed)))
        return WorkProfile(
            name=self.spec.name,
            bytes_in=len(compressed),
            bytes_out=out_bytes,
            elements=out_bytes,
            ops_per_element=8.0,  # token decode + copy per output byte
            element_size=1,
            branch_fraction=0.18,
            mispredict_rate=0.07,
            vectorizable_fraction=0.4,  # serial dependence on history
            gather_fraction=0.4,
        )
