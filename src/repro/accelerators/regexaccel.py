"""Regular-expression accelerator (Personal Info Redaction kernel 2).

A from-scratch regex engine: a recursive-descent parser builds a syntax
tree, Thompson's construction produces an NFA, and a breadth-first NFA
simulation scans input in O(text x states) without backtracking — the
same streaming-automaton style a hardware regex engine implements.

Supported syntax: literals, ``.``, character classes ``[a-z0-9_]`` (with
negation ``[^...]``), escapes ``\\d \\w \\s``, quantifiers ``* + ?`` and
``{m,n}``, grouping ``( )``, and alternation ``|``.

The PII patterns (SSN, email, phone) plus the redaction pass live in
:class:`RegexAccelerator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..profiles import WorkProfile
from .base import Accelerator, AcceleratorSpec

__all__ = ["Regex", "RegexAccelerator", "PII_PATTERNS"]


# -- parsing ---------------------------------------------------------------

_DIGITS = frozenset("0123456789")
_WORD = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)
_SPACE = frozenset(" \t\r\n\f\v")
_ALL = frozenset(chr(c) for c in range(1, 128))


@dataclass(frozen=True)
class _Node:
    kind: str  # "char" | "concat" | "alt" | "star" | "plus" | "opt" | "repeat"
    chars: FrozenSet[str] = frozenset()
    children: Tuple["_Node", ...] = ()
    low: int = 0
    high: int = 0


class _Parser:
    """Recursive-descent parser for the supported regex grammar."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    def parse(self) -> _Node:
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise ValueError(
                f"unexpected {self.pattern[self.pos]!r} at {self.pos}"
            )
        return node

    def _peek(self) -> Optional[str]:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def _take(self) -> str:
        char = self.pattern[self.pos]
        self.pos += 1
        return char

    def _alternation(self) -> _Node:
        branches = [self._concat()]
        while self._peek() == "|":
            self._take()
            branches.append(self._concat())
        if len(branches) == 1:
            return branches[0]
        return _Node("alt", children=tuple(branches))

    def _concat(self) -> _Node:
        parts: List[_Node] = []
        while self._peek() not in (None, "|", ")"):
            parts.append(self._quantified())
        if not parts:
            return _Node("concat", children=())
        if len(parts) == 1:
            return parts[0]
        return _Node("concat", children=tuple(parts))

    def _quantified(self) -> _Node:
        atom = self._atom()
        while True:
            nxt = self._peek()
            if nxt == "*":
                self._take()
                atom = _Node("star", children=(atom,))
            elif nxt == "+":
                self._take()
                atom = _Node("plus", children=(atom,))
            elif nxt == "?":
                self._take()
                atom = _Node("opt", children=(atom,))
            elif nxt == "{":
                self._take()
                atom = self._bounded(atom)
            else:
                return atom

    def _bounded(self, atom: _Node) -> _Node:
        digits = ""
        while self._peek() and self._peek().isdigit():
            digits += self._take()
        if not digits:
            raise ValueError(f"bad repetition at {self.pos}")
        low = int(digits)
        high = low
        if self._peek() == ",":
            self._take()
            digits = ""
            while self._peek() and self._peek().isdigit():
                digits += self._take()
            if not digits:
                raise ValueError(f"open-ended {{m,}} not supported at {self.pos}")
            high = int(digits)
        if self._take() != "}":
            raise ValueError(f"unterminated repetition at {self.pos}")
        if high < low:
            raise ValueError(f"repetition {{{low},{high}}} has high < low")
        return _Node("repeat", children=(atom,), low=low, high=high)

    def _atom(self) -> _Node:
        char = self._take()
        if char == "(":
            node = self._alternation()
            if self._peek() != ")":
                raise ValueError(f"unbalanced group at {self.pos}")
            self._take()
            return node
        if char == "[":
            return self._char_class()
        if char == ".":
            return _Node("char", chars=_ALL)
        if char == "\\":
            return _Node("char", chars=self._escape(self._take()))
        if char in "*+?{}|)":
            raise ValueError(f"unexpected {char!r} at {self.pos - 1}")
        return _Node("char", chars=frozenset(char))

    @staticmethod
    def _escape(char: str) -> FrozenSet[str]:
        table: Dict[str, FrozenSet[str]] = {
            "d": _DIGITS,
            "w": _WORD,
            "s": _SPACE,
        }
        if char in table:
            return table[char]
        return frozenset(char)  # escaped literal (\., \\, \-, ...)

    def _char_class(self) -> _Node:
        negated = False
        if self._peek() == "^":
            self._take()
            negated = True
        members: Set[str] = set()
        while self._peek() not in (None, "]"):
            char = self._take()
            if char == "\\":
                members |= self._escape(self._take())
                continue
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) and (
                self.pattern[self.pos + 1] != "]"
            ):
                self._take()  # consume '-'
                end = self._take()
                if ord(end) < ord(char):
                    raise ValueError(f"bad range {char}-{end}")
                members |= {chr(c) for c in range(ord(char), ord(end) + 1)}
            else:
                members.add(char)
        if self._peek() != "]":
            raise ValueError("unterminated character class")
        self._take()
        chars = frozenset(members)
        if negated:
            chars = _ALL - chars
        return _Node("char", chars=chars)


# -- Thompson construction + simulation --------------------------------------


class Regex:
    """Compiled regex: Thompson NFA with breadth-first simulation."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        tree = _Parser(pattern).parse()
        # States: index -> list of (chars|None, target). None = epsilon.
        self._edges: List[List[Tuple[Optional[FrozenSet[str]], int]]] = []
        start, accept = self._build(tree)
        self.start = start
        self.accept = accept

    # NFA building -----------------------------------------------------------

    def _new_state(self) -> int:
        self._edges.append([])
        return len(self._edges) - 1

    def _link(self, src: int, chars: Optional[FrozenSet[str]], dst: int) -> None:
        self._edges[src].append((chars, dst))

    def _build(self, node: _Node) -> Tuple[int, int]:
        if node.kind == "char":
            s, a = self._new_state(), self._new_state()
            self._link(s, node.chars, a)
            return s, a
        if node.kind == "concat":
            if not node.children:
                s = self._new_state()
                return s, s
            start, accept = self._build(node.children[0])
            for child in node.children[1:]:
                nxt_start, nxt_accept = self._build(child)
                self._link(accept, None, nxt_start)
                accept = nxt_accept
            return start, accept
        if node.kind == "alt":
            s, a = self._new_state(), self._new_state()
            for child in node.children:
                c_start, c_accept = self._build(child)
                self._link(s, None, c_start)
                self._link(c_accept, None, a)
            return s, a
        if node.kind == "star":
            s, a = self._new_state(), self._new_state()
            c_start, c_accept = self._build(node.children[0])
            self._link(s, None, c_start)
            self._link(s, None, a)
            self._link(c_accept, None, c_start)
            self._link(c_accept, None, a)
            return s, a
        if node.kind == "plus":
            c_start, c_accept = self._build(node.children[0])
            a = self._new_state()
            self._link(c_accept, None, c_start)
            self._link(c_accept, None, a)
            return c_start, a
        if node.kind == "opt":
            s, a = self._new_state(), self._new_state()
            c_start, c_accept = self._build(node.children[0])
            self._link(s, None, c_start)
            self._link(c_accept, None, a)
            self._link(s, None, a)
            return s, a
        if node.kind == "repeat":
            # Expand {m,n} into m copies + (n-m) optional copies.
            s = self._new_state()
            accept = s
            for _ in range(node.low):
                c_start, c_accept = self._build(node.children[0])
                self._link(accept, None, c_start)
                accept = c_accept
            for _ in range(node.high - node.low):
                opt = _Node("opt", children=node.children)
                c_start, c_accept = self._build(opt)
                self._link(accept, None, c_start)
                accept = c_accept
            return s, accept
        raise AssertionError(f"unknown node kind {node.kind}")  # pragma: no cover

    # simulation ---------------------------------------------------------------

    def _closure(self, states: Set[int]) -> Set[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for chars, target in self._edges[state]:
                if chars is None and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    @property
    def n_states(self) -> int:
        return len(self._edges)

    def fullmatch(self, text: str) -> bool:
        """True when the whole ``text`` matches the pattern."""
        current = self._closure({self.start})
        for char in text:
            nxt: Set[int] = set()
            for state in current:
                for chars, target in self._edges[state]:
                    if chars is not None and char in chars:
                        nxt.add(target)
            if not nxt:
                return False
            current = self._closure(nxt)
        return self.accept in current

    def finditer(self, text: str) -> List[Tuple[int, int]]:
        """Leftmost-longest non-overlapping match spans in ``text``."""
        spans: List[Tuple[int, int]] = []
        pos = 0
        n = len(text)
        while pos < n:
            current = self._closure({self.start})
            best_end = -1
            offset = pos
            while True:
                if self.accept in current:
                    best_end = offset
                if offset >= n:
                    break
                char = text[offset]
                nxt: Set[int] = set()
                for state in current:
                    for chars, target in self._edges[state]:
                        if chars is not None and char in chars:
                            nxt.add(target)
                if not nxt:
                    break
                current = self._closure(nxt)
                offset += 1
            if best_end > pos:
                spans.append((pos, best_end))
                pos = best_end
            else:
                pos += 1
        return spans


# PII patterns the redaction benchmark scans for (Table I's regex kernel).
PII_PATTERNS: Dict[str, str] = {
    "ssn": r"\d{3}-\d{2}-\d{4}",
    "email": r"[\w.]+@[\w]+(\.[\w]+)+",
    "phone": r"\(\d{3}\) \d{3}-\d{4}|\d{3}-\d{3}-\d{4}",
    "credit_card": r"\d{4} \d{4} \d{4} \d{4}",
}


class RegexAccelerator(Accelerator):
    """PII detection + redaction over fixed-width text records.

    ``run`` takes the ``(n_records, record_len)`` uint8 array the
    restructuring step produced and returns a same-shape array with every
    PII match overwritten by ``#``.
    """

    REDACT_BYTE = ord("#")

    def __init__(self, patterns: Optional[Dict[str, str]] = None,
                 speedup_vs_cpu: float = 3.6):
        self.patterns = {
            name: Regex(pattern)
            for name, pattern in (patterns or PII_PATTERNS).items()
        }
        self.spec = AcceleratorSpec(
            name="regex-accel",
            domain="text-analytics",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="hls",  # Vitis data-analytics regex per Sec. VI
        )
        self.matches_found = 0

    def run(self, records: np.ndarray) -> np.ndarray:
        if records.ndim != 2 or records.dtype != np.uint8:
            raise ValueError("expected (n_records, record_len) uint8")
        out = records.copy()
        for row_index in range(out.shape[0]):
            text = out[row_index].tobytes().decode("latin-1")
            for regex in self.patterns.values():
                for start, end in regex.finditer(text):
                    out[row_index, start:end] = self.REDACT_BYTE
                    self.matches_found += 1
        return out

    def work_profile(self, records: np.ndarray) -> WorkProfile:
        nbytes = int(records.nbytes)
        total_states = sum(r.n_states for r in self.patterns.values())
        return WorkProfile(
            name=self.spec.name,
            bytes_in=nbytes,
            bytes_out=nbytes,
            elements=nbytes,
            # Bit-parallel NFA scan: cost per byte scales with the state
            # count divided by the machine word width.
            ops_per_element=0.05 * total_states,
            element_size=1,
            branch_fraction=0.15,
            mispredict_rate=0.08,
            vectorizable_fraction=0.3,
            gather_fraction=0.2,
        )
