"""Hash-join accelerator (Database Hash Join kernel 2).

A from-scratch equi-join over columnar int32 tables: build an
open-addressing hash table (linear probing) on the smaller input's key
column, probe with the larger input, emit matched row pairs. Duplicate
keys on the build side are chained through an overflow list, so the join
is a true relational join (all matching pairs), validated against a
nested-loop oracle in tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..profiles import WorkProfile
from ..restructuring.table import fnv1a32
from .base import Accelerator, AcceleratorSpec

__all__ = ["hash_join", "HashJoinAccelerator"]

_EMPTY = -1


def _build_table(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Open-addressing table: returns (slot_keys, slot_rows, next_rows).

    ``next_rows[i]`` chains additional build rows sharing row ``i``'s key.
    """
    n = len(keys)
    capacity = max(8, 1 << int(np.ceil(np.log2(max(1, n * 2)))))
    slot_keys = np.full(capacity, _EMPTY, dtype=np.int64)
    slot_rows = np.full(capacity, _EMPTY, dtype=np.int64)
    next_rows = np.full(n, _EMPTY, dtype=np.int64)
    hashes = fnv1a32(keys) % np.uint32(capacity)
    for row in range(n):
        slot = int(hashes[row])
        key = int(keys[row])
        while True:
            if slot_keys[slot] == _EMPTY:
                slot_keys[slot] = key
                slot_rows[slot] = row
                break
            if slot_keys[slot] == key:
                # Prepend to the duplicate chain.
                next_rows[row] = slot_rows[slot]
                slot_rows[slot] = row
                break
            slot = (slot + 1) % capacity
    return slot_keys, slot_rows, next_rows


def hash_join(
    build: np.ndarray, probe: np.ndarray, build_key: int = 0, probe_key: int = 0
) -> np.ndarray:
    """Equi-join two columnar blocks ``(n_cols, n_rows)`` on key columns.

    Returns a columnar result: the probe row's columns followed by the
    build row's non-key columns, one output row per matching pair.
    """
    for name, table in (("build", build), ("probe", probe)):
        if table.ndim != 2 or table.dtype != np.int32:
            raise ValueError(f"{name} must be a (n_cols, n_rows) int32 block")
    if build_key >= build.shape[0] or probe_key >= probe.shape[0]:
        raise ValueError("key column out of range")

    slot_keys, slot_rows, next_rows = _build_table(build[build_key])
    capacity = len(slot_keys)
    probe_keys = probe[probe_key]
    hashes = fnv1a32(probe_keys) % np.uint32(capacity)

    probe_matches = []
    build_matches = []
    for probe_row in range(probe.shape[1]):
        slot = int(hashes[probe_row])
        key = int(probe_keys[probe_row])
        while slot_keys[slot] != _EMPTY:
            if slot_keys[slot] == key:
                build_row = int(slot_rows[slot])
                while build_row != _EMPTY:
                    probe_matches.append(probe_row)
                    build_matches.append(build_row)
                    build_row = int(next_rows[build_row])
                break
            slot = (slot + 1) % capacity

    build_payload_cols = [c for c in range(build.shape[0]) if c != build_key]
    n_out_cols = probe.shape[0] + len(build_payload_cols)
    result = np.empty((n_out_cols, len(probe_matches)), dtype=np.int32)
    probe_index = np.asarray(probe_matches, dtype=np.int64)
    build_index = np.asarray(build_matches, dtype=np.int64)
    for col in range(probe.shape[0]):
        result[col] = probe[col, probe_index] if len(probe_index) else []
    for out_col, col in enumerate(build_payload_cols):
        result[probe.shape[0] + out_col] = (
            build[col, build_index] if len(build_index) else []
        )
    return result


class HashJoinAccelerator(Accelerator):
    """Join kernel over a pair of columnar tables.

    ``run`` takes ``(build_block, probe_block)`` and key column indices
    fixed at construction.
    """

    def __init__(self, build_key: int = 0, probe_key: int = 0,
                 speedup_vs_cpu: float = 11.0):
        self.build_key = build_key
        self.probe_key = probe_key
        self.spec = AcceleratorSpec(
            name="hash-join-accel",
            domain="database",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="hls",  # Vitis database library per Sec. VI
        )

    def run(self, tables: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        build, probe = tables
        return hash_join(build, probe, self.build_key, self.probe_key)

    def work_profile(self, tables: Tuple[np.ndarray, np.ndarray]) -> WorkProfile:
        build, probe = tables
        rows = build.shape[1] + probe.shape[1]
        return WorkProfile(
            name=self.spec.name,
            bytes_in=int(build.nbytes + probe.nbytes),
            bytes_out=int(probe.nbytes),  # approximate output volume
            elements=rows,
            ops_per_element=12.0,  # hash + probe walk per row
            element_size=4,
            branch_fraction=0.12,
            mispredict_rate=0.06,
            vectorizable_fraction=0.5,
            gather_fraction=0.7,  # hash-table probes are random access
        )
