"""Transformer NER accelerator (Fig. 16's third kernel).

A from-scratch BERT-style encoder: token + position embeddings, multi-
head self-attention, layer normalization, GELU MLP blocks, and a token-
classification head over BIO-style entity labels. Used by the extended
Personal Info Redaction benchmark ("a Transformer model fine-tuned for
Named Entity Recognition"). Deterministic weights; the reproduction
target is the pipeline structure and cost, not F1.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..profiles import WorkProfile
from .base import Accelerator, AcceleratorSpec

__all__ = ["layer_norm", "gelu", "softmax", "TransformerEncoder", "NERAccelerator",
           "NER_LABELS"]

NER_LABELS: Tuple[str, ...] = ("O", "B-PER", "I-PER", "B-ORG", "I-ORG", "B-LOC",
                               "I-LOC", "B-MISC", "I-MISC")


def layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Layer normalization over the last axis (no learned affine)."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class TransformerEncoder:
    """A small BERT-style encoder for token classification."""

    def __init__(
        self,
        vocab_size: int = 30_000,
        d_model: int = 128,
        n_heads: int = 4,
        n_layers: int = 2,
        d_ff: int = 512,
        max_len: int = 512,
        n_labels: int = len(NER_LABELS),
        seed: int = 99,
    ):
        if d_model % n_heads:
            raise ValueError("d_model must be divisible by n_heads")
        rng = np.random.default_rng(seed)

        def mat(n_in, n_out, scale=None):
            scale = scale or np.sqrt(1.0 / n_in)
            return (rng.standard_normal((n_in, n_out)) * scale).astype(np.float32)

        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        self.embedding = mat(vocab_size, d_model, scale=0.02)
        self.positions = mat(max_len, d_model, scale=0.02)
        self.layers = []
        for _ in range(n_layers):
            self.layers.append(
                {
                    "wq": mat(d_model, d_model),
                    "wk": mat(d_model, d_model),
                    "wv": mat(d_model, d_model),
                    "wo": mat(d_model, d_model),
                    "w_ff1": mat(d_model, d_ff),
                    "w_ff2": mat(d_ff, d_model),
                }
            )
        self.classifier = mat(d_model, n_labels)

    def _attention(self, x: np.ndarray, layer: dict,
                   mask: np.ndarray) -> np.ndarray:
        seq, _ = x.shape
        q = (x @ layer["wq"]).reshape(seq, self.n_heads, self.head_dim)
        k = (x @ layer["wk"]).reshape(seq, self.n_heads, self.head_dim)
        v = (x @ layer["wv"]).reshape(seq, self.n_heads, self.head_dim)
        scores = np.einsum("qhd,khd->hqk", q, k) / np.sqrt(self.head_dim)
        scores = np.where(mask[None, None, :], scores, -1e9)
        attn = softmax(scores, axis=-1)
        mixed = np.einsum("hqk,khd->qhd", attn, v).reshape(seq, self.d_model)
        return mixed @ layer["wo"]

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Label logits: (n_seqs, seq_len, n_labels). Padding id is 0."""
        if token_ids.ndim != 2:
            raise ValueError("expected (n_seqs, seq_len) token ids")
        n_seqs, seq_len = token_ids.shape
        if seq_len > self.positions.shape[0]:
            raise ValueError(f"sequence length {seq_len} exceeds max_len")
        logits = np.empty(
            (n_seqs, seq_len, self.classifier.shape[1]), dtype=np.float32
        )
        for s in range(n_seqs):
            ids = token_ids[s]
            mask = ids != 0
            x = self.embedding[ids] + self.positions[:seq_len]
            for layer in self.layers:
                x = layer_norm(x + self._attention(x, layer, mask))
                ff = gelu(x @ layer["w_ff1"]) @ layer["w_ff2"]
                x = layer_norm(x + ff)
            logits[s] = x @ self.classifier
        return logits

    def predict(self, token_ids: np.ndarray) -> np.ndarray:
        """Per-token label indices (padding predicted as label 0)."""
        logits = self.forward(token_ids)
        labels = logits.argmax(axis=-1).astype(np.int32)
        labels[token_ids == 0] = 0
        return labels


class NERAccelerator(Accelerator):
    """Token-classification kernel over tokenized text sequences."""

    def __init__(self, encoder: TransformerEncoder = None,
                 speedup_vs_cpu: float = 8.5):
        self.encoder = encoder or TransformerEncoder()
        self.spec = AcceleratorSpec(
            name="ner-accel",
            domain="machine-learning",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="rtl",  # open-source BERT implementation per Sec. VII-C
        )

    def run(self, token_ids: np.ndarray) -> np.ndarray:
        return self.encoder.predict(token_ids)

    def work_profile(self, token_ids: np.ndarray) -> WorkProfile:
        n_seqs, seq_len = token_ids.shape
        d = self.encoder.d_model
        d_ff = self.encoder.layers[0]["w_ff1"].shape[1]
        per_layer = (
            4 * seq_len * d * d  # qkv + output projections
            + 2 * seq_len * seq_len * d  # attention scores + mix
            + 2 * seq_len * d * d_ff  # MLP
        )
        macs = n_seqs * len(self.encoder.layers) * per_layer
        out_elems = n_seqs * seq_len
        return WorkProfile(
            name=self.spec.name,
            bytes_in=int(token_ids.nbytes),
            bytes_out=int(out_elems * 4),
            elements=int(out_elems),
            ops_per_element=2.0 * macs / max(1, out_elems),
            element_size=4,
            branch_fraction=0.02,
            vectorizable_fraction=1.0,
        )
