"""Support vector machine accelerator (Sound Detection kernel 2).

A from-scratch linear multi-class SVM: one-vs-rest hinge-loss classifiers
trained with subgradient descent (Pegasos-style). The inference kernel —
what the accelerator card runs — is a dense matrix-vector product plus
argmax over class scores.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..profiles import WorkProfile
from .base import Accelerator, AcceleratorSpec

__all__ = ["LinearSVM", "SVMAccelerator"]


class LinearSVM:
    """One-vs-rest linear SVM with Pegasos subgradient training."""

    def __init__(self, n_classes: int, n_features: int, reg: float = 1e-4):
        if n_classes < 2:
            raise ValueError("need at least two classes")
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self.n_classes = n_classes
        self.n_features = n_features
        self.reg = reg
        self.weights = np.zeros((n_classes, n_features), dtype=np.float32)
        self.bias = np.zeros(n_classes, dtype=np.float32)

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 20,
        seed: int = 0,
    ) -> "LinearSVM":
        """Train with the Pegasos schedule (eta_t = 1 / (reg * t))."""
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        if features.shape[1] != self.n_features:
            raise ValueError("feature dimension mismatch")
        rng = np.random.default_rng(seed)
        x = features.astype(np.float32)
        t = 0
        for _epoch in range(epochs):
            order = rng.permutation(len(x))
            for index in order:
                t += 1
                eta = 1.0 / (self.reg * t)
                sample = x[index]
                for cls in range(self.n_classes):
                    target = 1.0 if labels[index] == cls else -1.0
                    margin = target * (self.weights[cls] @ sample + self.bias[cls])
                    self.weights[cls] *= 1.0 - eta * self.reg
                    if margin < 1.0:
                        self.weights[cls] += eta * target * sample
                        self.bias[cls] += eta * target * 0.1
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Class scores, shape ``(n_samples, n_classes)``."""
        if features.ndim != 2 or features.shape[1] != self.n_features:
            raise ValueError(f"expected (n, {self.n_features}) features")
        return features.astype(np.float32) @ self.weights.T + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.decision_function(features).argmax(axis=1)


class SVMAccelerator(Accelerator):
    """Inference kernel: classify flattened mel-spectrogram features.

    If no trained model is supplied, deterministic pseudo-random weights
    stand in (the timing and data-motion behaviour — the reproduction
    target — are unchanged by the weight values).
    """

    def __init__(
        self,
        n_classes: int = 10,
        n_features: int = 7936,
        model: Optional[LinearSVM] = None,
        speedup_vs_cpu: float = 7.0,
    ):
        self.model = model or self._default_model(n_classes, n_features)
        self.spec = AcceleratorSpec(
            name="svm-accel",
            domain="machine-learning",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="hls",  # Vitis SVM library per Sec. VI
        )

    @staticmethod
    def _default_model(n_classes: int, n_features: int) -> LinearSVM:
        model = LinearSVM(n_classes, n_features)
        rng = np.random.default_rng(42)
        model.weights = rng.standard_normal(
            (n_classes, n_features)
        ).astype(np.float32) * 0.01
        model.bias = rng.standard_normal(n_classes).astype(np.float32) * 0.01
        return model

    def run(self, features: np.ndarray) -> np.ndarray:
        return self.model.predict(features)

    def work_profile(self, features: np.ndarray) -> WorkProfile:
        n_samples = features.shape[0]
        n_classes, n_features = self.model.weights.shape
        total_ops = 2.0 * n_samples * n_classes * n_features
        return WorkProfile(
            name=self.spec.name,
            bytes_in=int(features.nbytes),
            bytes_out=int(n_samples * 8),
            elements=int(n_samples * n_classes),
            ops_per_element=total_ops / max(1, n_samples * n_classes),
            element_size=4,
            branch_fraction=0.02,
            vectorizable_fraction=1.0,
        )
