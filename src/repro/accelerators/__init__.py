"""Domain accelerators: functional kernels + device timing models."""

from .base import Accelerator, AcceleratorDevice, AcceleratorSpec
from .compression import (
    CorruptStreamError,
    DecompressionAccelerator,
    lz77_compress,
    lz77_decompress,
)
from .crypto import (
    AES128,
    AesGcmAccelerator,
    AuthenticationError,
    aes_gcm_decrypt,
    aes_gcm_encrypt,
)
from .detection import (
    Detection,
    ObjectDetectionAccelerator,
    conv2d,
    max_pool2d,
    relu,
)
from .fftaccel import (
    FFTAccelerator,
    fft_radix2,
    frame_signal,
    hann_window,
    rfft_frames,
)
from .hashjoin import HashJoinAccelerator, hash_join
from .ner import (
    NER_LABELS,
    NERAccelerator,
    TransformerEncoder,
    gelu,
    layer_norm,
    softmax,
)
from .regexaccel import PII_PATTERNS, Regex, RegexAccelerator
from .rl import MLPPolicy, RLPolicyAccelerator, ppo_update
from .svm import LinearSVM, SVMAccelerator
from .video import (
    BitstreamError,
    VideoDecodeAccelerator,
    decode_frame,
    encode_frame,
)

__all__ = [
    "Accelerator",
    "AcceleratorDevice",
    "AcceleratorSpec",
    "CorruptStreamError",
    "DecompressionAccelerator",
    "lz77_compress",
    "lz77_decompress",
    "AES128",
    "AesGcmAccelerator",
    "AuthenticationError",
    "aes_gcm_decrypt",
    "aes_gcm_encrypt",
    "Detection",
    "ObjectDetectionAccelerator",
    "conv2d",
    "max_pool2d",
    "relu",
    "FFTAccelerator",
    "fft_radix2",
    "frame_signal",
    "hann_window",
    "rfft_frames",
    "HashJoinAccelerator",
    "hash_join",
    "NER_LABELS",
    "NERAccelerator",
    "TransformerEncoder",
    "gelu",
    "layer_norm",
    "softmax",
    "PII_PATTERNS",
    "Regex",
    "RegexAccelerator",
    "MLPPolicy",
    "RLPolicyAccelerator",
    "ppo_update",
    "LinearSVM",
    "SVMAccelerator",
    "BitstreamError",
    "VideoDecodeAccelerator",
    "decode_frame",
    "encode_frame",
]
