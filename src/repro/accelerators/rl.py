"""Reinforcement-learning accelerator (Brain Stimulation kernel 2).

A from-scratch PPO-style actor-critic: a two-layer tanh MLP policy head
(Gaussian action distribution) and value head, plus a clipped-surrogate
PPO update implemented in numpy for completeness. The accelerated kernel
is inference — mapping a brain-state observation to a stimulation action
(the paper's proximal policy optimization kernel on the open-source RTL
DNN accelerator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..profiles import WorkProfile
from .base import Accelerator, AcceleratorSpec

__all__ = ["MLPPolicy", "ppo_update", "RLPolicyAccelerator"]


class MLPPolicy:
    """Two-hidden-layer tanh MLP with policy (mean) and value heads."""

    def __init__(self, obs_dim: int, action_dim: int, hidden: int = 64,
                 seed: int = 7):
        if obs_dim <= 0 or action_dim <= 0 or hidden <= 0:
            raise ValueError("dimensions must be positive")
        rng = np.random.default_rng(seed)

        def layer(n_in, n_out):
            scale = np.sqrt(2.0 / n_in)
            return (
                (rng.standard_normal((n_in, n_out)) * scale).astype(np.float32),
                np.zeros(n_out, dtype=np.float32),
            )

        self.obs_dim = obs_dim
        self.action_dim = action_dim
        self.w1, self.b1 = layer(obs_dim, hidden)
        self.w2, self.b2 = layer(hidden, hidden)
        self.w_pi, self.b_pi = layer(hidden, action_dim)
        self.w_v, self.b_v = layer(hidden, 1)
        self.log_std = np.full(action_dim, -0.5, dtype=np.float32)

    def _trunk(self, obs: np.ndarray) -> np.ndarray:
        h = np.tanh(obs.astype(np.float32) @ self.w1 + self.b1)
        return np.tanh(h @ self.w2 + self.b2)

    def forward(self, obs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (action_mean, value) for a batch of observations."""
        if obs.ndim != 2 or obs.shape[1] != self.obs_dim:
            raise ValueError(f"expected (n, {self.obs_dim}) observations")
        h = self._trunk(obs)
        mean = h @ self.w_pi + self.b_pi
        value = (h @ self.w_v + self.b_v).reshape(-1)
        return mean, value

    def act(self, obs: np.ndarray, deterministic: bool = True,
            rng: np.random.Generator = None) -> np.ndarray:
        """Select actions; stochastic sampling uses the Gaussian head."""
        mean, _value = self.forward(obs)
        if deterministic:
            return mean
        rng = rng or np.random.default_rng()
        std = np.exp(self.log_std)
        return mean + rng.standard_normal(mean.shape).astype(np.float32) * std

    def log_prob(self, obs: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """Gaussian log-density of ``actions`` under the current policy."""
        mean, _ = self.forward(obs)
        std = np.exp(self.log_std)
        z = (actions - mean) / std
        return (-0.5 * z**2 - self.log_std - 0.5 * np.log(2 * np.pi)).sum(axis=1)


def ppo_update(
    policy: MLPPolicy,
    obs: np.ndarray,
    actions: np.ndarray,
    advantages: np.ndarray,
    old_log_probs: np.ndarray,
    clip: float = 0.2,
    lr: float = 1e-3,
) -> Dict[str, float]:
    """One clipped-surrogate PPO step on the policy mean head.

    Gradients are computed analytically for the final linear layer (the
    trunk is treated as a fixed feature extractor — sufficient for the
    reproduction's purposes and keeps the math exact).
    """
    if not 0 < clip < 1:
        raise ValueError("clip must be in (0, 1)")
    mean, _ = policy.forward(obs)
    std = np.exp(policy.log_std)
    z = (actions - mean) / std
    log_probs = (-0.5 * z**2 - policy.log_std - 0.5 * np.log(2 * np.pi)).sum(axis=1)
    ratio = np.exp(log_probs - old_log_probs)
    clipped = np.clip(ratio, 1 - clip, 1 + clip)
    objective = np.minimum(ratio * advantages, clipped * advantages)

    # d(objective)/d(mean) for unclipped, advantage-weighted samples.
    active = (ratio * advantages <= clipped * advantages) | np.isclose(
        ratio, clipped
    )
    grad_mean = (
        (active * ratio * advantages)[:, None] * (z / std)
    )  # (n, action_dim)
    features = policy._trunk(obs)  # (n, hidden)
    grad_w = features.T @ grad_mean / len(obs)
    grad_b = grad_mean.mean(axis=0)
    policy.w_pi += lr * grad_w.astype(np.float32)
    policy.b_pi += lr * grad_b.astype(np.float32)
    return {
        "objective": float(objective.mean()),
        "ratio_mean": float(ratio.mean()),
        "clip_fraction": float((ratio != clipped).mean()),
    }


class RLPolicyAccelerator(Accelerator):
    """Inference kernel: brain-state observation → stimulation action."""

    def __init__(self, obs_dim: int = 320, action_dim: int = 8,
                 speedup_vs_cpu: float = 7.0):
        self.policy = MLPPolicy(obs_dim, action_dim)
        self.spec = AcceleratorSpec(
            name="rl-policy-accel",
            domain="machine-learning",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="rtl",  # open-source PPO accelerator per Sec. VI
        )

    def run(self, observations: np.ndarray) -> np.ndarray:
        return self.policy.act(observations, deterministic=True)

    def work_profile(self, observations: np.ndarray) -> WorkProfile:
        n = observations.shape[0]
        hidden = self.policy.w1.shape[1]
        macs = n * (
            self.policy.obs_dim * hidden
            + hidden * hidden
            + hidden * (self.policy.action_dim + 1)
        )
        out_elems = n * self.policy.action_dim
        return WorkProfile(
            name=self.spec.name,
            bytes_in=int(observations.nbytes),
            bytes_out=int(out_elems * 4),
            elements=int(out_elems),
            ops_per_element=2.0 * macs / max(1, out_elems),
            element_size=4,
            branch_fraction=0.02,
            vectorizable_fraction=1.0,
        )
