"""AES-GCM decryption accelerator (Personal Info Redaction kernel 1).

A from-scratch AES-128 core (S-box, key expansion, rounds) in CTR mode
plus GHASH authentication over GF(2^128) — i.e., real AES-GCM, validated
against NIST test vectors in the test suite. The accelerator kernel
decrypts and authenticates privacy-sensitive text blobs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..profiles import WorkProfile
from .base import Accelerator, AcceleratorSpec

__all__ = ["AES128", "aes_gcm_encrypt", "aes_gcm_decrypt", "AesGcmAccelerator",
           "AuthenticationError"]


class AuthenticationError(ValueError):
    """Raised when a GCM tag fails to verify."""


def _build_sbox() -> Tuple[np.ndarray, np.ndarray]:
    """Construct the AES S-box from GF(2^8) inversion + affine transform."""

    def gf_mul(a: int, b: int) -> int:
        result = 0
        for _ in range(8):
            if b & 1:
                result ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return result

    # Multiplicative inverses via exponentiation (a^254 = a^-1 in GF(2^8)).
    def gf_inv(a: int) -> int:
        if a == 0:
            return 0
        result, base, exp = 1, a, 254
        while exp:
            if exp & 1:
                result = gf_mul(result, base)
            base = gf_mul(base, base)
            exp >>= 1
        return result

    sbox = np.zeros(256, dtype=np.uint8)
    for value in range(256):
        inv = gf_inv(value)
        x = inv
        out = 0x63
        for shift in (0, 1, 2, 3, 4):
            rotated = ((x << shift) | (x >> (8 - shift))) & 0xFF
            out ^= rotated
        # Affine transform: b ^ rotl1(b) ^ rotl2(b) ^ rotl3(b) ^ rotl4(b) ^ 0x63.
        sbox[value] = out
    inv_sbox = np.zeros(256, dtype=np.uint8)
    inv_sbox[sbox] = np.arange(256, dtype=np.uint8)
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()
_RCON = np.array(
    [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36], dtype=np.uint8
)


def _xtime(col: np.ndarray) -> np.ndarray:
    """Multiply GF(2^8) elements by x (i.e., 2)."""
    shifted = (col.astype(np.uint16) << 1) & 0xFF
    return (shifted ^ np.where(col & 0x80, 0x1B, 0)).astype(np.uint8)


class AES128:
    """AES-128 block cipher operating on batches of 16-byte blocks."""

    ROUNDS = 10

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self.round_keys = self._expand_key(np.frombuffer(key, dtype=np.uint8))

    @staticmethod
    def _expand_key(key: np.ndarray) -> np.ndarray:
        words = [key[i * 4 : (i + 1) * 4].copy() for i in range(4)]
        for i in range(4, 4 * (AES128.ROUNDS + 1)):
            temp = words[i - 1].copy()
            if i % 4 == 0:
                temp = np.roll(temp, -1)
                temp = SBOX[temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append(words[i - 4] ^ temp)
        return np.stack(
            [
                np.concatenate(words[r * 4 : (r + 1) * 4])
                for r in range(AES128.ROUNDS + 1)
            ]
        )

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt ``(n, 16)`` uint8 blocks (vectorized across the batch)."""
        if blocks.ndim != 2 or blocks.shape[1] != 16 or blocks.dtype != np.uint8:
            raise ValueError("expected (n, 16) uint8 blocks")
        # State layout: column-major 4x4 per AES spec.
        state = blocks.reshape(-1, 4, 4).transpose(0, 2, 1).copy()
        state ^= self.round_keys[0].reshape(4, 4).T
        for round_index in range(1, self.ROUNDS + 1):
            state = SBOX[state]  # SubBytes
            for row in range(1, 4):  # ShiftRows
                state[:, row] = np.roll(state[:, row], -row, axis=-1)
            if round_index != self.ROUNDS:  # MixColumns
                a = state
                t = a[:, 0] ^ a[:, 1] ^ a[:, 2] ^ a[:, 3]
                new = np.empty_like(a)
                for row in range(4):
                    nxt = (row + 1) % 4
                    new[:, row] = a[:, row] ^ t ^ _xtime(a[:, row] ^ a[:, nxt])
                state = new
            state ^= self.round_keys[round_index].reshape(4, 4).T
        return state.transpose(0, 2, 1).reshape(-1, 16)


def _inc32(counter: np.ndarray) -> np.ndarray:
    """Increment the last 32 bits of a 16-byte counter block."""
    out = counter.copy()
    value = int.from_bytes(out[12:].tobytes(), "big")
    out[12:] = np.frombuffer(
        ((value + 1) & 0xFFFFFFFF).to_bytes(4, "big"), dtype=np.uint8
    )
    return out


def _ghash_mul(x: int, y: int) -> int:
    """Multiply in GF(2^128) with the GCM polynomial (bit-reflected)."""
    r = 0xE1000000000000000000000000000000
    z = 0
    v = y
    for bit in range(128):
        if (x >> (127 - bit)) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ r
        else:
            v >>= 1
    return z


def _ghash(h: int, aad: bytes, ciphertext: bytes) -> int:
    def blocks_of(data: bytes):
        for i in range(0, len(data), 16):
            yield data[i : i + 16].ljust(16, b"\x00")

    y = 0
    for block in blocks_of(aad):
        y = _ghash_mul(y ^ int.from_bytes(block, "big"), h)
    for block in blocks_of(ciphertext):
        y = _ghash_mul(y ^ int.from_bytes(block, "big"), h)
    lengths = (len(aad) * 8).to_bytes(8, "big") + (len(ciphertext) * 8).to_bytes(
        8, "big"
    )
    return _ghash_mul(y ^ int.from_bytes(lengths, "big"), h)


def _ctr_keystream(cipher: AES128, j0: np.ndarray, nbytes: int) -> np.ndarray:
    n_blocks = (nbytes + 15) // 16
    counters = np.zeros((n_blocks, 16), dtype=np.uint8)
    counter = j0
    for i in range(n_blocks):
        counter = _inc32(counter)
        counters[i] = counter
    return cipher.encrypt_blocks(counters).reshape(-1)[:nbytes]


def aes_gcm_encrypt(
    key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b""
) -> Tuple[bytes, bytes]:
    """AES-128-GCM encrypt; returns ``(ciphertext, tag16)``."""
    if len(iv) != 12:
        raise ValueError("GCM IV must be 12 bytes")
    cipher = AES128(key)
    h = int.from_bytes(
        cipher.encrypt_blocks(np.zeros((1, 16), dtype=np.uint8))[0].tobytes(), "big"
    )
    j0 = np.frombuffer(iv + b"\x00\x00\x00\x01", dtype=np.uint8).copy()
    keystream = _ctr_keystream(cipher, j0, len(plaintext))
    ciphertext = (
        np.frombuffer(plaintext, dtype=np.uint8) ^ keystream
    ).tobytes()
    s = _ghash(h, aad, ciphertext)
    tag_mask = cipher.encrypt_blocks(j0.reshape(1, 16))[0]
    tag = (s ^ int.from_bytes(tag_mask.tobytes(), "big")).to_bytes(16, "big")
    return ciphertext, tag


def aes_gcm_decrypt(
    key: bytes, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
) -> bytes:
    """AES-128-GCM decrypt; raises :class:`AuthenticationError` on bad tag."""
    if len(iv) != 12:
        raise ValueError("GCM IV must be 12 bytes")
    cipher = AES128(key)
    h = int.from_bytes(
        cipher.encrypt_blocks(np.zeros((1, 16), dtype=np.uint8))[0].tobytes(), "big"
    )
    j0 = np.frombuffer(iv + b"\x00\x00\x00\x01", dtype=np.uint8).copy()
    s = _ghash(h, aad, ciphertext)
    tag_mask = cipher.encrypt_blocks(j0.reshape(1, 16))[0]
    expected = (s ^ int.from_bytes(tag_mask.tobytes(), "big")).to_bytes(16, "big")
    if expected != tag:
        raise AuthenticationError("GCM tag mismatch")
    keystream = _ctr_keystream(cipher, j0, len(ciphertext))
    return (np.frombuffer(ciphertext, dtype=np.uint8) ^ keystream).tobytes()


class AesGcmAccelerator(Accelerator):
    """Decrypt kernel: AES-GCM over an encrypted text blob.

    ``run`` takes a dict ``{"ciphertext": bytes, "iv": bytes, "tag": bytes}``
    (the command payload a host would enqueue) and returns the plaintext
    as a uint8 array for the downstream restructuring step.
    """

    def __init__(self, key: bytes = b"dmx-repro-key-16", speedup_vs_cpu: float = 8.0):
        self.key = key
        self.spec = AcceleratorSpec(
            name="aes-gcm-accel",
            domain="cryptography",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="hls",  # Vitis security library per Sec. VI
        )

    def run(self, payload: dict) -> np.ndarray:
        plaintext = aes_gcm_decrypt(
            self.key, payload["iv"], payload["ciphertext"], payload["tag"]
        )
        return np.frombuffer(plaintext, dtype=np.uint8).copy()

    def work_profile(self, payload: dict) -> WorkProfile:
        nbytes = len(payload["ciphertext"])
        # ~40 table lookups / xors per byte for AES + GHASH on CPU.
        return WorkProfile(
            name=self.spec.name,
            bytes_in=nbytes,
            bytes_out=nbytes,
            elements=nbytes,
            ops_per_element=40.0,
            element_size=1,
            branch_fraction=0.02,
            vectorizable_fraction=0.85,  # AES-NI-style slicing
            gather_fraction=0.3,  # S-box lookups
        )
