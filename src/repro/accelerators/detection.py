"""Object detection accelerator (Video Surveillance kernel 2).

A from-scratch single-shot grid detector: a small convolutional backbone
(im2col matmul convolutions, ReLU, 2x max pooling) followed by a 1x1
detection head that predicts per-cell objectness and box geometry —
YOLO-style output decoding with confidence thresholding. Weights are
deterministic; the reproduction target is the data-motion behaviour and
the device cost, not mAP.

The paper uses an open-source RTL DNN accelerator for this kernel, hence
``implementation="rtl"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..profiles import WorkProfile
from .base import Accelerator, AcceleratorSpec

__all__ = ["conv2d", "relu", "max_pool2d", "Detection", "ObjectDetectionAccelerator"]


def conv2d(x: np.ndarray, weights: np.ndarray, bias: np.ndarray,
           stride: int = 1, padding: int = 1) -> np.ndarray:
    """2-D convolution via im2col + matmul.

    ``x``: (C_in, H, W); ``weights``: (C_out, C_in, K, K); returns
    (C_out, H_out, W_out).
    """
    c_in, h, w = x.shape
    c_out, c_in_w, k, k2 = weights.shape
    if c_in != c_in_w or k != k2:
        raise ValueError("weight shape incompatible with input")
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    h_out = (x.shape[1] - k) // stride + 1
    w_out = (x.shape[2] - k) // stride + 1
    # im2col: gather all KxK patches into columns.
    cols = np.empty((c_in * k * k, h_out * w_out), dtype=np.float32)
    col = 0
    for i in range(h_out):
        for j in range(w_out):
            patch = x[:, i * stride : i * stride + k, j * stride : j * stride + k]
            cols[:, col] = patch.reshape(-1)
            col += 1
    out = weights.reshape(c_out, -1).astype(np.float32) @ cols
    out += bias.reshape(-1, 1).astype(np.float32)
    return out.reshape(c_out, h_out, w_out)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def max_pool2d(x: np.ndarray, size: int = 2) -> np.ndarray:
    """Non-overlapping max pooling on (C, H, W)."""
    c, h, w = x.shape
    if h % size or w % size:
        raise ValueError(f"spatial dims {h}x{w} not divisible by {size}")
    return x.reshape(c, h // size, size, w // size, size).max(axis=(2, 4))


@dataclass(frozen=True)
class Detection:
    """One detected object: normalized box + confidence."""

    x: float
    y: float
    width: float
    height: float
    confidence: float


class ObjectDetectionAccelerator(Accelerator):
    """Grid detector over a (3, S, S) normalized image tensor.

    Architecture: 3 conv+pool stages (3→16→32→64 channels) then a 1x1
    head emitting 5 values per cell (objectness, dx, dy, dw, dh).
    """

    def __init__(self, input_size: int = 416, threshold: float = 0.5,
                 speedup_vs_cpu: float = 7.5, seed: int = 1234):
        if input_size % 8:
            raise ValueError("input_size must be divisible by 8")
        self.input_size = input_size
        self.threshold = threshold
        rng = np.random.default_rng(seed)

        def he(shape):
            fan_in = int(np.prod(shape[1:]))
            return (rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)).astype(
                np.float32
            )

        self.layers = [
            (he((16, 3, 3, 3)), np.zeros(16, dtype=np.float32)),
            (he((32, 16, 3, 3)), np.zeros(32, dtype=np.float32)),
            (he((64, 32, 3, 3)), np.zeros(64, dtype=np.float32)),
        ]
        self.head_w = he((5, 64, 1, 1))
        self.head_b = np.zeros(5, dtype=np.float32)
        self.spec = AcceleratorSpec(
            name="object-detect-accel",
            domain="machine-learning",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="rtl",  # open-source DNN accelerator per Sec. VI
        )

    def forward(self, tensor: np.ndarray) -> np.ndarray:
        """Raw head output: (5, S/8, S/8)."""
        if tensor.shape != (3, self.input_size, self.input_size):
            raise ValueError(
                f"expected (3, {self.input_size}, {self.input_size}), got "
                f"{tensor.shape}"
            )
        x = tensor.astype(np.float32)
        for weights, bias in self.layers:
            x = max_pool2d(relu(conv2d(x, weights, bias)))
        return conv2d(x, self.head_w, self.head_b, padding=0)

    def run(self, tensor: np.ndarray) -> List[Detection]:
        head = self.forward(tensor)
        objectness = 1.0 / (1.0 + np.exp(-head[0]))
        grid = head.shape[1]
        detections: List[Detection] = []
        for gy in range(grid):
            for gx in range(grid):
                conf = float(objectness[gy, gx])
                if conf < self.threshold:
                    continue
                dx, dy, dw, dh = (float(v) for v in head[1:, gy, gx])
                detections.append(
                    Detection(
                        x=(gx + _sigmoid(dx)) / grid,
                        y=(gy + _sigmoid(dy)) / grid,
                        width=float(np.exp(np.clip(dw, -4, 4)) / grid),
                        height=float(np.exp(np.clip(dh, -4, 4)) / grid),
                        confidence=conf,
                    )
                )
        return detections

    def work_profile(self, tensor: np.ndarray) -> WorkProfile:
        total_macs = 0.0
        size = self.input_size
        c_in = 3
        for weights, _bias in self.layers:
            c_out = weights.shape[0]
            total_macs += size * size * c_out * c_in * 9
            size //= 2
            c_in = c_out
        total_macs += size * size * 5 * c_in  # head
        out_elems = 5 * size * size
        return WorkProfile(
            name=self.spec.name,
            bytes_in=int(tensor.nbytes),
            bytes_out=int(out_elems * 4),
            elements=int(out_elems),
            ops_per_element=2.0 * total_macs / max(1, out_elems),
            element_size=4,
            branch_fraction=0.02,
            vectorizable_fraction=1.0,
            gather_fraction=0.1,
        )


def _sigmoid(value: float) -> float:
    return 1.0 / (1.0 + np.exp(-value))
