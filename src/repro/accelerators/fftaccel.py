"""FFT accelerator: from-scratch radix-2 Cooley–Tukey and STFT framing.

Used as kernel 1 of both Sound Detection (short-time Fourier transform of
audio snippets) and Brain Stimulation (spectra of electromagnetic
channels). The transform is implemented from first principles (iterative,
bit-reversal + butterflies) and validated against ``numpy.fft`` in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..profiles import WorkProfile
from .base import Accelerator, AcceleratorSpec

__all__ = ["fft_radix2", "rfft_frames", "hann_window", "frame_signal", "FFTAccelerator"]


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def fft_radix2(signal: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT along the last axis.

    The length of the last axis must be a power of two.
    """
    x = np.asarray(signal, dtype=np.complex128)
    n = x.shape[-1]
    if n == 0 or n & (n - 1):
        raise ValueError(f"FFT length must be a power of two, got {n}")
    x = x[..., _bit_reverse_indices(n)]
    span = 1
    while span < n:
        twiddle = np.exp(-2j * np.pi * np.arange(span) / (2 * span))
        x = x.reshape(*x.shape[:-1], n // (2 * span), 2 * span)
        even = x[..., :span]
        odd = x[..., span:] * twiddle
        x = np.concatenate([even + odd, even - odd], axis=-1)
        x = x.reshape(*x.shape[:-2], n)
        span *= 2
    return x


def hann_window(n: int) -> np.ndarray:
    """Hann window of length ``n`` (periodic form, standard for STFT)."""
    if n <= 0:
        raise ValueError("window length must be positive")
    return (0.5 - 0.5 * np.cos(2 * np.pi * np.arange(n) / n)).astype(np.float64)


def frame_signal(signal: np.ndarray, frame_len: int, hop: int) -> np.ndarray:
    """Slice a 1-D signal into overlapping frames ``(n_frames, frame_len)``."""
    if signal.ndim != 1:
        raise ValueError("expected a 1-D signal")
    if frame_len <= 0 or hop <= 0:
        raise ValueError("frame_len and hop must be positive")
    if len(signal) < frame_len:
        raise ValueError("signal shorter than one frame")
    n_frames = 1 + (len(signal) - frame_len) // hop
    starts = np.arange(n_frames) * hop
    return np.stack([signal[s : s + frame_len] for s in starts])


def rfft_frames(frames: np.ndarray, window: Optional[np.ndarray] = None) -> np.ndarray:
    """Windowed one-sided FFT of framed data: ``(n_frames, frame_len//2+1)``."""
    frames = np.asarray(frames, dtype=np.float64)
    n = frames.shape[-1]
    if window is not None:
        if window.shape != (n,):
            raise ValueError("window length does not match frame length")
        frames = frames * window
    spectrum = fft_radix2(frames.astype(np.complex128))
    return np.ascontiguousarray(spectrum[..., : n // 2 + 1]).astype(np.complex64)


class FFTAccelerator(Accelerator):
    """STFT kernel: frames + windows + transforms an audio/EM snippet.

    ``run`` accepts a 1-D float signal (audio) or a 2-D ``(channels,
    samples)`` array (EM recording; each channel transformed whole).
    """

    def __init__(
        self,
        frame_len: int = 1024,
        hop: int = 512,
        speedup_vs_cpu: float = 9.0,
    ):
        self.frame_len = frame_len
        self.hop = hop
        self.window = hann_window(frame_len)
        self.spec = AcceleratorSpec(
            name="fft-accel",
            domain="signal-processing",
            speedup_vs_cpu=speedup_vs_cpu,
            implementation="hls",  # Vitis FFT library per Sec. VI
        )

    def run(self, data: np.ndarray) -> np.ndarray:
        if data.ndim == 1:
            frames = frame_signal(data, self.frame_len, self.hop)
            return rfft_frames(frames, self.window)
        if data.ndim == 2:
            n = data.shape[-1]
            if n & (n - 1):
                raise ValueError("channel length must be a power of two")
            spectrum = fft_radix2(data.astype(np.complex128))
            return np.ascontiguousarray(
                spectrum[..., : n // 2 + 1]
            ).astype(np.complex64)
        raise ValueError(f"expected 1-D or 2-D input, got shape {data.shape}")

    def work_profile(self, data: np.ndarray) -> WorkProfile:
        result = self.run(data)
        n = self.frame_len if data.ndim == 1 else data.shape[-1]
        transforms = result.shape[0]
        # 5 N log2 N real ops per complex FFT (classic operation count).
        log_n = max(1.0, np.log2(n))
        total_ops = transforms * 5.0 * n * log_n
        return WorkProfile(
            name=self.spec.name,
            bytes_in=int(data.nbytes),
            bytes_out=int(result.nbytes),
            elements=int(result.size),
            ops_per_element=total_ops / max(1, result.size),
            element_size=8,  # complex64
            branch_fraction=0.03,
            vectorizable_fraction=0.95,
            gather_fraction=0.25,  # butterflies stride
        )
