"""Chrome trace-event / Perfetto exporter.

Converts a run's span stream into the Chrome trace-event JSON format
(the ``traceEvents`` array of complete-``X`` events plus thread-name
metadata), which ``ui.perfetto.dev`` and ``chrome://tracing`` open
directly. One simulated second maps to one trace second (timestamps are
microseconds, as the format requires); each span actor gets its own
track (tid), and instants (fault injections, retries, fallbacks) render
as instant events on their actor's track.

When the source carries observation sections (a schema-2 artifact, or
explicit ``rollups``/``alerts`` arguments), windowed rollups export as
Perfetto **counter tracks** (``ph: "C"`` events named
``scope:key:stat``, one sample per window) and burn-rate alert
fire/clear transitions as process-scoped instant events on a dedicated
``alerts`` track — so the latency burn lines up visually with the span
waterfall that caused it.

The output is canonically serialized (sorted keys), so equal-seed runs
export byte-identical traces.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .artifact import RunArtifact
from .runtime import Telemetry
from .spans import Instant, Span

__all__ = ["chrome_trace", "write_chrome_trace"]

_PID = 1


def _tid_map(spans: Sequence[Span], instants: Sequence[Instant]) -> Dict[str, int]:
    """Stable actor → tid assignment, in order of first appearance
    (spans sorted by start time, then instants)."""
    tids: Dict[str, int] = {}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        tids.setdefault(span.actor or span.category or "run", len(tids) + 1)
    for event in instants:
        tids.setdefault(event.actor or event.category or "run", len(tids) + 1)
    return tids


def chrome_trace(
    source: Union[Telemetry, RunArtifact],
    extra_meta: Optional[Dict[str, object]] = None,
    rollups: Optional[object] = None,
    alerts: Optional[Sequence[object]] = None,
) -> Dict[str, object]:
    """Build the trace-event dict for a run (telemetry or artifact).

    ``rollups``/``alerts`` default to the source's own observation
    sections when it is a schema-2 artifact.
    """
    spans: Sequence[Span] = source.spans
    instants: Sequence[Instant] = source.instants
    if rollups is None:
        rollups = getattr(source, "rollups", None)
    if alerts is None:
        alerts = getattr(source, "alerts", None) or ()
    tids = _tid_map(spans, instants)
    if alerts:
        tids.setdefault("alerts", len(tids) + 1)
    events: List[Dict[str, object]] = []
    for actor, tid in tids.items():
        events.append({
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": actor},
        })
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        args: Dict[str, object] = {
            "request_id": span.request_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        if span.phase:
            args["phase"] = span.phase
        args.update(span.attrs)
        events.append({
            "ph": "X",
            "pid": _PID,
            "tid": tids[span.actor or span.category or "run"],
            "name": span.name,
            "cat": span.category,
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "args": args,
        })
    for event in instants:
        args = {"request_id": event.request_id}
        args.update(event.attrs)
        events.append({
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "pid": _PID,
            "tid": tids[event.actor or event.category or "run"],
            "name": event.name,
            "cat": event.category,
            "ts": event.time * 1e6,
            "args": args,
        })
    if rollups is not None:
        for scope in ("tenant", "site", "backend"):
            for key in rollups.keys(scope):
                for window in rollups.for_key(scope, key):
                    counters = {
                        stat: value
                        for stat, value in sorted(window.stats.items())
                        if isinstance(value, (int, float))
                    }
                    if not counters:
                        continue
                    events.append({
                        "ph": "C",
                        "pid": _PID,
                        "name": f"{scope}:{key}",
                        "ts": window.start * 1e6,
                        "args": counters,
                    })
    for alert in alerts:
        events.append({
            "ph": "i",
            "s": "g",  # global scope: the burn spans every track
            "pid": _PID,
            "tid": tids["alerts"],
            "name": f"{alert.state}:{alert.tenant}",
            "cat": "alert",
            "ts": alert.time * 1e6,
            "args": {
                "tenant": alert.tenant,
                "state": alert.state,
                "fast_burn": alert.fast_burn,
                "slow_burn": alert.slow_burn,
                "cause": alert.cause,
                "describe": alert.describe(),
            },
        })
    meta: Dict[str, object] = {"displayTimeUnit": "ms"}
    if isinstance(source, RunArtifact):
        meta["otherData"] = source.meta
    if extra_meta:
        meta.setdefault("otherData", {})
        meta["otherData"].update(extra_meta)  # type: ignore[union-attr]
    meta["traceEvents"] = events
    return meta


def write_chrome_trace(
    path: str,
    source: Union[Telemetry, RunArtifact],
    extra_meta: Optional[Dict[str, object]] = None,
    rollups: Optional[object] = None,
    alerts: Optional[Sequence[object]] = None,
) -> str:
    """Write a Perfetto-loadable trace JSON file; returns the path."""
    trace = chrome_trace(
        source, extra_meta=extra_meta, rollups=rollups, alerts=alerts
    )
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump(trace, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return path
