"""Windowed rollups: the run's metrics folded into fixed sim-time windows.

The raw telemetry a run records — spans, instants, gauges — answers
*per-request* questions (waterfalls, critical paths). A controller (and
the burn-rate alert engine in :mod:`repro.telemetry.alerts`) needs the
*time-series* view instead: what was tenant A's windowed p99 at t=40ms,
how busy was ``drx.acc0.0`` in that window, was its breaker open? This
module computes that view **post hoc**, purely from recorded telemetry,
so arming it cannot perturb the simulation: an observed run's span
stream, metrics, and :class:`~repro.serve.slo.ServeResult` are
byte-identical to an unobserved run's (a benchmark pins this).

Three scopes of :class:`RollupWindow` are emitted per fixed window of
``window_s`` simulated seconds, indexed from t=0:

* ``tenant`` — per-tenant completions, failures, SLO violations,
  windowed latency percentiles (exact, same interpolation as
  :class:`~repro.serve.slo.LatencyTracker`), goodput, queue depth, and
  sheds. Keyed by tenant name; completions land in the window of their
  *completion* time.
* ``site`` — per-executor busy time and leg counts (DRX units, the CPU
  fallback path, accelerators), plus health score and breaker state
  carried forward from the resilience plane's gauge/instant streams.
* ``backend`` — per planner backend kind (``drx``/``dsa``/``xdma``/
  ``cpu``): legs routed, busy time, and planner queue depth. Present
  only when the per-leg planner ran.

Determinism: windows are emitted for every key over the full run
horizon (empty windows included — a controller reading the series needs
the zeros), sorted by ``(scope, key, window)``, with all values derived
from sim-time quantities — equal-seed runs roll up byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.tracing import exact_percentile
from .spans import Instant, Span

__all__ = [
    "RollupConfig",
    "RollupWindow",
    "RunRollups",
    "compute_rollups",
]

#: Instant names admission emits when it turns an arrival away.
_SHED_NAMES = ("shed", "brownout_shed", "rate_limited")

#: Phases whose actor-carrying spans define a ``site`` (executors).
_SITE_PHASES = ("kernel", "restructuring", "movement", "control", "recovery")


@dataclass(frozen=True)
class RollupConfig:
    """Windowing knobs for one rollup pass.

    ``window_s`` is the fixed aggregation window on the sim clock;
    ``quantiles`` are the per-window latency percentiles computed for
    tenant windows (exact within the window, so tiny windows — a single
    sample — degrade gracefully to that sample).
    """

    window_s: float = 10e-3
    quantiles: Tuple[float, ...] = (0.50, 0.95, 0.99)

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not self.quantiles or any(
            not 0.0 < q < 1.0 for q in self.quantiles
        ):
            raise ValueError("quantiles must be in (0, 1)")


# Not frozen: compute_rollups creates one per (scope, key, window) over
# the whole run horizon, and the frozen-dataclass __init__ (six
# object.__setattr__ calls) dominated the rollup pass.
@dataclass
class RollupWindow:
    """One (scope, key, window) cell of the rolled-up run."""

    scope: str  # "tenant" | "site" | "backend"
    key: str
    window: int
    start: float
    end: float
    stats: Dict[str, object] = field(default_factory=dict)

    def to_row(self) -> Dict[str, object]:
        return {
            "kind": "rollup",
            "scope": self.scope,
            "key": self.key,
            "window": self.window,
            "start": self.start,
            "end": self.end,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "RollupWindow":
        return cls(
            scope=str(row["scope"]), key=str(row["key"]),
            window=int(row["window"]), start=float(row["start"]),
            end=float(row["end"]), stats=dict(row["stats"]),
        )


@dataclass
class RunRollups:
    """All rollup windows of one run, with series queries."""

    window_s: float
    quantiles: Tuple[float, ...]
    slo_s: Optional[float]
    windows: List[RollupWindow] = field(default_factory=list)

    def keys(self, scope: str) -> List[str]:
        """Distinct keys of a scope, sorted."""
        return sorted({w.key for w in self.windows if w.scope == scope})

    def for_key(self, scope: str, key: str) -> List[RollupWindow]:
        """One key's windows in ascending window order."""
        return sorted(
            (w for w in self.windows if w.scope == scope and w.key == key),
            key=lambda w: w.window,
        )

    def series(
        self, scope: str, key: str, stat: str
    ) -> List[Tuple[float, float]]:
        """``(window start, value)`` pairs for windows carrying ``stat``."""
        return [
            (w.start, float(w.stats[stat]))  # type: ignore[arg-type]
            for w in self.for_key(scope, key)
            if stat in w.stats
            and isinstance(w.stats[stat], (int, float))
        ]

    def to_rows(self) -> Iterable[Dict[str, object]]:
        for window in self.windows:
            yield window.to_row()

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Dict[str, object]],
        window_s: float,
        quantiles: Sequence[float],
        slo_s: Optional[float],
    ) -> "RunRollups":
        return cls(
            window_s=window_s,
            quantiles=tuple(quantiles),
            slo_s=slo_s,
            windows=[RollupWindow.from_row(row) for row in rows],
        )


# -- source access (Telemetry or RunArtifact, duck-typed) ----------------------


def _gauge_series(
    source, name: str
) -> List[Tuple[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]]]:
    """Every ``(labels, samples)`` of gauge ``name`` in the source."""
    metrics = getattr(source, "metrics", None)
    if metrics is not None:  # a live Telemetry
        return [
            (g.labels, list(g.samples))
            for g in metrics.gauges()
            if g.name == name
        ]
    return [  # a loaded RunArtifact
        (key[1], list(samples))
        for key, samples in source.gauges.items()
        if key[0] == name
    ]


def _label(labels: Tuple[Tuple[str, str], ...], key: str) -> Optional[str]:
    for k, v in labels:
        if k == key:
            return v
    return None


def _carry_window(
    samples: Sequence[Tuple[float, float]], start: float, end: float
) -> Optional[Tuple[float, float]]:
    """(time-weighted mean, max) of a LVCF gauge over ``[start, end)``.

    The sample preceding the window carries into it (last value carried
    forward); returns None when the gauge has no value anywhere in or
    before the window — the stat is then omitted rather than faked as 0.
    """
    prev: Optional[float] = None
    inside: List[Tuple[float, float]] = []
    for t, v in samples:
        if t < start:
            prev = v
        elif t < end:
            inside.append((t, v))
        else:
            break
    if prev is None and not inside:
        return None
    total = 0.0
    peak = prev if prev is not None else inside[0][1]
    cursor, value = start, (prev if prev is not None else inside[0][1])
    for t, v in inside:
        total += value * (t - cursor)
        cursor, value = t, v
        if v > peak:
            peak = v
    total += value * (end - cursor)
    return total / (end - start), peak


def _carry_windows(
    samples: Sequence[Tuple[float, float]], w: float, n_windows: int
) -> List[Optional[Tuple[float, float]]]:
    """:func:`_carry_window` for every window of the run, in one pass.

    Time-sorted samples are consumed by an advancing cursor instead of
    rescanned per window, so the whole run costs O(samples + windows)
    rather than O(samples x windows). The per-window arithmetic is the
    exact operation sequence of :func:`_carry_window` — equal floats,
    byte-identical rollup rows.
    """
    out: List[Optional[Tuple[float, float]]] = [None] * n_windows
    n = len(samples)
    idx = 0
    prev: Optional[float] = None
    for i in range(n_windows):
        start, end = i * w, (i + 1) * w
        while idx < n and samples[idx][0] < start:
            prev = samples[idx][1]
            idx += 1
        if prev is None:
            if idx >= n or samples[idx][0] >= end:
                continue
            first = samples[idx][1]
        else:
            first = prev
        total = 0.0
        peak = first
        cursor, value = start, first
        j = idx
        while j < n and samples[j][0] < end:
            t, v = samples[j]
            total += value * (t - cursor)
            cursor, value = t, v
            if v > peak:
                peak = v
            j += 1
        total += value * (end - cursor)
        out[i] = (total / (end - start), peak)
    return out


# -- the rollup pass -----------------------------------------------------------


def _span_overlap(span: Span, start: float, end: float) -> float:
    return max(0.0, min(span.end, end) - max(span.start, start))


def _busy_windows(
    spans_here: Sequence[Span], w: float, n_windows: int
) -> Tuple[List[float], List[int]]:
    """Per-window ``(busy seconds, landed legs)`` in one pass over spans.

    Each span contributes overlap only to the windows it actually
    touches (summing a zero overlap is a float no-op, so accumulation
    order matches the old per-window sweep bit for bit), and a leg
    lands in the window containing its end time.
    """
    busy = [0.0] * n_windows
    legs = [0] * n_windows
    for span in spans_here:
        first = max(0, int(span.start // w))
        last = min(n_windows - 1, int(span.end // w))
        for i in range(first, last + 1):
            busy[i] += _span_overlap(span, i * w, (i + 1) * w)
        land = int(span.end // w)
        if 0 <= land < n_windows:
            legs[land] += 1
    return busy, legs


def compute_rollups(
    source,
    config: Optional[RollupConfig] = None,
    slo_s: Optional[float] = None,
) -> RunRollups:
    """Roll one run's telemetry up into fixed windows.

    ``source`` is a live :class:`~repro.telemetry.Telemetry` or a loaded
    :class:`~repro.telemetry.RunArtifact` — the pass reads only recorded
    spans/instants/gauges, so it can run long after the simulation (and
    its arming cannot change what the simulation recorded). ``slo_s``
    defaults to the artifact's ``meta["slo_s"]`` when loading from disk.
    """
    cfg = config or RollupConfig()
    w = cfg.window_s
    if slo_s is None:
        meta = getattr(source, "meta", None)
        if isinstance(meta, dict) and isinstance(
            meta.get("slo_s"), (int, float)
        ):
            slo_s = float(meta["slo_s"])

    spans: Sequence[Span] = source.spans
    instants: Sequence[Instant] = source.instants

    # One classifying pass over the span stream: horizon plus the three
    # scope groupings (the stream is the big input — rescanning it per
    # scope dominated large runs).
    horizon = 0.0
    clients: Dict[str, List[Span]] = {}
    site_spans: Dict[str, List[Span]] = {}
    backend_spans: Dict[str, List[Span]] = {}
    for span in spans:
        if span.end is None:
            continue
        if span.end > horizon:
            horizon = span.end
        category = span.category
        if category == "client":
            tenant = str(span.attrs.get("tenant") or span.actor)
            clients.setdefault(tenant, []).append(span)
        elif span.actor and span.phase in _SITE_PHASES and \
                category != "batch":
            site_spans.setdefault(span.actor, []).append(span)
        if category == "stage":
            backend = span.attrs.get("backend")
            if backend:
                backend_spans.setdefault(str(backend), []).append(span)
    for inst in instants:
        if inst.time > horizon:
            horizon = inst.time
    queue_gauges = _gauge_series(source, "queue_depth")
    health_gauges = _gauge_series(source, "health_score")
    planner_gauges = _gauge_series(source, "planner_queue_depth")
    for _, samples in (*queue_gauges, *health_gauges, *planner_gauges):
        if samples and samples[-1][0] > horizon:
            horizon = samples[-1][0]
    n_windows = int(horizon // w) + 1 if horizon > 0 else 1

    rollups = RunRollups(window_s=w, quantiles=cfg.quantiles, slo_s=slo_s)
    emit = rollups.windows.append
    qlabels = [(q, f"p{round(q * 100)}_s") for q in cfg.quantiles]
    edges = [(i * w, (i + 1) * w) for i in range(n_windows)]

    # -- tenant scope --------------------------------------------------------
    tenant_queue = {
        _label(labels, "tenant"): samples
        for labels, samples in queue_gauges
        if _label(labels, "tenant") is not None
    }
    sheds: Dict[str, List[float]] = {}
    for inst in instants:
        if inst.category == "admission" and inst.name in _SHED_NAMES:
            sheds.setdefault(inst.actor, []).append(inst.time)
    tenants = sorted({*clients, *tenant_queue, *sheds})

    for tenant in tenants:
        by_window: Dict[int, List[Span]] = {}
        for span in clients.get(tenant, ()):
            by_window.setdefault(int(span.end // w), []).append(span)
        shed_by_window: Dict[int, int] = {}
        for t in sheds.get(tenant, ()):
            i = int(t // w)
            shed_by_window[i] = shed_by_window.get(i, 0) + 1
        depths = _carry_windows(tenant_queue.get(tenant, ()), w, n_windows)
        for i, (start, end) in enumerate(edges):
            members = by_window.get(i)
            if members:
                failed = sum(1 for s in members if s.attrs.get("failed"))
                violations = (
                    sum(
                        1 for s in members
                        if not s.attrs.get("failed") and s.duration > slo_s
                    )
                    if slo_s is not None
                    else 0
                )
            else:
                members = ()
                failed = violations = 0
            stats: Dict[str, object] = {
                "completed": len(members),
                "failed": failed,
                "violations": violations,
                "goodput_rps": (len(members) - failed - violations) / w,
                "shed": shed_by_window.get(i, 0),
            }
            if members:
                latencies = sorted(s.duration for s in members)
                stats["mean_s"] = sum(latencies) / len(latencies)
                stats["max_s"] = latencies[-1]
                for q, label in qlabels:
                    stats[label] = exact_percentile(latencies, q)
            depth = depths[i]
            if depth is not None:
                stats["queue_depth_mean"], stats["queue_depth_max"] = depth
            emit(RollupWindow("tenant", tenant, i, start, end, stats))

    # -- site scope (executors: DRX units, cpu fallback, accelerators) -------
    site_health = {
        _label(labels, "target"): samples
        for labels, samples in health_gauges
        if _label(labels, "target") is not None
    }
    breaker_events: Dict[str, List[Tuple[float, str]]] = {}
    for inst in instants:
        if inst.category == "breaker" and inst.name.startswith("breaker_"):
            state = str(
                inst.attrs.get("state") or inst.name[len("breaker_"):]
            )
            if state != "reroute":
                breaker_events.setdefault(inst.actor, []).append(
                    (inst.time, state)
                )
    sites = sorted({*site_spans, *site_health, *breaker_events})

    for site in sites:
        health = site_health.get(site)
        transitions = breaker_events.get(site, ())
        busy, legs = _busy_windows(site_spans.get(site, ()), w, n_windows)
        hidx, hlast = 0, None
        tidx, state = 0, "closed"
        for i, (start, end) in enumerate(edges):
            stats = {
                "busy_s": busy[i],
                "utilization": busy[i] / w,
                "legs": legs[i],
            }
            if health is not None:
                while hidx < len(health) and health[hidx][0] <= end:
                    hlast = health[hidx][1]
                    hidx += 1
                if hlast is not None:
                    stats["health"] = hlast
            if transitions:
                while tidx < len(transitions) and transitions[tidx][0] <= end:
                    state = transitions[tidx][1]
                    tidx += 1
                stats["breaker_state"] = state
            emit(RollupWindow("site", site, i, start, end, stats))

    # -- backend scope (planner kinds) ---------------------------------------
    backend_queue = {
        _label(labels, "backend"): samples
        for labels, samples in planner_gauges
        if _label(labels, "backend") is not None
    }
    backends = sorted({*backend_spans, *backend_queue})

    for backend in backends:
        busy, legs = _busy_windows(
            backend_spans.get(backend, ()), w, n_windows
        )
        depths = _carry_windows(backend_queue.get(backend, ()), w, n_windows)
        for i, (start, end) in enumerate(edges):
            stats = {
                "busy_s": busy[i],
                "utilization": busy[i] / w,
                "legs": legs[i],
            }
            depth = depths[i]
            if depth is not None:
                stats["queue_depth_mean"], stats["queue_depth_max"] = depth
            emit(RollupWindow("backend", backend, i, start, end, stats))

    rollups.windows.sort(key=lambda x: (x.scope, x.key, x.window))
    return rollups
