"""Deterministic run artifacts: JSON-lines serialization of a run.

One artifact file captures everything one simulated run produced —
config/meta, the full span tree, fault instants, and every metric —
as JSON-lines with canonical key ordering, so two runs with the same
seed write **byte-identical** files (the determinism tests diff the raw
bytes). The first line carries ``schema: 1``; bump it on any
incompatible layout change.

Line kinds::

    {"kind": "meta", "schema": 1, "meta": {...}}           # exactly once, first
    {"kind": "span", "id", "parent", "req", "name", "cat",
     "actor", "phase", "start", "end", "attrs"}            # one per span
    {"kind": "instant", "time", "name", "cat", "actor",
     "req", "attrs"}                                       # one per point event
    {"kind": "counter", "name", "labels", "value"}
    {"kind": "gauge", "name", "labels", "samples"}
    {"kind": "histogram", "name", "labels", "bounds",
     "counts", "sum", "count"}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .metrics import Histogram
from .runtime import Telemetry
from .spans import Instant, Span

__all__ = [
    "SCHEMA_VERSION",
    "RunArtifact",
    "artifact_lines",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
]

SCHEMA_VERSION = 1

_REQUIRED_KEYS = {
    "meta": ("schema", "meta"),
    "span": ("id", "parent", "req", "name", "cat", "actor", "phase",
             "start", "end", "attrs"),
    "instant": ("time", "name", "cat", "actor", "req", "attrs"),
    "counter": ("name", "labels", "value"),
    "gauge": ("name", "labels", "samples"),
    "histogram": ("name", "labels", "bounds", "counts", "sum", "count"),
}


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def artifact_lines(
    telemetry: Telemetry, meta: Optional[Dict[str, object]] = None
) -> Iterator[str]:
    """Yield the artifact's JSON lines (no trailing newlines)."""
    yield _dumps(
        {"kind": "meta", "schema": SCHEMA_VERSION, "meta": dict(meta or {})}
    )
    for span in sorted(telemetry.spans, key=lambda s: (s.start, s.span_id)):
        yield _dumps({
            "kind": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "req": span.request_id,
            "name": span.name,
            "cat": span.category,
            "actor": span.actor,
            "phase": span.phase,
            "start": span.start,
            "end": span.end,
            "attrs": span.attrs,
        })
    for event in telemetry.instants:
        yield _dumps({
            "kind": "instant",
            "time": event.time,
            "name": event.name,
            "cat": event.category,
            "actor": event.actor,
            "req": event.request_id,
            "attrs": event.attrs,
        })
    for counter in telemetry.metrics.counters():
        yield _dumps({
            "kind": "counter",
            "name": counter.name,
            "labels": dict(counter.labels),
            "value": counter.value,
        })
    for gauge in telemetry.metrics.gauges():
        yield _dumps({
            "kind": "gauge",
            "name": gauge.name,
            "labels": dict(gauge.labels),
            "samples": [[t, v] for t, v in gauge.samples],
        })
    for hist in telemetry.metrics.histograms():
        yield _dumps({
            "kind": "histogram",
            "name": hist.name,
            "labels": dict(hist.labels),
            "bounds": list(hist.bounds),
            "counts": list(hist.counts),
            "sum": hist.sum,
            "count": hist.count,
        })


def write_artifact(
    path: str,
    telemetry: Telemetry,
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Serialize one run to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        for line in artifact_lines(telemetry, meta):
            fh.write(line)
            fh.write("\n")
    return path


@dataclass
class RunArtifact:
    """One loaded artifact, reconstructed into model objects."""

    schema: int
    meta: Dict[str, object]
    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = field(
        default_factory=dict
    )
    gauges: Dict[
        Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[float, float]]
    ] = field(default_factory=dict)
    histograms: List[Histogram] = field(default_factory=list)

    def counter_value(self, name: str, **labels: str) -> float:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.counters.get(key, 0.0)

    def gauge_samples(
        self, name: str, **labels: str
    ) -> List[Tuple[float, float]]:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.gauges.get(key, [])

    def request_ids(self) -> List[int]:
        """Distinct request ids with spans, ascending (−1 excluded)."""
        seen = {s.request_id for s in self.spans if s.request_id >= 0}
        return sorted(seen)

    def spans_for_request(self, request_id: int) -> List[Span]:
        return [s for s in self.spans if s.request_id == request_id]


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def load_artifact(path: str) -> RunArtifact:
    """Parse an artifact file back into a :class:`RunArtifact`."""
    artifact: Optional[RunArtifact] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            row = json.loads(raw)
            kind = row.get("kind")
            if lineno == 1:
                if kind != "meta":
                    raise ValueError(
                        f"{path}:1: first line must be the meta record"
                    )
                artifact = RunArtifact(
                    schema=int(row["schema"]), meta=row["meta"]
                )
                if artifact.schema != SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: unsupported schema {artifact.schema} "
                        f"(supported: {SCHEMA_VERSION})"
                    )
                continue
            assert artifact is not None
            if kind == "span":
                artifact.spans.append(Span(
                    span_id=row["id"], parent_id=row["parent"],
                    request_id=row["req"], name=row["name"],
                    category=row["cat"], actor=row["actor"],
                    phase=row["phase"], start=row["start"], end=row["end"],
                    attrs=row["attrs"],
                ))
            elif kind == "instant":
                artifact.instants.append(Instant(
                    time=row["time"], name=row["name"], category=row["cat"],
                    actor=row["actor"], request_id=row["req"],
                    attrs=row["attrs"],
                ))
            elif kind == "counter":
                artifact.counters[
                    (row["name"], _label_key(row["labels"]))
                ] = row["value"]
            elif kind == "gauge":
                artifact.gauges[(row["name"], _label_key(row["labels"]))] = [
                    (t, v) for t, v in row["samples"]
                ]
            elif kind == "histogram":
                hist = Histogram(
                    row["name"], _label_key(row["labels"]), row["bounds"]
                )
                hist.counts = list(row["counts"])
                hist.sum = row["sum"]
                hist.count = row["count"]
                artifact.histograms.append(hist)
            else:
                raise ValueError(f"{path}:{lineno}: unknown kind {kind!r}")
    if artifact is None:
        raise ValueError(f"{path}: empty artifact")
    return artifact


def validate_artifact(path: str) -> List[str]:
    """Structural schema check; returns a list of problems (empty = ok).

    Checks line-level required keys, the schema version, span parent
    references, and span time sanity — the contract the CI artifact
    step enforces on every uploaded run.
    """
    problems: List[str] = []
    span_ids: set = set()
    parent_refs: List[Tuple[int, int]] = []  # (lineno, parent id)
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln.strip() for ln in fh if ln.strip()]
    if not lines:
        return [f"{path}: empty artifact"]
    for lineno, raw in enumerate(lines, start=1):
        try:
            row = json.loads(raw)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        kind = row.get("kind")
        if lineno == 1:
            if kind != "meta":
                problems.append("line 1: expected the meta record")
                continue
            if row.get("schema") != SCHEMA_VERSION:
                problems.append(
                    f"line 1: schema {row.get('schema')!r} != "
                    f"{SCHEMA_VERSION}"
                )
            continue
        if kind == "meta":
            problems.append(f"line {lineno}: duplicate meta record")
            continue
        required = _REQUIRED_KEYS.get(kind or "")
        if required is None:
            problems.append(f"line {lineno}: unknown kind {kind!r}")
            continue
        missing = [key for key in required if key not in row]
        if missing:
            problems.append(f"line {lineno}: {kind} missing {missing}")
            continue
        if kind == "span":
            if row["end"] < row["start"]:
                problems.append(
                    f"line {lineno}: span {row['id']} ends before start"
                )
            span_ids.add(row["id"])
            if row["parent"] != -1:
                parent_refs.append((lineno, row["parent"]))
        if kind == "gauge":
            times = [t for t, _ in row["samples"]]
            if times != sorted(times):
                problems.append(
                    f"line {lineno}: gauge {row['name']} samples unordered"
                )
        if kind == "histogram":
            if len(row["counts"]) != len(row["bounds"]) + 1:
                problems.append(
                    f"line {lineno}: histogram {row['name']} "
                    f"counts/bounds length mismatch"
                )
    for lineno, parent in parent_refs:
        if parent not in span_ids:
            problems.append(
                f"line {lineno}: span parent {parent} not in artifact"
            )
    return problems
