"""Deterministic run artifacts: JSON-lines serialization of a run.

One artifact file captures everything one simulated run produced —
config/meta, the full span tree, fault instants, every metric, and
(when the observation plane is armed) windowed rollups plus the
burn-rate alert timeline — as JSON-lines with canonical key ordering,
so two runs with the same seed write **byte-identical** files (the
determinism tests diff the raw bytes). The first line carries
``schema: 2``; v1 artifacts (no rollup/alert/observation rows) load
unchanged — the loader accepts both.

The observation sections are strictly *appended*: an artifact written
with rollups/alerts is the unobserved artifact plus extra trailing
lines, byte-for-byte (a benchmark pins this). Trace sampling
(:mod:`repro.telemetry.sampling`) is the one writer knob that changes
earlier lines: it drops span/instant rows of sampled-out requests and
records the count in the trailing ``observation`` row.

Line kinds::

    {"kind": "meta", "schema": 2, "meta": {...}}           # exactly once, first
    {"kind": "span", "id", "parent", "req", "name", "cat",
     "actor", "phase", "start", "end", "attrs"}            # one per span
    {"kind": "instant", "time", "name", "cat", "actor",
     "req", "attrs"}                                       # one per point event
    {"kind": "counter", "name", "labels", "value"}
    {"kind": "gauge", "name", "labels", "samples"}
    {"kind": "histogram", "name", "labels", "bounds",
     "counts", "sum", "count"}
    {"kind": "observation", ...}                           # at most once: window
                                                           # config + sampling books
    {"kind": "rollup", "scope", "key", "window",
     "start", "end", "stats"}                              # one per rollup window
    {"kind": "alert", "time", "tenant", "state", ...}      # one per alert event
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .metrics import Histogram
from .rollup import RollupWindow, RunRollups
from .runtime import Telemetry
from .spans import Instant, Span

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "RunArtifact",
    "artifact_lines",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
]

SCHEMA_VERSION = 2

#: Schemas :func:`load_artifact` and :func:`validate_artifact` accept.
#: v1 lacks observation/rollup/alert rows but is otherwise identical.
SUPPORTED_SCHEMAS = (1, 2)

_REQUIRED_KEYS = {
    "meta": ("schema", "meta"),
    "span": ("id", "parent", "req", "name", "cat", "actor", "phase",
             "start", "end", "attrs"),
    "instant": ("time", "name", "cat", "actor", "req", "attrs"),
    "counter": ("name", "labels", "value"),
    "gauge": ("name", "labels", "samples"),
    "histogram": ("name", "labels", "bounds", "counts", "sum", "count"),
    "observation": (),
    "rollup": ("scope", "key", "window", "start", "end", "stats"),
    "alert": ("time", "tenant", "state", "window", "fast_burn",
              "slow_burn", "span_s", "cause", "attribution"),
}


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def artifact_lines(
    telemetry: Telemetry,
    meta: Optional[Dict[str, object]] = None,
    rollups: Optional[RunRollups] = None,
    alerts: Optional[List[object]] = None,
    sampling: Optional[object] = None,
) -> Iterator[str]:
    """Yield the artifact's JSON lines (no trailing newlines).

    ``rollups``/``alerts`` append the observation sections;
    ``sampling`` is a resolved
    :class:`~repro.telemetry.sampling.SamplePlan` that filters
    span/instant rows to the kept request set.
    """
    yield _dumps(
        {"kind": "meta", "schema": SCHEMA_VERSION, "meta": dict(meta or {})}
    )
    keeps = sampling.keeps if sampling is not None else (lambda _rid: True)
    for span in sorted(telemetry.spans, key=lambda s: (s.start, s.span_id)):
        if not keeps(span.request_id):
            continue
        yield _dumps({
            "kind": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "req": span.request_id,
            "name": span.name,
            "cat": span.category,
            "actor": span.actor,
            "phase": span.phase,
            "start": span.start,
            "end": span.end,
            "attrs": span.attrs,
        })
    for event in telemetry.instants:
        if not keeps(event.request_id):
            continue
        yield _dumps({
            "kind": "instant",
            "time": event.time,
            "name": event.name,
            "cat": event.category,
            "actor": event.actor,
            "req": event.request_id,
            "attrs": event.attrs,
        })
    for counter in telemetry.metrics.counters():
        yield _dumps({
            "kind": "counter",
            "name": counter.name,
            "labels": dict(counter.labels),
            "value": counter.value,
        })
    for gauge in telemetry.metrics.gauges():
        yield _dumps({
            "kind": "gauge",
            "name": gauge.name,
            "labels": dict(gauge.labels),
            "samples": [[t, v] for t, v in gauge.samples],
        })
    for hist in telemetry.metrics.histograms():
        yield _dumps({
            "kind": "histogram",
            "name": hist.name,
            "labels": dict(hist.labels),
            "bounds": list(hist.bounds),
            "counts": list(hist.counts),
            "sum": hist.sum,
            "count": hist.count,
        })
    if rollups is not None or sampling is not None:
        observation: Dict[str, object] = {"kind": "observation"}
        if rollups is not None:
            observation["window_s"] = rollups.window_s
            observation["quantiles"] = list(rollups.quantiles)
            observation["slo_s"] = rollups.slo_s
        if sampling is not None:
            observation["sampling"] = sampling.to_meta()
        yield _dumps(observation)
    if rollups is not None:
        for row in rollups.to_rows():
            yield _dumps(row)
    for alert in alerts or ():
        yield _dumps(alert.to_row())


def write_artifact(
    path: str,
    telemetry: Telemetry,
    meta: Optional[Dict[str, object]] = None,
    rollups: Optional[RunRollups] = None,
    alerts: Optional[List[object]] = None,
    sampling: Optional[object] = None,
) -> str:
    """Serialize one run to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        for line in artifact_lines(
            telemetry, meta, rollups=rollups, alerts=alerts,
            sampling=sampling,
        ):
            fh.write(line)
            fh.write("\n")
    return path


@dataclass
class RunArtifact:
    """One loaded artifact, reconstructed into model objects."""

    schema: int
    meta: Dict[str, object]
    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = field(
        default_factory=dict
    )
    gauges: Dict[
        Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[float, float]]
    ] = field(default_factory=dict)
    histograms: List[Histogram] = field(default_factory=list)
    #: Observation sections (schema 2; None/empty on v1 artifacts).
    observation: Optional[Dict[str, object]] = None
    rollups: Optional[RunRollups] = None
    alerts: List[object] = field(default_factory=list)

    @property
    def sampling(self) -> Optional[Dict[str, object]]:
        """The writer's sampling books (None = unsampled artifact)."""
        if self.observation is None:
            return None
        return self.observation.get("sampling")  # type: ignore[return-value]

    def counter_value(self, name: str, **labels: str) -> float:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.counters.get(key, 0.0)

    def gauge_samples(
        self, name: str, **labels: str
    ) -> List[Tuple[float, float]]:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.gauges.get(key, [])

    def request_ids(self) -> List[int]:
        """Distinct request ids with spans, ascending (−1 excluded)."""
        seen = {s.request_id for s in self.spans if s.request_id >= 0}
        return sorted(seen)

    def spans_for_request(self, request_id: int) -> List[Span]:
        return [s for s in self.spans if s.request_id == request_id]


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def load_artifact(path: str) -> RunArtifact:
    """Parse an artifact file back into a :class:`RunArtifact`.

    Accepts every schema in :data:`SUPPORTED_SCHEMAS` — a v1 artifact
    (pre-observation-plane) loads into the same object with empty
    observation sections, so reports and diffs work across the version
    boundary.
    """
    from .alerts import AlertEvent

    artifact: Optional[RunArtifact] = None
    rollup_rows: List[RollupWindow] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            row = json.loads(raw)
            kind = row.get("kind")
            if lineno == 1:
                if kind != "meta":
                    raise ValueError(
                        f"{path}:1: first line must be the meta record"
                    )
                artifact = RunArtifact(
                    schema=int(row["schema"]), meta=row["meta"]
                )
                if artifact.schema not in SUPPORTED_SCHEMAS:
                    raise ValueError(
                        f"{path}: unsupported schema {artifact.schema} "
                        f"(supported: {SUPPORTED_SCHEMAS})"
                    )
                continue
            assert artifact is not None
            if kind == "span":
                artifact.spans.append(Span(
                    span_id=row["id"], parent_id=row["parent"],
                    request_id=row["req"], name=row["name"],
                    category=row["cat"], actor=row["actor"],
                    phase=row["phase"], start=row["start"], end=row["end"],
                    attrs=row["attrs"],
                ))
            elif kind == "instant":
                artifact.instants.append(Instant(
                    time=row["time"], name=row["name"], category=row["cat"],
                    actor=row["actor"], request_id=row["req"],
                    attrs=row["attrs"],
                ))
            elif kind == "counter":
                artifact.counters[
                    (row["name"], _label_key(row["labels"]))
                ] = row["value"]
            elif kind == "gauge":
                artifact.gauges[(row["name"], _label_key(row["labels"]))] = [
                    (t, v) for t, v in row["samples"]
                ]
            elif kind == "histogram":
                hist = Histogram(
                    row["name"], _label_key(row["labels"]), row["bounds"]
                )
                hist.counts = list(row["counts"])
                hist.sum = row["sum"]
                hist.count = row["count"]
                artifact.histograms.append(hist)
            elif kind == "observation":
                artifact.observation = {
                    k: v for k, v in row.items() if k != "kind"
                }
            elif kind == "rollup":
                rollup_rows.append(RollupWindow.from_row(row))
            elif kind == "alert":
                artifact.alerts.append(AlertEvent.from_row(row))
            else:
                raise ValueError(f"{path}:{lineno}: unknown kind {kind!r}")
    if artifact is None:
        raise ValueError(f"{path}: empty artifact")
    if rollup_rows:
        obs = artifact.observation or {}
        artifact.rollups = RunRollups(
            window_s=float(obs.get("window_s", 0.0) or 0.0),
            quantiles=tuple(obs.get("quantiles", ())),
            slo_s=obs.get("slo_s"),  # type: ignore[arg-type]
            windows=rollup_rows,
        )
    return artifact


def validate_artifact(path: str) -> List[str]:
    """Structural schema check; returns a list of problems (empty = ok).

    Checks line-level required keys, the schema version, span parent
    references, span time sanity, and observation-section shape — the
    contract the CI artifact step enforces on every uploaded run.
    """
    problems: List[str] = []
    span_ids: set = set()
    parent_refs: List[Tuple[int, int]] = []  # (lineno, parent id)
    observation_seen = False
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln.strip() for ln in fh if ln.strip()]
    if not lines:
        return [f"{path}: empty artifact"]
    for lineno, raw in enumerate(lines, start=1):
        try:
            row = json.loads(raw)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        kind = row.get("kind")
        if lineno == 1:
            if kind != "meta":
                problems.append("line 1: expected the meta record")
                continue
            if row.get("schema") not in SUPPORTED_SCHEMAS:
                problems.append(
                    f"line 1: schema {row.get('schema')!r} not in "
                    f"{SUPPORTED_SCHEMAS}"
                )
            continue
        if kind == "meta":
            problems.append(f"line {lineno}: duplicate meta record")
            continue
        required = _REQUIRED_KEYS.get(kind or "")
        if required is None:
            problems.append(f"line {lineno}: unknown kind {kind!r}")
            continue
        missing = [key for key in required if key not in row]
        if missing:
            problems.append(f"line {lineno}: {kind} missing {missing}")
            continue
        if kind == "span":
            if row["end"] < row["start"]:
                problems.append(
                    f"line {lineno}: span {row['id']} ends before start"
                )
            span_ids.add(row["id"])
            if row["parent"] != -1:
                parent_refs.append((lineno, row["parent"]))
        if kind == "gauge":
            times = [t for t, _ in row["samples"]]
            if times != sorted(times):
                problems.append(
                    f"line {lineno}: gauge {row['name']} samples unordered"
                )
        if kind == "histogram":
            if len(row["counts"]) != len(row["bounds"]) + 1:
                problems.append(
                    f"line {lineno}: histogram {row['name']} "
                    f"counts/bounds length mismatch"
                )
        if kind == "observation":
            if observation_seen:
                problems.append(
                    f"line {lineno}: duplicate observation record"
                )
            observation_seen = True
        if kind == "rollup":
            if not isinstance(row["stats"], dict):
                problems.append(
                    f"line {lineno}: rollup stats must be an object"
                )
            if row["end"] <= row["start"]:
                problems.append(
                    f"line {lineno}: rollup window ends before start"
                )
        if kind == "alert":
            if row["state"] not in ("fire", "clear"):
                problems.append(
                    f"line {lineno}: alert state {row['state']!r} "
                    f"not fire/clear"
                )
    for lineno, parent in parent_refs:
        if parent not in span_ids:
            problems.append(
                f"line {lineno}: span parent {parent} not in artifact"
            )
    return problems
