"""Multi-window burn-rate alerts with root-cause attribution.

The SRE burn-rate pattern on sim time: an SLO with a violation budget
(e.g. "at most 10% of completions over the latency target") burns at
rate 1.0 when violations arrive exactly at budget. The engine walks a
tenant's rollup windows (:mod:`repro.telemetry.rollup`) and fires when
**both** a fast window (reacts in one window) and a slow window
(filters one-off blips) burn above their thresholds — the standard
two-window guard against both paging latency and flappiness. A fired
alert stays active until the fast burn stays calm for
``clear_after`` consecutive windows (hysteresis dwell), then emits a
``clear`` event.

Every ``fire`` event is annotated with a **root cause**: the violating
requests inside the slow window are swept with the site-keyed
critical-path attribution (:func:`repro.telemetry.report
.site_critical_path`), and the dominant non-queue key names the cause —
"p99 burn driven by ``restructuring@drx.acc0.0`` for tenant B". Queue
and idle time are symptoms of a saturated server, not causes, so they
are reported alongside but never ranked first. Control-plane events
(breaker flips, brownout tier moves, fault injections) inside the slow
window ride along for correlation.

Like the rollup pass this runs **post hoc** over recorded telemetry:
alerts are evaluated after the DES drains and appended to the artifact,
so arming the engine cannot perturb the run it observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .rollup import RollupConfig, RunRollups, compute_rollups
from .spans import Instant, Span

__all__ = [
    "AlertConfig",
    "AlertEvent",
    "ObservationConfig",
    "evaluate_alerts",
    "observe_run",
    "SYMPTOM_PHASES",
]

#: Attribution phases that are symptoms of saturation, never root causes.
SYMPTOM_PHASES = ("queue", "idle")


@dataclass(frozen=True)
class AlertConfig:
    """Burn-rate thresholds for one alert policy.

    ``budget`` is the violation fraction the SLO tolerates (0.10 = one
    in ten completions may miss the target); burn rate is the observed
    violation fraction divided by the budget. The fast window spans
    ``fast_windows`` rollup windows and must burn at ``fast_burn``x, the
    slow window spans ``slow_windows`` and must burn at ``slow_burn``x —
    both at once to fire. ``min_count`` completions must exist in the
    slow window before it can fire (a single slow request in an idle
    run is not an incident), and the alert clears only after
    ``clear_after`` consecutive calm fast windows.
    """

    budget: float = 0.10
    fast_windows: int = 1
    slow_windows: int = 6
    fast_burn: float = 2.0
    slow_burn: float = 1.0
    min_count: int = 4
    clear_after: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ValueError(
                "need 1 <= fast_windows <= slow_windows"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be positive")
        if self.min_count < 1:
            raise ValueError("min_count must be >= 1")
        if self.clear_after < 1:
            raise ValueError("clear_after must be >= 1")


@dataclass(frozen=True)
class ObservationConfig:
    """Arms the observation plane on a serving run: windowed rollups,
    plus burn-rate alerts unless ``alerts`` is None."""

    rollup: RollupConfig = RollupConfig()
    alerts: Optional[AlertConfig] = AlertConfig()


@dataclass
class AlertEvent:
    """One burn-rate alert transition (``fire`` or ``clear``).

    ``span_s`` is the slow-window extent the fire looked at (consumers
    — trace sampling, dashboards — use it to bracket the incident);
    ``attribution`` is the full ``phase@site`` critical-path split of
    the violating requests, ``cause`` its dominant non-symptom key, and
    ``share`` that key's fraction of the attributed time.
    """

    time: float
    tenant: str
    state: str  # "fire" | "clear"
    window: int
    fast_burn: float
    slow_burn: float
    span_s: float
    cause: str = ""
    site: str = ""
    phase: str = ""
    share: float = 0.0
    attribution: Dict[str, float] = field(default_factory=dict)
    events: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line root-cause sentence for reports and demos."""
        if self.state != "fire":
            return f"alert cleared for tenant {self.tenant}"
        if not self.cause:
            return f"burn for tenant {self.tenant} (no attribution)"
        where = f" on {self.site}" if self.site else ""
        return (
            f"burn driven by {self.phase}{where} "
            f"({self.share:.0%} of violating critical path) "
            f"for tenant {self.tenant}"
        )

    def to_row(self) -> Dict[str, object]:
        return {
            "kind": "alert",
            "time": self.time,
            "tenant": self.tenant,
            "state": self.state,
            "window": self.window,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "span_s": self.span_s,
            "cause": self.cause,
            "site": self.site,
            "phase": self.phase,
            "share": self.share,
            "attribution": dict(self.attribution),
            "events": list(self.events),
        }

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "AlertEvent":
        return cls(
            time=float(row["time"]), tenant=str(row["tenant"]),
            state=str(row["state"]), window=int(row["window"]),
            fast_burn=float(row["fast_burn"]),
            slow_burn=float(row["slow_burn"]),
            span_s=float(row["span_s"]), cause=str(row["cause"]),
            site=str(row["site"]), phase=str(row["phase"]),
            share=float(row["share"]),
            attribution=dict(row["attribution"]),
            events=list(row["events"]),
        )


# -- attribution ---------------------------------------------------------------


def pick_cause(attribution: Dict[str, float]) -> Tuple[str, float]:
    """(dominant non-symptom key, its share of all attributed time).

    Queue wait and idle gaps are what saturation *looks like*, not what
    caused it — they are skipped unless nothing else was attributed.
    Ties break toward the lexically smaller key for determinism.
    """
    total = sum(attribution.values())
    if total <= 0:
        return "", 0.0
    causes = {
        key: seconds for key, seconds in attribution.items()
        if key.split("@", 1)[0] not in SYMPTOM_PHASES
    } or attribution
    best = min(causes, key=lambda k: (-causes[k], k))
    return best, causes[best] / total


def _attribute(
    spans_by_request: Dict[int, List[Span]],
    violating: Sequence[Span],
) -> Dict[str, float]:
    from .report import site_critical_path

    out: Dict[str, float] = {}
    for client in violating:
        spans = spans_by_request.get(client.request_id)
        if not spans:
            continue
        for key, seconds in site_critical_path(spans).items():
            out[key] = out.get(key, 0.0) + seconds
    return out


# -- the engine ----------------------------------------------------------------


def evaluate_alerts(
    source,
    rollups: RunRollups,
    config: Optional[AlertConfig] = None,
) -> List[AlertEvent]:
    """Walk every tenant's rollup windows and emit the alert timeline.

    ``source`` (a live Telemetry or a loaded RunArtifact) provides the
    spans for root-cause attribution and the instants for control-plane
    correlation; ``rollups`` provides the windowed violation counts.
    Returns events in (time, tenant) order. With no SLO on the rollups
    there are no violations and therefore no alerts.
    """
    cfg = config or AlertConfig()
    if rollups.slo_s is None:
        return []
    w = rollups.window_s

    # Attribution inputs are only needed once an alert actually fires;
    # healthy runs (the common case the overhead budget is pinned on)
    # never pay for indexing the span stream.
    indexed: Dict[str, object] = {}

    def _indexes():
        if not indexed:
            spans_by_request: Dict[int, List[Span]] = {}
            clients_by_tenant: Dict[str, List[Span]] = {}
            for span in source.spans:
                if span.request_id >= 0:
                    spans_by_request.setdefault(
                        span.request_id, []
                    ).append(span)
                if span.category == "client" and span.end is not None:
                    tenant = str(span.attrs.get("tenant") or span.actor)
                    clients_by_tenant.setdefault(tenant, []).append(span)
            control: List[Instant] = [
                i for i in source.instants
                if i.category in ("breaker", "brownout", "fault")
            ]
            indexed["requests"] = spans_by_request
            indexed["clients"] = clients_by_tenant
            indexed["control"] = control
        return indexed["requests"], indexed["clients"], indexed["control"]

    events: List[AlertEvent] = []
    for tenant in rollups.keys("tenant"):
        windows = rollups.for_key("tenant", tenant)
        completed = [int(x.stats.get("completed", 0)) for x in windows]
        violations = [int(x.stats.get("violations", 0)) for x in windows]
        # prefix sums: sliding-window totals in O(1) per window (integer
        # arithmetic, so identical to summing the slices)
        cum_c, cum_v = [0], [0]
        for c, v in zip(completed, violations):
            cum_c.append(cum_c[-1] + c)
            cum_v.append(cum_v[-1] + v)
        active = False
        calm = 0
        for i, cell in enumerate(windows):
            fast_lo = max(0, i - cfg.fast_windows + 1)
            fast_c = cum_c[i + 1] - cum_c[fast_lo]
            fast_v = cum_v[i + 1] - cum_v[fast_lo]
            slow_lo = max(0, i - cfg.slow_windows + 1)
            slow_c = cum_c[i + 1] - cum_c[slow_lo]
            slow_v = cum_v[i + 1] - cum_v[slow_lo]
            fast_burn = (fast_v / fast_c / cfg.budget) if fast_c else 0.0
            slow_burn = (slow_v / slow_c / cfg.budget) if slow_c else 0.0
            breaching = (
                slow_c >= cfg.min_count
                and fast_burn >= cfg.fast_burn
                and slow_burn >= cfg.slow_burn
            )
            if not active:
                if not breaching:
                    continue
                active, calm = True, 0
                span_s = (i + 1 - slow_lo) * w
                lo, hi = slow_lo * w, cell.end
                spans_by_request, clients_by_tenant, control = _indexes()
                violating = [
                    s for s in clients_by_tenant.get(tenant, ())
                    if lo <= s.end <= hi
                    and not s.attrs.get("failed")
                    and s.duration > rollups.slo_s
                ]
                attribution = _attribute(spans_by_request, violating)
                cause, share = pick_cause(attribution)
                phase, _, site = cause.partition("@")
                correlated = sorted({
                    f"{inst.name}@{inst.actor}" if inst.actor else inst.name
                    for inst in control
                    if lo <= inst.time <= hi
                })
                events.append(AlertEvent(
                    time=cell.end, tenant=tenant, state="fire",
                    window=i, fast_burn=fast_burn, slow_burn=slow_burn,
                    span_s=span_s, cause=cause, site=site, phase=phase,
                    share=share, attribution=attribution,
                    events=correlated,
                ))
                continue
            # Active: dwell until the fast window stays calm.
            if fast_burn >= cfg.fast_burn:
                calm = 0
                continue
            calm += 1
            if calm >= cfg.clear_after:
                active = False
                events.append(AlertEvent(
                    time=cell.end, tenant=tenant, state="clear",
                    window=i, fast_burn=fast_burn, slow_burn=slow_burn,
                    span_s=cfg.slow_windows * w,
                ))
    events.sort(key=lambda e: (e.time, e.tenant, e.state))
    return events


def observe_run(
    source,
    config: Optional[ObservationConfig] = None,
    slo_s: Optional[float] = None,
) -> Tuple[RunRollups, List[AlertEvent]]:
    """Rollups + alert timeline for one finished run, in one call.

    The serving frontend calls this after the DES drains when
    :attr:`~repro.serve.frontend.FrontendConfig.observation` is armed;
    it is equally callable on a loaded artifact.
    """
    cfg = config or ObservationConfig()
    rollups = compute_rollups(source, cfg.rollup, slo_s=slo_s)
    alerts = (
        evaluate_alerts(source, rollups, cfg.alerts)
        if cfg.alerts is not None
        else []
    )
    return rollups, alerts
