"""Deterministic head-based trace sampling for high-rps artifacts.

At hundreds of thousands of requests per second the full span stream
dominates artifact size while most request trees are near-identical
happy paths. Sampling keeps a seeded fraction of request traces —
**head-based**: the keep/drop decision is a pure hash of
``(seed, request_id)``, so equal-seed runs sample identically and two
artifacts of the same run agree on every kept request without any
coordination.

Requests that carry signal are always retained, regardless of the keep
fraction:

* faulted / retried requests (fault-plane instants, recovery-phase or
  abandoned spans);
* requests the control plane touched (breaker reroutes, forced-CPU,
  open-breaker skips, brownout markers);
* failed requests;
* requests overlapping any fired alert's slow window — the traces an
  incident post-mortem needs are exactly the ones sampling must not
  lose.

Sampling drops **span/instant rows only**. Metrics (counters, gauges,
histograms) are aggregates over *all* requests and are written in full,
and the artifact's meta section records ``sampled_out`` — nothing is
silently dropped; the books always say how many traces were elided.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence

from .spans import Instant, Span

__all__ = ["SamplingConfig", "SamplePlan", "plan_sampling"]

#: Span attributes that mark a request as control-plane-touched.
_PROTECT_ATTRS = (
    "rerouted_to", "forced_cpu", "breaker_open", "abandoned", "truncated",
)

#: Instant categories that mark a request as carrying incident signal.
_PROTECT_CATEGORIES = ("fault", "breaker", "brownout")


@dataclass(frozen=True)
class SamplingConfig:
    """One sampling policy: keep ``keep_fraction`` of unprotected
    request traces, decided by a hash seeded with ``seed``."""

    keep_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")


def _hash_keep(seed: int, request_id: int, fraction: float) -> bool:
    """Pure, platform-independent keep decision for one request."""
    digest = zlib.crc32(f"{seed}:{request_id}".encode("ascii"))
    return (digest % 1_000_000) / 1_000_000.0 < fraction


@dataclass(frozen=True)
class SamplePlan:
    """The resolved keep set for one run's artifact."""

    keep_fraction: float
    seed: int
    kept: FrozenSet[int]
    sampled_out: int
    protected: int

    def keeps(self, request_id: int) -> bool:
        """Whether rows of this request id survive (run-scoped rows —
        ``request_id < 0`` — always do)."""
        return request_id < 0 or request_id in self.kept

    def to_meta(self) -> Dict[str, object]:
        return {
            "keep_fraction": self.keep_fraction,
            "seed": self.seed,
            "kept": len(self.kept),
            "sampled_out": self.sampled_out,
            "protected": self.protected,
        }


def plan_sampling(
    source,
    config: SamplingConfig,
    alerts: Sequence[object] = (),
) -> SamplePlan:
    """Decide which request traces an artifact write retains.

    ``source`` is a live Telemetry or a loaded RunArtifact; ``alerts``
    is the run's alert timeline (fired alerts protect every request
    whose client span overlaps their slow window).
    """
    spans: Sequence[Span] = source.spans
    instants: Sequence[Instant] = source.instants

    all_ids = {s.request_id for s in spans if s.request_id >= 0}
    all_ids.update(i.request_id for i in instants if i.request_id >= 0)

    protected = set()
    alert_ranges = [
        (alert.time - alert.span_s, alert.time)
        for alert in alerts
        if getattr(alert, "state", "") == "fire"
    ]
    for span in spans:
        rid = span.request_id
        if rid < 0 or rid in protected:
            continue
        if (
            span.attrs.get("failed")
            or span.phase == "recovery"
            or any(span.attrs.get(key) for key in _PROTECT_ATTRS)
        ):
            protected.add(rid)
            continue
        if span.category == "client" and span.end is not None and any(
            span.start <= hi and span.end >= lo
            for lo, hi in alert_ranges
        ):
            protected.add(rid)
    for inst in instants:
        if inst.request_id >= 0 and inst.category in _PROTECT_CATEGORIES:
            protected.add(inst.request_id)

    kept = set(protected)
    for rid in all_ids:
        if rid not in kept and _hash_keep(
            config.seed, rid, config.keep_fraction
        ):
            kept.add(rid)

    return SamplePlan(
        keep_fraction=config.keep_fraction,
        seed=config.seed,
        kept=frozenset(kept),
        sampled_out=len(all_ids) - len(kept),
        protected=len(protected & all_ids),
    )
