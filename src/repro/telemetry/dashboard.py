"""The SLO dashboard: one SVG of a run's windowed health, alerts marked.

``python -m repro.telemetry dashboard run.jsonl -o dash.svg`` renders
the observation plane's time-series view with zero dependencies beyond
the in-tree SVG primitives (:mod:`repro.eval.plot`) — four panels on
one canvas:

* per-tenant windowed tail latency (the highest configured rollup
  quantile, usually p99) against the SLO;
* per-tenant goodput (completions inside SLO per second);
* per-tenant queue depth (time-weighted window means);
* per-site busy fraction (DRX units, CPU fallback, accelerators).

Every burn-rate alert transition is overlaid on the latency and goodput
panels as a dashed vertical marker (``FIRE``/``clr`` + tenant), so the
eye goes straight from "the alert fired here" to "and here is the queue
ramp and the saturated site that caused it". Renders from a schema-2
artifact's own rollup/alert sections when present; otherwise the
observation pass runs on the fly with default windows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .alerts import observe_run
from .artifact import RunArtifact

__all__ = ["dashboard_panels", "render_dashboard"]


def _ms_points(
    series: Sequence[Tuple[float, float]], scale_y: float = 1.0
) -> List[Tuple[float, float]]:
    """Sim-time series → (ms, scaled value) points for plotting."""
    return [(t * 1e3, v * scale_y) for t, v in series]


def _tail_stat(quantiles: Sequence[float]) -> str:
    q = max(quantiles) if quantiles else 0.99
    return f"p{round(q * 100)}_s"


def dashboard_panels(artifact: RunArtifact) -> List[Dict[str, object]]:
    """The dashboard's panel specs (:func:`repro.eval.plot.compose_svg`
    input), from the artifact's observation sections or a fresh pass."""
    # Imported here: repro.eval pulls in repro.core, which imports this
    # package — a top-level import would be circular.
    from ..eval.plot import Series

    rollups = artifact.rollups
    alerts = list(artifact.alerts)
    if rollups is None:
        rollups, alerts = observe_run(artifact)

    markers: List[Tuple[float, str]] = [
        (
            alert.time * 1e3,
            f"{'FIRE' if alert.state == 'fire' else 'clr'} {alert.tenant}",
        )
        for alert in alerts
    ]

    tail = _tail_stat(rollups.quantiles)
    panels: List[Dict[str, object]] = []

    latency = [
        Series(tenant, _ms_points(
            rollups.series("tenant", tenant, tail), scale_y=1e3
        ))
        for tenant in rollups.keys("tenant")
        if rollups.series("tenant", tenant, tail)
    ]
    if rollups.slo_s is not None and latency:
        t_lo = min(x for s in latency for x, _ in s.points)
        t_hi = max(x for s in latency for x, _ in s.points)
        latency.append(Series("slo", [
            (t_lo, rollups.slo_s * 1e3), (t_hi, rollups.slo_s * 1e3),
        ]))
    if latency:
        panels.append({
            "series": latency,
            "title": f"windowed {tail[:-2]} per tenant",
            "xlabel": "sim time (ms)", "ylabel": "latency (ms)",
            "markers": markers,
        })

    goodput = [
        Series(tenant, _ms_points(
            rollups.series("tenant", tenant, "goodput_rps")
        ))
        for tenant in rollups.keys("tenant")
        if rollups.series("tenant", tenant, "goodput_rps")
    ]
    if goodput:
        panels.append({
            "series": goodput,
            "title": "goodput per tenant (inside SLO)",
            "xlabel": "sim time (ms)", "ylabel": "goodput (req/s)",
            "markers": markers,
        })

    depth = [
        Series(tenant, _ms_points(
            rollups.series("tenant", tenant, "queue_depth_mean")
        ))
        for tenant in rollups.keys("tenant")
        if rollups.series("tenant", tenant, "queue_depth_mean")
    ]
    if depth:
        panels.append({
            "series": depth,
            "title": "admission queue depth per tenant",
            "xlabel": "sim time (ms)", "ylabel": "depth (mean)",
        })

    busy = [
        Series(site, _ms_points(
            rollups.series("site", site, "utilization")
        ))
        for site in rollups.keys("site")
        if rollups.series("site", site, "utilization")
    ]
    if busy:
        panels.append({
            "series": busy,
            "title": "site busy fraction",
            "xlabel": "sim time (ms)", "ylabel": "utilization",
        })

    if not panels:
        raise ValueError(
            "artifact has no rollup series to draw "
            "(no client spans, gauges, or site spans)"
        )
    return panels


def render_dashboard(
    artifact: RunArtifact, out_path: str, cols: int = 2
) -> str:
    """Render the four-panel SLO dashboard SVG; returns ``out_path``."""
    from ..eval.plot import compose_svg

    return compose_svg(dashboard_panels(artifact), out_path, cols=cols)
