"""Metrics registry: counters, gauges, and histograms on simulated time.

The registry replaces ad-hoc per-run timeline lists with named,
labelled instruments:

* :class:`Counter` — monotonically increasing totals (requests admitted,
  retries, bytes moved);
* :class:`Gauge` — sampled time series on the sim clock (queue depths,
  in-flight window, utilizations), with time-weighted aggregation so
  bursty sampling periods don't bias means;
* :class:`Histogram` — fixed-bound bucket counts plus sum/count
  (client-observed latency distributions).

Instruments are keyed by ``(name, sorted labels)`` and kept in
insertion order; because the DES is deterministic, two equal-seed runs
produce byte-identical metric dumps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "time_weighted_mean",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Geometric latency buckets, 10 us .. 3 s (upper bounds, seconds).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0,
)


def time_weighted_mean(
    points: Sequence[Tuple[float, float]],
    end: Optional[float] = None,
) -> float:
    """Mean of a last-value-carried-forward time series.

    Each sample ``(t_i, v_i)`` holds until the next sample; the final
    sample extends to ``end`` (defaulting to the last sample time, where
    it then carries zero weight). Returns the plain average when the
    series spans zero time (e.g. a single sample).
    """
    if not points:
        return 0.0
    last_t = points[-1][0]
    horizon = last_t if end is None else max(end, last_t)
    span = horizon - points[0][0]
    if span <= 0:
        return sum(v for _, v in points) / len(points)
    total = 0.0
    for (t, v), (t_next, _) in zip(points, points[1:]):
        total += v * (t_next - t)
    total += points[-1][1] * (horizon - last_t)
    return total / span


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A sampled time series on the simulation clock."""

    __slots__ = ("name", "labels", "samples")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.samples: List[Tuple[float, float]] = []

    def sample(self, time: float, value: float) -> None:
        if self.samples and time < self.samples[-1][0]:
            raise ValueError(
                f"gauge {self.name}: sample time moved backwards"
            )
        self.samples.append((time, float(value)))

    def last(self) -> float:
        if not self.samples:
            raise ValueError(f"gauge {self.name}: no samples")
        return self.samples[-1][1]

    def max(self) -> float:
        if not self.samples:
            raise ValueError(f"gauge {self.name}: no samples")
        return max(v for _, v in self.samples)

    def time_weighted_mean(self, end: Optional[float] = None) -> float:
        return time_weighted_mean(self.samples, end=end)


class Histogram:
    """Fixed-bound bucket counts plus sum/count.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last bound land in the overflow bucket (``counts[-1]``).
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bounds must be ascending")
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, x: float) -> None:
        self.sum += x
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if x <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name}: empty")
        return self.sum / self.count


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create registry of labelled instruments."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple, Counter] = {}
        self._gauges: Dict[Tuple, Gauge] = {}
        self._histograms: Dict[Tuple, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        found = self._counters.get(key)
        if found is None:
            found = self._counters[key] = Counter(name, key[1])
        return found

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        found = self._gauges.get(key)
        if found is None:
            found = self._gauges[key] = Gauge(name, key[1])
        return found

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(name, key[1], bounds)
        return found

    # -- iteration (insertion order; deterministic under the DES) ------------

    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def gauges(self) -> Iterable[Gauge]:
        return self._gauges.values()

    def histograms(self) -> Iterable[Histogram]:
        return self._histograms.values()
