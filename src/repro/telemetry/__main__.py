"""Telemetry CLI: report, diff, and dashboard over run artifacts.

Usage::

    python -m repro.telemetry report RUN.jsonl              # text report
    python -m repro.telemetry report RUN.jsonl --format json
    python -m repro.telemetry report RUN.jsonl --validate   # schema check
    python -m repro.telemetry report RUN.jsonl --export trace.json
    python -m repro.telemetry diff BASELINE.jsonl CANDIDATE.jsonl
    python -m repro.telemetry diff A.jsonl B.jsonl --format json
    python -m repro.telemetry dashboard RUN.jsonl -o dash.svg
    python -m repro.telemetry verify RUN.jsonl              # invariants

The bare legacy form ``python -m repro.telemetry RUN.jsonl`` still
works — a first argument that is not a subcommand is treated as
``report``'s artifact path.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .artifact import load_artifact, validate_artifact
from .dashboard import render_dashboard
from .diff import diff_runs, render_diff
from .export import write_chrome_trace
from .report import render_report, report_dict

_COMMANDS = ("report", "diff", "dashboard", "verify")


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, indent=2)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy spelling: a leading artifact path implies `report`.
    if argv and argv[0] not in _COMMANDS and argv[0] not in ("-h", "--help"):
        argv.insert(0, "report")

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect, diff, and visualize telemetry run artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render one artifact's report (text or JSON)"
    )
    report.add_argument("artifact", help="path to the run artifact")
    report.add_argument(
        "--validate", action="store_true",
        help="schema-validate the artifact and exit (nonzero on problems)",
    )
    report.add_argument(
        "--export", metavar="PATH",
        help="write a Chrome/Perfetto trace JSON instead of a report",
    )
    report.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report output format (default text)",
    )
    report.add_argument(
        "--max-requests", type=int, default=4,
        help="number of per-request waterfalls to render (default 4)",
    )
    report.add_argument(
        "--width", type=int, default=40,
        help="waterfall bar width in characters (default 40)",
    )

    diff = sub.add_parser(
        "diff", help="differential diagnosis of two run artifacts"
    )
    diff.add_argument("baseline", help="artifact A (the reference run)")
    diff.add_argument("candidate", help="artifact B (the suspect run)")
    diff.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diff output format (default text)",
    )
    diff.add_argument(
        "--top", type=int, default=8,
        help="ranked regression/symptom rows to keep (default 8)",
    )

    dash = sub.add_parser(
        "dashboard", help="render the windowed SLO dashboard SVG"
    )
    dash.add_argument("artifact", help="path to the run artifact")
    dash.add_argument(
        "-o", "--out", default="dashboard.svg",
        help="output SVG path (default dashboard.svg)",
    )
    dash.add_argument(
        "--cols", type=int, default=2,
        help="panel grid columns (default 2)",
    )

    verify = sub.add_parser(
        "verify",
        help="run the conservation-invariant checker over artifacts",
    )
    verify.add_argument(
        "artifacts", nargs="+", help="run artifact path(s) to verify"
    )

    args = parser.parse_args(argv)

    if args.command == "report":
        if args.validate:
            problems = validate_artifact(args.artifact)
            if problems:
                for problem in problems:
                    print(f"INVALID: {problem}", file=sys.stderr)
                return 1
            print(f"{args.artifact}: valid (schema ok)")
            return 0
        artifact = load_artifact(args.artifact)
        if args.export:
            path = write_chrome_trace(args.export, artifact)
            print(f"wrote {path} ({len(artifact.spans)} spans) — "
                  f"open it at https://ui.perfetto.dev")
            return 0
        if args.format == "json":
            print(_dumps(report_dict(
                artifact, max_requests=args.max_requests
            )))
        else:
            print(render_report(
                artifact, max_waterfalls=args.max_requests,
                width=args.width,
            ))
        return 0

    if args.command == "diff":
        result = diff_runs(
            load_artifact(args.baseline),
            load_artifact(args.candidate),
            top=args.top,
            a_path=args.baseline,
            b_path=args.candidate,
        )
        if args.format == "json":
            print(_dumps(result))
        else:
            print(render_diff(result))
        return 0

    if args.command == "verify":
        # Imported lazily: telemetry must stay importable without the
        # resilience package (and without creating an import cycle).
        from ..resilience.invariants import verify_artifact_path

        failed = 0
        for path in args.artifacts:
            report = verify_artifact_path(path)
            print(report.render())
            if not report.ok:
                failed += 1
        return 1 if failed else 0

    # dashboard
    path = render_dashboard(
        load_artifact(args.artifact), args.out, cols=args.cols
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
