"""Report CLI: render, validate, and export run artifacts.

Usage::

    python -m repro.telemetry ARTIFACT.jsonl               # text report
    python -m repro.telemetry ARTIFACT.jsonl --max-requests 8
    python -m repro.telemetry ARTIFACT.jsonl --validate    # schema check
    python -m repro.telemetry ARTIFACT.jsonl --export trace.json
                                                           # Perfetto trace
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .artifact import load_artifact, validate_artifact
from .export import write_chrome_trace
from .report import render_report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect a telemetry run artifact (JSON-lines).",
    )
    parser.add_argument("artifact", help="path to the run artifact")
    parser.add_argument(
        "--validate", action="store_true",
        help="schema-validate the artifact and exit (nonzero on problems)",
    )
    parser.add_argument(
        "--export", metavar="PATH",
        help="write a Chrome/Perfetto trace JSON instead of a report",
    )
    parser.add_argument(
        "--max-requests", type=int, default=4,
        help="number of per-request waterfalls to render (default 4)",
    )
    parser.add_argument(
        "--width", type=int, default=40,
        help="waterfall bar width in characters (default 40)",
    )
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate_artifact(args.artifact)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{args.artifact}: valid (schema ok)")
        return 0

    artifact = load_artifact(args.artifact)
    if args.export:
        path = write_chrome_trace(args.export, artifact)
        print(f"wrote {path} ({len(artifact.spans)} spans) — "
              f"open it at https://ui.perfetto.dev")
        return 0

    print(render_report(
        artifact, max_waterfalls=args.max_requests, width=args.width
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
