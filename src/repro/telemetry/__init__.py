"""Always-on observability for the DMX reproduction.

The paper's evaluation is an *attribution* exercise — end-to-end time
split into kernel vs. restructuring vs. movement, per placement. This
package is the measurement substrate that makes the same attribution
possible on every simulated run without rerunning it:

* :mod:`repro.telemetry.spans` — hierarchical, causally-linked spans
  (request → stage → dma/drx/kernel/notify) emitted by the system
  model, the interconnect, the DRX devices, the fault plane, and the
  serving frontend;
* :mod:`repro.telemetry.metrics` — counters, gauges, and histograms
  sampled on simulated time (queue depths, utilizations, retries);
* :mod:`repro.telemetry.artifact` — deterministic JSON-lines run
  artifacts (``schema: 1``), byte-identical given equal seeds;
* :mod:`repro.telemetry.export` — Chrome trace-event / Perfetto
  exporter (open any run at ``ui.perfetto.dev``);
* :mod:`repro.telemetry.report` — per-request waterfalls, phase
  breakdown tables, and critical-path attribution;
* ``python -m repro.telemetry`` — the report CLI over artifacts.
"""

from .artifact import (
    SCHEMA_VERSION,
    RunArtifact,
    artifact_lines,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from .export import chrome_trace, write_chrome_trace
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    time_weighted_mean,
)
from .report import (
    IDLE_KEY,
    critical_path,
    critical_path_summary,
    on_critical_path,
    phase_totals,
    render_report,
    run_phase_totals,
    waterfall,
)
from .runtime import SpanContext, Telemetry
from .spans import ROOT_PARENT, ActiveSpan, Instant, Span, SpanTracker

__all__ = [
    "SCHEMA_VERSION",
    "RunArtifact",
    "artifact_lines",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
    "chrome_trace",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "time_weighted_mean",
    "DEFAULT_LATENCY_BUCKETS",
    "IDLE_KEY",
    "critical_path",
    "critical_path_summary",
    "on_critical_path",
    "phase_totals",
    "run_phase_totals",
    "render_report",
    "waterfall",
    "SpanContext",
    "Telemetry",
    "ROOT_PARENT",
    "ActiveSpan",
    "Instant",
    "Span",
    "SpanTracker",
]
