"""Always-on observability for the DMX reproduction.

The paper's evaluation is an *attribution* exercise — end-to-end time
split into kernel vs. restructuring vs. movement, per placement. This
package is the measurement substrate that makes the same attribution
possible on every simulated run without rerunning it:

* :mod:`repro.telemetry.spans` — hierarchical, causally-linked spans
  (request → stage → dma/drx/kernel/notify) emitted by the system
  model, the interconnect, the DRX devices, the fault plane, and the
  serving frontend;
* :mod:`repro.telemetry.metrics` — counters, gauges, and histograms
  sampled on simulated time (queue depths, utilizations, retries);
* :mod:`repro.telemetry.artifact` — deterministic JSON-lines run
  artifacts (``schema: 2``, v1 still loads), byte-identical given
  equal seeds;
* :mod:`repro.telemetry.export` — Chrome trace-event / Perfetto
  exporter (open any run at ``ui.perfetto.dev``), with rollup counter
  tracks and alert instants when the observation plane ran;
* :mod:`repro.telemetry.report` — per-request waterfalls, phase
  breakdown tables, and critical-path attribution;
* :mod:`repro.telemetry.rollup` / :mod:`repro.telemetry.alerts` — the
  SLO observation plane: windowed per-tenant/site/backend rollups and
  the multi-window burn-rate alert engine with root-cause attribution,
  both computed post hoc so arming them cannot perturb a run;
* :mod:`repro.telemetry.sampling` — deterministic head-based trace
  sampling that always keeps incident-relevant traces;
* :mod:`repro.telemetry.diff` / :mod:`repro.telemetry.dashboard` — the
  differential-diagnosis engine and the dependency-free SVG dashboard;
* ``python -m repro.telemetry`` — the report/diff/dashboard CLI.
"""

from .alerts import (
    AlertConfig,
    AlertEvent,
    ObservationConfig,
    evaluate_alerts,
    observe_run,
)
from .artifact import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    RunArtifact,
    artifact_lines,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from .dashboard import render_dashboard
from .diff import diff_runs, render_diff
from .export import chrome_trace, write_chrome_trace
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    time_weighted_mean,
)
from .report import (
    IDLE_KEY,
    critical_path,
    critical_path_summary,
    on_critical_path,
    phase_totals,
    render_report,
    report_dict,
    run_phase_totals,
    site_critical_path,
    site_critical_path_summary,
    waterfall,
)
from .rollup import RollupConfig, RollupWindow, RunRollups, compute_rollups
from .runtime import SpanContext, Telemetry
from .sampling import SamplePlan, SamplingConfig, plan_sampling
from .spans import ROOT_PARENT, ActiveSpan, Instant, Span, SpanTracker

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "RunArtifact",
    "artifact_lines",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
    "chrome_trace",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "time_weighted_mean",
    "DEFAULT_LATENCY_BUCKETS",
    "IDLE_KEY",
    "critical_path",
    "critical_path_summary",
    "on_critical_path",
    "phase_totals",
    "run_phase_totals",
    "render_report",
    "report_dict",
    "site_critical_path",
    "site_critical_path_summary",
    "waterfall",
    "RollupConfig",
    "RollupWindow",
    "RunRollups",
    "compute_rollups",
    "AlertConfig",
    "AlertEvent",
    "ObservationConfig",
    "evaluate_alerts",
    "observe_run",
    "SamplingConfig",
    "SamplePlan",
    "plan_sampling",
    "diff_runs",
    "render_diff",
    "render_dashboard",
    "SpanContext",
    "Telemetry",
    "ROOT_PARENT",
    "ActiveSpan",
    "Instant",
    "Span",
    "SpanTracker",
]
