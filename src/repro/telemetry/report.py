"""Run-artifact reports: waterfalls, phase tables, critical-path attribution.

Three questions this module answers from one run artifact, without
rerunning the simulation:

* **Where did each request's time go?** — :func:`waterfall` renders a
  request's span tree as an indented text timeline.
* **Do the phase books balance?** — :func:`phase_totals` recomputes the
  kernel/restructuring/movement/control(/recovery) breakdown purely
  from spans; it reconciles exactly with
  :meth:`~repro.core.system.RunResult.phase_totals` because the system
  emits phase spans at the same clock reads it feeds its accumulators.
* **What was each request actually waiting on?** — :func:`critical_path`
  sweeps a request's leaf spans and attributes every instant of the
  request's wall time to the most recently started active leaf — the
  operation actually making (or blocking) progress. Summed over a run
  this is the attribution the paper builds its argument on: with DMX,
  restructuring falls off the request critical path; with CPU
  restructuring it *is* the critical path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .artifact import RunArtifact
from .spans import ROOT_PARENT, Span

__all__ = [
    "phase_totals",
    "run_phase_totals",
    "backend_attribution",
    "critical_path",
    "critical_path_summary",
    "site_critical_path",
    "site_critical_path_summary",
    "on_critical_path",
    "waterfall",
    "render_report",
    "report_dict",
    "IDLE_KEY",
]

#: Attribution key for request wall time not covered by any leaf span.
IDLE_KEY = "idle"

#: Critical-path share below which a phase is considered off the path.
DEFAULT_ON_PATH_THRESHOLD = 0.10


def phase_totals(
    spans: Sequence[Span], include_abandoned: bool = False
) -> Dict[str, float]:
    """Total seconds per phase, from phase-carrying spans only.

    Spans with an empty ``phase`` add causal detail *under* a phase span
    (e.g. the DMA legs inside movement) and are skipped so nothing
    double-counts; abandoned spans (timed-out DRX attempts re-billed to
    recovery) are skipped unless asked for.
    """
    out: Dict[str, float] = {}
    for span in spans:
        if not span.phase:
            continue
        if span.abandoned and not include_abandoned:
            continue
        out[span.phase] = out.get(span.phase, 0.0) + span.duration
    return out


def run_phase_totals(artifact: RunArtifact) -> Dict[str, float]:
    """Phase totals across every request in the artifact."""
    return phase_totals(artifact.spans)


def backend_attribution(artifact: RunArtifact) -> Dict[str, Dict[str, float]]:
    """Per-backend phased time: ``{backend: {phase: seconds}}``.

    Motion spans carry a ``backend`` attribute when the per-leg planner
    routed them; every phased descendant (movement, restructuring,
    control, recovery) of such a span is charged to that backend — the
    backend that *planned* the leg, so a leg that fell back to CPU still
    bills its recovery and degraded execution to the planned backend.
    Empty for planner-free runs. Because every non-kernel phase span the
    system emits lives under a motion span, per-phase sums across
    backends reconcile with :func:`run_phase_totals` exactly (kernel
    phase excepted — kernels are not motion legs).
    """
    children: Dict[int, List[Span]] = {}
    for span in artifact.spans:
        children.setdefault(span.parent_id, []).append(span)

    def collect(span_id: int, bucket: Dict[str, float]) -> None:
        for child in children.get(span_id, []):
            if child.phase and not child.abandoned:
                bucket[child.phase] = (
                    bucket.get(child.phase, 0.0) + child.duration
                )
            collect(child.span_id, bucket)

    out: Dict[str, Dict[str, float]] = {}
    for span in artifact.spans:
        backend = span.attrs.get("backend")
        if span.category != "stage" or not backend:
            continue
        collect(span.span_id, out.setdefault(str(backend), {}))
    return out


def _tree(
    spans: Sequence[Span],
) -> Tuple[Dict[int, Span], Dict[int, List[Span]], List[Span]]:
    """(by-id, children-by-parent, roots) for one request's spans.

    A span whose parent is not in the set (e.g. the system request span
    when the artifact is filtered) counts as a root.
    """
    by_id = {s.span_id: s for s in spans}
    children: Dict[int, List[Span]] = {}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id != ROOT_PARENT and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s.start, s.span_id))
    roots.sort(key=lambda s: (s.start, s.span_id))
    return by_id, children, roots


def _effective_phase(span: Span, by_id: Dict[int, Span]) -> str:
    """The span's phase, inherited from the nearest phased ancestor."""
    cursor: Optional[Span] = span
    while cursor is not None:
        if cursor.phase:
            return cursor.phase
        cursor = by_id.get(cursor.parent_id)
    return span.category or "other"


def _effective_actor(span: Span, by_id: Dict[int, Span]) -> str:
    """The span's actor, inherited from the nearest actor-carrying
    ancestor (empty when no ancestor names one)."""
    cursor: Optional[Span] = span
    while cursor is not None:
        if cursor.actor:
            return cursor.actor
        cursor = by_id.get(cursor.parent_id)
    return ""


def _leaf_attribution(spans: Sequence[Span], key_of) -> Dict[str, float]:
    """The critical-path sweep, parameterized over the attribution key.

    At every instant of the request extent the *most recently started*
    active leaf span is charged (ties broken by span id — the later
    creation); ``key_of(leaf, by_id)`` names the bucket. Time no leaf
    covers is charged to :data:`IDLE_KEY`. Abandoned spans are excluded
    — their wall time is covered by the recovery span the system emits
    when it degrades a request.
    """
    live = [s for s in spans if not s.abandoned]
    if not live:
        return {}
    by_id, children, _roots = _tree(live)
    leaves = [s for s in live if s.span_id not in children]
    t0 = min(s.start for s in live)
    t1 = max(s.end for s in live)
    bounds = sorted({t0, t1, *(s.start for s in leaves),
                     *(s.end for s in leaves)})
    out: Dict[str, float] = {}
    for a, b in zip(bounds, bounds[1:]):
        if b <= t0 or a >= t1:
            continue
        active = [s for s in leaves if s.start <= a and s.end >= b]
        if active:
            winner = max(active, key=lambda s: (s.start, s.span_id))
            key = key_of(winner, by_id)
        else:
            key = IDLE_KEY
        out[key] = out.get(key, 0.0) + (b - a)
    return out


def critical_path(spans: Sequence[Span]) -> Dict[str, float]:
    """Attribute one request's wall time to phases via its leaf spans.

    The leaf-sweep of :func:`_leaf_attribution` keyed by each leaf's
    inherited phase — the attribution the paper's argument rides on.
    """
    return _leaf_attribution(spans, _effective_phase)


def site_critical_path(spans: Sequence[Span]) -> Dict[str, float]:
    """Critical-path attribution keyed ``phase@site``.

    Same sweep as :func:`critical_path`, but each winning leaf is
    charged to ``{inherited phase}@{inherited actor}`` (bare phase when
    no ancestor names an actor) — so a p99 burn can be pinned not just
    to *restructuring* but to ``restructuring@drx.acc0.0`` vs. the CPU
    fallback path. This is the root-cause key the alert engine and the
    diff CLI rank by.
    """

    def key_of(span: Span, by_id: Dict[int, Span]) -> str:
        phase = _effective_phase(span, by_id)
        actor = _effective_actor(span, by_id)
        return f"{phase}@{actor}" if actor else phase

    return _leaf_attribution(spans, key_of)


def critical_path_summary(artifact: RunArtifact) -> Dict[str, float]:
    """Critical-path attribution summed over every request in a run."""
    out: Dict[str, float] = {}
    for request_id in artifact.request_ids():
        for key, seconds in critical_path(
            artifact.spans_for_request(request_id)
        ).items():
            out[key] = out.get(key, 0.0) + seconds
    return out


def site_critical_path_summary(artifact: RunArtifact) -> Dict[str, float]:
    """``phase@site`` attribution summed over every request in a run."""
    out: Dict[str, float] = {}
    for request_id in artifact.request_ids():
        for key, seconds in site_critical_path(
            artifact.spans_for_request(request_id)
        ).items():
            out[key] = out.get(key, 0.0) + seconds
    return out


def on_critical_path(
    attribution: Dict[str, float],
    phase: str,
    threshold: float = DEFAULT_ON_PATH_THRESHOLD,
) -> bool:
    """Whether ``phase`` carries at least ``threshold`` of the attributed
    time — the report's operational definition of "on the critical path"."""
    total = sum(attribution.values())
    if total <= 0:
        return False
    return attribution.get(phase, 0.0) / total >= threshold


# -- text rendering ------------------------------------------------------------


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.3f}us"


def waterfall(spans: Sequence[Span], width: int = 40) -> str:
    """Render one request's span tree as an indented text timeline."""
    if not spans:
        return "(no spans)"
    by_id, children, roots = _tree(list(spans))
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = max(t1 - t0, 1e-12)
    scale = width / extent
    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        left = int((span.start - t0) * scale)
        bar_len = max(1, int(round(span.duration * scale)))
        bar_len = min(bar_len, width - min(left, width - 1))
        bar = "·" * left + "█" * bar_len
        bar = bar[:width].ljust(width, "·")
        label = "  " * depth + span.name
        tag = span.phase or span.category
        flag = " !" if span.abandoned else ""
        lines.append(
            f"  {label:<34.34} {tag:<13.13} "
            f"+{_fmt_s(span.start - t0)} {_fmt_s(span.duration)} "
            f"|{bar}|{flag}"
        )
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    return "\n".join(lines)


def _table(rows: List[Tuple[str, float]], total: float) -> List[str]:
    lines = []
    for key, seconds in sorted(rows, key=lambda r: -r[1]):
        share = seconds / total if total > 0 else 0.0
        lines.append(f"  {key:<16} {_fmt_s(seconds)}  {share:6.1%}")
    return lines


def render_report(
    artifact: RunArtifact,
    max_waterfalls: int = 4,
    width: int = 40,
) -> str:
    """The full text report for one artifact."""
    lines: List[str] = []
    meta = artifact.meta
    header = " ".join(
        f"{key}={meta[key]}" for key in sorted(meta) if not isinstance(
            meta[key], (dict, list)
        )
    )
    lines.append(f"run artifact (schema {artifact.schema})")
    if header:
        lines.append(f"  {header}")
    request_ids = artifact.request_ids()
    lines.append(
        f"  spans={len(artifact.spans)} instants={len(artifact.instants)} "
        f"requests={len(request_ids)}"
    )

    totals = run_phase_totals(artifact)
    grand = sum(totals.values())
    lines.append("")
    lines.append("phase breakdown (all requests)")
    lines.extend(_table(list(totals.items()), grand))

    backends = backend_attribution(artifact)
    if backends:
        # Only planner-armed runs carry backend attrs on motion spans;
        # planner-free artifacts keep the report unchanged.
        lines.append("")
        lines.append("backend attribution (planner-routed motion legs)")
        for kind in sorted(backends):
            per_phase = backends[kind]
            total = sum(per_phase.values())
            detail = "  ".join(
                f"{phase}={seconds * 1e3:.3f}ms"
                for phase, seconds in sorted(per_phase.items())
            )
            lines.append(f"  {kind:<8} {_fmt_s(total)}  {detail}")

    attribution = critical_path_summary(artifact)
    attributed = sum(attribution.values())
    lines.append("")
    lines.append("critical-path attribution (what requests waited on)")
    for key, seconds in sorted(attribution.items(), key=lambda r: -r[1]):
        share = seconds / attributed if attributed > 0 else 0.0
        marker = "on  path" if on_critical_path(attribution, key) \
            else "off path"
        lines.append(f"  {key:<16} {_fmt_s(seconds)}  {share:6.1%}  {marker}")

    alerts = getattr(artifact, "alerts", None) or []
    if alerts:
        # Only observation-armed artifacts carry an alert timeline;
        # plain artifacts keep the report unchanged.
        lines.append("")
        lines.append("alert timeline (burn-rate engine)")
        for alert in alerts:
            if alert.state == "fire":
                lines.append(
                    f"  +{_fmt_s(alert.time).strip():>10} FIRE  "
                    f"tenant={alert.tenant} fast={alert.fast_burn:.2f}x "
                    f"slow={alert.slow_burn:.2f}x — {alert.describe()}"
                )
            else:
                lines.append(
                    f"  +{_fmt_s(alert.time).strip():>10} clear "
                    f"tenant={alert.tenant}"
                )

    control = [
        i for i in artifact.instants
        if i.category in ("breaker", "brownout", "controller")
    ]
    if control:
        # Only runs with the resilience control plane armed carry these
        # events; quiet runs keep the report unchanged.
        lines.append("")
        lines.append("control-plane events (breakers, brownout, controller)")
        shown = 24
        for instant in control[:shown]:
            attrs = " ".join(
                f"{key}={instant.attrs[key]}"
                for key in sorted(instant.attrs)
            )
            target = f" {instant.actor}" if instant.actor else ""
            lines.append(
                f"  +{_fmt_s(instant.time).strip():>10}"
                f" {instant.name:<20}{target}"
                f"{'  ' + attrs if attrs else ''}"
            )
        if len(control) > shown:
            counts: Dict[str, int] = {}
            for instant in control[shown:]:
                counts[instant.name] = counts.get(instant.name, 0) + 1
            rest = "  ".join(
                f"{name} x{count}" for name, count in sorted(counts.items())
            )
            lines.append(f"  ... {len(control) - shown} more: {rest}")

    for request_id in request_ids[:max_waterfalls]:
        spans = artifact.spans_for_request(request_id)
        req_totals = phase_totals(spans)
        lines.append("")
        lines.append(
            f"request {request_id} waterfall "
            f"(wall {_fmt_s(max(s.end for s in spans) - min(s.start for s in spans)).strip()})"
        )
        lines.append(waterfall(spans, width=width))
        lines.append("  phases: " + "  ".join(
            f"{k}={v * 1e3:.3f}ms" for k, v in sorted(req_totals.items())
        ))
    if len(request_ids) > max_waterfalls:
        lines.append("")
        lines.append(
            f"... {len(request_ids) - max_waterfalls} more requests "
            f"(rerun with --max-requests to see them)"
        )
    return "\n".join(lines)


# -- machine-readable report ---------------------------------------------------


def _waterfall_rows(spans: Sequence[Span]) -> List[Dict[str, object]]:
    """One request's span tree flattened in waterfall render order."""
    _by_id, children, roots = _tree(list(spans))
    rows: List[Dict[str, object]] = []

    def render(span: Span, depth: int) -> None:
        rows.append({
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": depth,
            "name": span.name,
            "category": span.category,
            "actor": span.actor,
            "phase": span.phase,
            "start": span.start,
            "end": span.end,
            "attrs": dict(span.attrs),
        })
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    return rows


def report_dict(
    artifact: RunArtifact, max_requests: int = 4
) -> Dict[str, object]:
    """Every report section as one JSON-able dict.

    The machine-readable twin of :func:`render_report` — the diff CLI
    and CI consume exactly the sections humans read: phase tables,
    backend and critical-path attribution (phase- and site-keyed),
    control-plane events, the alert timeline, and per-request waterfall
    rows. Keys are stable and values are raw sim-time floats, so equal
    runs serialize identically under ``json.dumps(sort_keys=True)``.
    """
    request_ids = artifact.request_ids()
    alerts = getattr(artifact, "alerts", None) or []
    rollups = getattr(artifact, "rollups", None)
    requests = []
    for request_id in request_ids[:max_requests]:
        spans = artifact.spans_for_request(request_id)
        requests.append({
            "request_id": request_id,
            "wall_s": (
                max(s.end for s in spans) - min(s.start for s in spans)
            ),
            "phases_s": phase_totals(spans),
            "waterfall": _waterfall_rows(spans),
        })
    out: Dict[str, object] = {
        "schema": artifact.schema,
        "meta": dict(artifact.meta),
        "counts": {
            "spans": len(artifact.spans),
            "instants": len(artifact.instants),
            "requests": len(request_ids),
        },
        "phase_totals_s": run_phase_totals(artifact),
        "backend_attribution_s": backend_attribution(artifact),
        "critical_path_s": critical_path_summary(artifact),
        "site_critical_path_s": site_critical_path_summary(artifact),
        "control_plane_events": [
            {
                "time": i.time,
                "name": i.name,
                "category": i.category,
                "actor": i.actor,
                "request_id": i.request_id,
                "attrs": dict(i.attrs),
            }
            for i in artifact.instants
            if i.category in ("breaker", "brownout", "controller")
        ],
        "alerts": [alert.to_row() for alert in alerts],
        "requests": requests,
    }
    if rollups is not None:
        out["rollups"] = {
            "window_s": rollups.window_s,
            "slo_s": rollups.slo_s,
            "scopes": {
                scope: rollups.keys(scope)
                for scope in ("tenant", "site", "backend")
                if rollups.keys(scope)
            },
        }
    sampling = getattr(artifact, "sampling", None)
    if sampling is not None:
        out["sampling"] = dict(sampling)
    return out
