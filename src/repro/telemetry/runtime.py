"""The always-on :class:`Telemetry` facade and span-context plumbing.

One :class:`Telemetry` instance rides on each
:class:`~repro.core.system.DMXSystem` (and is shared by the serving
frontend driving it). It bundles the span tracker and the metrics
registry behind one object that model components accept, and adds the
:class:`SpanContext` value that call chains thread downward so leaf
components (DMA engine, notification model, DRX device) can attach
their spans under the right parent without knowing about the system.

``Telemetry(sim, enabled=False)`` turns every recording call into a
no-op — used by the overhead measurement; the default is always-on.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import ActiveSpan, Instant, Span, SpanTracker, _parent_id

__all__ = ["Telemetry", "SpanContext"]

#: A dummy span handed out while telemetry is disabled.
_NULL_SPAN = ActiveSpan(-1, -1, -1, "", "", "", "", 0.0, 0.0, {})


class Telemetry:
    """Span tracker + metrics registry for one simulated run."""

    def __init__(self, sim, enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        self.tracker = SpanTracker(sim)
        self.metrics = MetricsRegistry()
        if enabled:
            # Recording is on the DES hot path; while enabled, skip the
            # gate methods below and dispatch straight to the tracker.
            self.begin = self.tracker.begin
            self.end = self.tracker.end
            self.add = self.tracker.add
            self.instant = self.tracker.instant
            self.mark_abandoned = self.tracker.mark_abandoned
            self.finalize = self.tracker.finalize

    # -- span API ------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        return self.tracker.spans

    @property
    def instants(self) -> List[Instant]:
        return self.tracker.instants

    def begin(
        self,
        name: str,
        category: str,
        actor: str = "",
        parent: Union[int, ActiveSpan, Span, None] = None,
        request_id: int = -1,
        phase: str = "",
        start: Optional[float] = None,
        **attrs: object,
    ) -> ActiveSpan:
        if not self.enabled:
            return _NULL_SPAN
        return self.tracker.begin(
            name, category, actor=actor, parent=parent,
            request_id=request_id, phase=phase, start=start, **attrs,
        )

    def end(self, span: ActiveSpan, **attrs: object) -> Optional[Span]:
        if not self.enabled or span is _NULL_SPAN:
            return None
        return self.tracker.end(span, **attrs)

    def add(self, *args, **kwargs) -> Optional[Span]:
        if not self.enabled:
            return None
        return self.tracker.add(*args, **kwargs)

    def instant(self, *args, **kwargs) -> Optional[Instant]:
        if not self.enabled:
            return None
        return self.tracker.instant(*args, **kwargs)

    def mark_abandoned(self, root: Union[int, ActiveSpan, Span]) -> int:
        if not self.enabled or root is _NULL_SPAN:
            return 0
        return self.tracker.mark_abandoned(root)

    def finalize(self) -> int:
        """Close straggling open spans; call after the DES drains."""
        if not self.enabled:
            return 0
        return self.tracker.finalize()

    def wrap(
        self,
        op: Generator,
        name: str,
        category: str,
        actor: str = "",
        parent: Union[int, ActiveSpan, Span, None] = None,
        request_id: int = -1,
        phase: str = "",
        **attrs: object,
    ) -> Generator:
        """Run process ``op`` under a span (closed even on interrupt)."""
        span = self.begin(
            name, category, actor=actor, parent=parent,
            request_id=request_id, phase=phase, **attrs,
        )
        try:
            result = yield from op
        except BaseException:
            self.end(span, abandoned=True)
            raise
        self.end(span)
        return result

    # -- metrics API -----------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self.metrics.histogram(name, **labels)

    def sample_gauge(self, name: str, value: float, **labels: str) -> None:
        """Record one gauge sample at the current sim time."""
        if not self.enabled:
            return
        self.metrics.gauge(name, **labels).sample(self.sim.now, value)

    def context(
        self,
        parent: Union[int, ActiveSpan, Span, None] = None,
        request_id: int = -1,
    ) -> "SpanContext":
        return SpanContext(self, _parent_id(parent), request_id)


class SpanContext:
    """Where a component's spans should attach: telemetry + parent +
    request. Passed down call chains (system → dma/notify/drx)."""

    __slots__ = ("telemetry", "parent_id", "request_id")

    def __init__(
        self,
        telemetry: Telemetry,
        parent_id: int = -1,
        request_id: int = -1,
    ) -> None:
        self.telemetry = telemetry
        self.parent_id = parent_id
        self.request_id = request_id

    def begin(
        self, name: str, category: str, actor: str = "",
        phase: str = "", **attrs: object,
    ) -> ActiveSpan:
        return self.telemetry.begin(
            name, category, actor=actor, parent=self.parent_id,
            request_id=self.request_id, phase=phase, **attrs,
        )

    def end(self, span: ActiveSpan, **attrs: object) -> Optional[Span]:
        return self.telemetry.end(span, **attrs)

    def child(self, span: Union[int, ActiveSpan, Span]) -> "SpanContext":
        return SpanContext(
            self.telemetry,
            span if type(span) is int else span.span_id,
            self.request_id,
        )
