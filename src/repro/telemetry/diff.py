"""Differential run diagnosis: what regressed between artifact A and B.

``python -m repro.telemetry diff A B`` answers the question every perf
triage starts with: *two runs of the same workload disagree — which
subsystem moved?* The engine compares two loaded artifacts and emits a
**ranked regression report**:

* the primary ranking is over ``phase@site`` critical-path keys
  (:func:`repro.telemetry.report.site_critical_path_summary`),
  normalized **per request** so runs with different request counts
  compare fairly. Queue wait and idle time are *symptoms* of whatever
  actually slowed down — they are reported in their own section and
  never ranked as causes, so an injected DRX kernel-launch regression
  outranks the queueing it induces;
* phase totals, per-backend attribution, and per-tenant latency
  percentile curves ride along as supporting evidence;
* both alert timelines are included — a regression big enough to burn
  the SLO budget shows up as new ``fire`` events on the B side.

Everything is plain JSON-able data with stable keys; the text renderer
is a view over the same dict the ``--format json`` path dumps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.tracing import exact_percentile
from .alerts import SYMPTOM_PHASES
from .artifact import RunArtifact
from .report import (
    backend_attribution,
    run_phase_totals,
    site_critical_path_summary,
)

__all__ = ["diff_runs", "render_diff"]

#: Latency quantiles the per-tenant percentile-curve section compares.
_CURVE_QUANTILES = (0.50, 0.90, 0.95, 0.99)

#: Per-request deltas below this (seconds) are float-summation noise,
#: not regressions — real effects in the sim are microseconds and up.
_NOISE_FLOOR_S = 1e-12


def _per_request(
    attribution: Dict[str, float], n_requests: int
) -> Dict[str, float]:
    if n_requests <= 0:
        return {}
    return {key: value / n_requests for key, value in attribution.items()}


def _tenant_latencies(artifact: RunArtifact) -> Dict[str, List[float]]:
    """Sorted non-failed client latencies per tenant."""
    out: Dict[str, List[float]] = {}
    for span in artifact.spans:
        if span.category != "client" or span.attrs.get("failed"):
            continue
        tenant = str(span.attrs.get("tenant") or span.actor)
        out.setdefault(tenant, []).append(span.duration)
    for latencies in out.values():
        latencies.sort()
    return out


def _side_summary(
    artifact: RunArtifact, label: str, path: Optional[str]
) -> Dict[str, object]:
    return {
        "label": label,
        "path": path or "",
        "schema": artifact.schema,
        "meta": dict(artifact.meta),
        "requests": len(artifact.request_ids()),
        "alerts_fired": sum(
            1 for a in artifact.alerts if a.state == "fire"
        ),
    }


def diff_runs(
    a: RunArtifact,
    b: RunArtifact,
    top: int = 8,
    a_path: Optional[str] = None,
    b_path: Optional[str] = None,
) -> Dict[str, object]:
    """Compare two run artifacts; returns the ranked regression report.

    Positive deltas mean *B is slower / worse than A* — the CLI
    convention is ``diff baseline candidate``. ``top`` caps the ranked
    cause and symptom lists.
    """
    n_a = len(a.request_ids())
    n_b = len(b.request_ids())
    site_a = _per_request(site_critical_path_summary(a), n_a)
    site_b = _per_request(site_critical_path_summary(b), n_b)

    causes: List[Dict[str, object]] = []
    symptoms: List[Dict[str, object]] = []
    for key in sorted({*site_a, *site_b}):
        av = site_a.get(key, 0.0)
        bv = site_b.get(key, 0.0)
        phase, _, site = key.partition("@")
        entry: Dict[str, object] = {
            "key": key,
            "phase": phase,
            "site": site,
            "a_per_request_s": av,
            "b_per_request_s": bv,
            "delta_per_request_s": bv - av,
            "relative": (bv - av) / av if av > 0 else None,
        }
        (symptoms if phase in SYMPTOM_PHASES else causes).append(entry)
    rank = lambda rows: sorted(  # noqa: E731 — local ordering helper
        rows,
        key=lambda r: (-r["delta_per_request_s"], r["key"]),
    )
    causes = rank(causes)[:top]
    symptoms = rank(symptoms)[:top]

    phases_a = _per_request(run_phase_totals(a), n_a)
    phases_b = _per_request(run_phase_totals(b), n_b)
    phase_rows = {
        phase: {
            "a_per_request_s": phases_a.get(phase, 0.0),
            "b_per_request_s": phases_b.get(phase, 0.0),
            "delta_per_request_s": (
                phases_b.get(phase, 0.0) - phases_a.get(phase, 0.0)
            ),
        }
        for phase in sorted({*phases_a, *phases_b})
    }

    be_a = {
        kind: sum(per_phase.values()) / n_a if n_a else 0.0
        for kind, per_phase in backend_attribution(a).items()
    }
    be_b = {
        kind: sum(per_phase.values()) / n_b if n_b else 0.0
        for kind, per_phase in backend_attribution(b).items()
    }
    backend_rows = {
        kind: {
            "a_per_request_s": be_a.get(kind, 0.0),
            "b_per_request_s": be_b.get(kind, 0.0),
            "delta_per_request_s": (
                be_b.get(kind, 0.0) - be_a.get(kind, 0.0)
            ),
        }
        for kind in sorted({*be_a, *be_b})
    }

    lat_a = _tenant_latencies(a)
    lat_b = _tenant_latencies(b)
    curves: Dict[str, List[Dict[str, object]]] = {}
    for tenant in sorted({*lat_a, *lat_b}):
        points = []
        for q in _CURVE_QUANTILES:
            av = (
                exact_percentile(lat_a[tenant], q)
                if lat_a.get(tenant) else None
            )
            bv = (
                exact_percentile(lat_b[tenant], q)
                if lat_b.get(tenant) else None
            )
            points.append({
                "q": q,
                "a_s": av,
                "b_s": bv,
                "delta_s": (
                    bv - av if av is not None and bv is not None else None
                ),
            })
        curves[tenant] = points

    verdict: Dict[str, object] = {"top_regression": "", "delta_per_request_s": 0.0}
    if causes and causes[0]["delta_per_request_s"] > _NOISE_FLOOR_S:
        verdict = {
            "top_regression": causes[0]["key"],
            "delta_per_request_s": causes[0]["delta_per_request_s"],
        }

    return {
        "a": _side_summary(a, "A (baseline)", a_path),
        "b": _side_summary(b, "B (candidate)", b_path),
        "verdict": verdict,
        "regressions": causes,
        "symptoms": symptoms,
        "phase_totals": phase_rows,
        "backends": backend_rows,
        "percentiles": curves,
        "alerts": {
            "a": [alert.to_row() for alert in a.alerts],
            "b": [alert.to_row() for alert in b.alerts],
        },
    }


# -- text rendering ------------------------------------------------------------


def _ms(value: Optional[float]) -> str:
    if value is None:
        return "      —"
    return f"{value * 1e3:9.4f}"


def render_diff(report: Dict[str, object]) -> str:
    """Human-readable view of one :func:`diff_runs` report."""
    lines: List[str] = []
    a = report["a"]
    b = report["b"]
    for side in (a, b):
        where = f" {side['path']}" if side["path"] else ""
        lines.append(
            f"{side['label']}:{where} requests={side['requests']} "
            f"alerts_fired={side['alerts_fired']}"
        )
    verdict = report["verdict"]
    lines.append("")
    if verdict["top_regression"]:
        lines.append(
            f"verdict: {verdict['top_regression']} regressed by "
            f"{verdict['delta_per_request_s'] * 1e3:.4f}ms per request"
        )
    else:
        lines.append("verdict: no per-request regression detected")

    lines.append("")
    lines.append("ranked regressions (phase@site, per request; ms)")
    lines.append(f"  {'key':<36} {'A':>9} {'B':>9} {'delta':>9}  rel")
    for row in report["regressions"]:
        rel = (
            f"{row['relative']:+.1%}" if row["relative"] is not None
            else "new"
        )
        lines.append(
            f"  {row['key']:<36} {_ms(row['a_per_request_s'])} "
            f"{_ms(row['b_per_request_s'])} "
            f"{_ms(row['delta_per_request_s'])}  {rel}"
        )
    if report["symptoms"]:
        lines.append("")
        lines.append("symptoms (queue/idle — effects, not causes; ms)")
        for row in report["symptoms"]:
            lines.append(
                f"  {row['key']:<36} {_ms(row['a_per_request_s'])} "
                f"{_ms(row['b_per_request_s'])} "
                f"{_ms(row['delta_per_request_s'])}"
            )

    lines.append("")
    lines.append("phase totals (per request; ms)")
    for phase, row in report["phase_totals"].items():
        lines.append(
            f"  {phase:<16} {_ms(row['a_per_request_s'])} "
            f"{_ms(row['b_per_request_s'])} "
            f"{_ms(row['delta_per_request_s'])}"
        )

    if report["backends"]:
        lines.append("")
        lines.append("backend attribution (per request; ms)")
        for kind, row in report["backends"].items():
            lines.append(
                f"  {kind:<16} {_ms(row['a_per_request_s'])} "
                f"{_ms(row['b_per_request_s'])} "
                f"{_ms(row['delta_per_request_s'])}"
            )

    lines.append("")
    lines.append("latency percentile curves (per tenant; ms)")
    for tenant, points in report["percentiles"].items():
        detail = "  ".join(
            f"p{round(pt['q'] * 100)} {_ms(pt['a_s']).strip()}"
            f"→{_ms(pt['b_s']).strip()}"
            for pt in points
        )
        lines.append(f"  {tenant:<12} {detail}")

    alerts = report["alerts"]
    if alerts["a"] or alerts["b"]:
        lines.append("")
        lines.append("alert timelines")
        for label, rows in (("A", alerts["a"]), ("B", alerts["b"])):
            if not rows:
                lines.append(f"  {label}: (none)")
                continue
            for row in rows:
                detail = (
                    f" cause={row['cause']}" if row.get("cause") else ""
                )
                lines.append(
                    f"  {label}: +{row['time'] * 1e3:.1f}ms "
                    f"{row['state']} tenant={row['tenant']}{detail}"
                )
    return "\n".join(lines)
